(* Compile-time metrics registry.  See metrics.mli. *)

type value = Count of int | Time_ms of float

type t = {
  live : bool;
  tbl : (string, value) Hashtbl.t;
  mutable order_rev : string list;  (* first-recording order, reversed *)
}

let create () = { live = true; tbl = Hashtbl.create 32; order_rev = [] }
let disabled = { live = false; tbl = Hashtbl.create 0; order_rev = [] }
let is_enabled t = t.live

let record t name v =
  if t.live then begin
    if not (Hashtbl.mem t.tbl name) then t.order_rev <- name :: t.order_rev;
    Hashtbl.replace t.tbl name v
  end

let incr ?(by = 1) t name =
  if t.live then
    let cur =
      match Hashtbl.find_opt t.tbl name with
      | Some (Count n) -> n
      | Some (Time_ms _) -> invalid_arg ("Metrics.incr on timer " ^ name)
      | None -> 0
    in
    record t name (Count (cur + by))

let set t name v = record t name (Count v)

let add_ms t name ms =
  if t.live then
    let cur =
      match Hashtbl.find_opt t.tbl name with
      | Some (Time_ms x) -> x
      | Some (Count _) -> invalid_arg ("Metrics.add_ms on counter " ^ name)
      | None -> 0.
    in
    record t name (Time_ms (cur +. ms))

let time t name f =
  if not t.live then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finish () = add_ms t name ((Unix.gettimeofday () -. t0) *. 1000.) in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let merge ~into src =
  if into.live then
    List.iter
      (fun (name, v) ->
        match (v, Hashtbl.find_opt into.tbl name) with
        | Count n, Some (Count m) -> record into name (Count (m + n))
        | Time_ms x, Some (Time_ms y) -> record into name (Time_ms (y +. x))
        | (Count _ as v), None | (Time_ms _ as v), None -> record into name v
        | Count _, Some (Time_ms _) | Time_ms _, Some (Count _) ->
            invalid_arg ("Metrics.merge: kind mismatch on " ^ name))
      (List.rev_map (fun name -> (name, Hashtbl.find src.tbl name)) src.order_rev)

let items t =
  List.rev_map
    (fun name -> (name, Hashtbl.find t.tbl name))
    t.order_rev

let find t name = Hashtbl.find_opt t.tbl name

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let kind, value =
        match v with
        | Count n -> ("count", string_of_int n)
        | Time_ms x -> ("time_ms", Printf.sprintf "%.3f" x)
      in
      Buffer.add_string b
        (Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"%s\",\"value\":%s}\n"
           (escape name) kind value))
    (items t);
  Buffer.contents b
