(** Compile-time metrics: a named counter/timer registry threaded through
    the middle-end and back-end passes, serialized as JSONL (one JSON
    object per line — trivially greppable and appendable across runs).

    A registry is either live ({!create}) or the shared {!disabled}
    singleton, which turns every operation into a no-op so passes can be
    instrumented unconditionally. *)

type t

val create : unit -> t

val disabled : t
(** The no-op registry (the default everywhere a [?metrics] parameter is
    omitted).  Recording into it does nothing; [to_jsonl] is empty. *)

val is_enabled : t -> bool

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0. *)

val set : t -> string -> int -> unit
(** Overwrite a counter. *)

val add_ms : t -> string -> float -> unit
(** Accumulate wall-clock milliseconds into a timer. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, accumulating its wall time into the [name] timer.  With
    {!disabled}, calls the thunk without reading the clock. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters add, timers add, unseen names append
    in [src]'s first-recording order.  Parallel fan-outs give each unit of
    work its own registry and merge them at the join in input order, so the
    merged registry is independent of worker scheduling (see
    [Exec.map_with_metrics]).  Raises [Invalid_argument] if a name is a
    counter on one side and a timer on the other. *)

type value = Count of int | Time_ms of float

val items : t -> (string * value) list
(** All metrics in first-recording order. *)

val find : t -> string -> value option

val to_jsonl : t -> string
(** One line per metric:
    [{"metric":"middle.checkpoint_inserter.wars","kind":"count","value":12}]
    [{"metric":"backend.regalloc.ms","kind":"time_ms","value":0.734}] *)
