(** Hierarchical structured spans for toolchain-side attribution.

    A span covers one stage of work (a pipeline pass, a solver call, a
    certifier recheck, a campaign phase, an [Exec.map] worker) with a
    wall-clock window, typed attributes, integer counters and child spans.
    Completed trees render as Chrome trace-event JSON (load in
    [chrome://tracing] / Perfetto) and as JSONL for [iclang stats].

    Recorders are single-domain: parallel fan-outs give each worker its own
    recorder and graft the finished trees back at the join point, on a
    distinct [track] per worker so overlapping wall-clock windows stay
    attributable (the self-check sums child durations per track). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_name : string;
  sp_t0 : float;  (** absolute wall-clock start, milliseconds since epoch *)
  sp_dur : float;  (** duration in milliseconds (clamped at >= 0) *)
  sp_track : int;  (** Chrome [tid]; 0 = recording domain, workers use 1.. *)
  sp_attrs : (string * value) list;  (** first-set order *)
  sp_counters : (string * int) list;  (** first-bump order *)
  sp_children : span list;  (** completion order *)
}

type t
(** A span recorder: a stack of open spans plus completed roots. *)

val create : ?track:int -> unit -> t
(** Fresh live recorder. [track] tags every span it records (default 0). *)

val disabled : t
(** Shared no-op recorder: every operation on it is free and records
    nothing. The instrumentation default everywhere. *)

val is_enabled : t -> bool

val with_span :
  ?attrs:(string * value) list -> t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] opens a span, runs [f], and closes the span when
    [f] returns — or raises; the span is kept either way and the exception
    rethrown. Nested calls build the parent/child tree. *)

val set_attr : t -> string -> value -> unit
(** Set an attribute on the innermost open span (last write wins; first-set
    order preserved). No-op when disabled or no span is open. *)

val add_counter : ?by:int -> t -> string -> unit
(** Bump a counter on the innermost open span by [by] (default 1). *)

val graft : t -> span list -> unit
(** Attach already-completed spans (e.g. a worker recorder's [roots]) as
    children of the innermost open span, or as roots if none is open.
    Completion order is preserved. *)

val roots : t -> span list
(** Completed top-level spans, in completion order. Open spans are not
    included — call after the outermost [with_span] returns. *)

val check : span list -> (unit, string) result
(** Self-check over completed trees: every child lies inside its parent's
    window, and per track the child durations sum to at most the parent's
    duration (small epsilon for clock granularity). Workers on distinct
    tracks may overlap each other; same-track children may not. *)

val to_chrome_json : ?process_name:string -> span list -> string
(** Chrome trace-event JSON (an object with a ["traceEvents"] array of "X"
    duration slices; [ts]/[dur] in microseconds, normalized so the earliest
    span starts at 0; [tid] is the span's track). *)

val to_jsonl : span list -> string
(** One JSON object per span, depth-first: [{"span","id","parent","track",
    "t0_ms","dur_ms","attrs","counters"}]. [parent] is null for roots. *)

val of_jsonl : string -> (span list, string) result
(** Rebuild span trees from [to_jsonl] output (used by [iclang stats] to
    re-run [check] and rank spans). Lines that are blank are skipped;
    a malformed line or dangling parent id is an [Error]. *)
