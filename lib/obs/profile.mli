(** Attribution: fold a recorded event stream ({!Trace.events}) into
    per-function and per-idempotent-region profiles.

    Self cycles are integrated between function-transition timestamps, so
    the per-function attribution (including the [(boot)]/[(restore)]
    pseudo-functions) sums exactly to the trace's total active cycles —
    provided the sink did not drop events (unbounded {!Trace.ring}). *)

type fn_row = {
  fn_name : string;
  fn_cycles : int;  (** self cycles, incl. checkpoint commits executed here *)
  fn_ckpts : int;  (** counted checkpoint commits (console excluded) *)
  fn_ckpt_cycles : int;  (** cycles of all commits, console included *)
  fn_irqs : int;
}

val boot_pseudo : string  (** ["(boot)"] *)

val restore_pseudo : string  (** ["(restore)"] *)

type region = {
  rg_start : int;  (** active-cycle timestamp of the opening boundary *)
  rg_cycles : int;
  rg_func : string;  (** function executing when the region opened *)
  rg_closed_by : string;  (** cause of the closing boundary *)
}

type t = {
  rows : fn_row list;  (** sorted by self cycles, descending *)
  regions : region list;  (** in execution order *)
  total_cycles : int;  (** timestamp of the last event *)
  checkpoints : int;  (** counted commits over the whole trace *)
  power_failures : int;
  boots : int;
}

val of_events : Trace.timed list -> t

val folded : t -> string
(** Flamegraph folded-stack lines ([name cycles], one per function; the
    profile is flat, so each stack has depth one).  Feed to
    [flamegraph.pl] or speedscope. *)
