(* Attribution of a trace-event stream to functions and idempotent
   regions.  See profile.mli. *)

type fn_row = {
  fn_name : string;
  fn_cycles : int;
  fn_ckpts : int;
  fn_ckpt_cycles : int;
  fn_irqs : int;
}

let boot_pseudo = "(boot)"
let restore_pseudo = "(restore)"

type region = {
  rg_start : int;
  rg_cycles : int;
  rg_func : string;
  rg_closed_by : string;
}

type t = {
  rows : fn_row list;
  regions : region list;
  total_cycles : int;
  checkpoints : int;
  power_failures : int;
  boots : int;
}

type acc = {
  mutable a_cycles : int;
  mutable a_ckpts : int;
  mutable a_ckpt_cycles : int;
  mutable a_irqs : int;
}

let of_events (evs : Trace.timed list) : t =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some a -> a
    | None ->
        let a = { a_cycles = 0; a_ckpts = 0; a_ckpt_cycles = 0; a_irqs = 0 } in
        Hashtbl.add tbl name a;
        a
  in
  let charge name c = if c > 0 then (get name).a_cycles <- (get name).a_cycles + c in
  let cur = ref boot_pseudo in
  let last = ref 0 in
  let checkpoints = ref 0 in
  let power_failures = ref 0 in
  let boots = ref 0 in
  let regions_rev = ref [] in
  (* [None] before the first boot and between a power failure and the next
     boot (mirroring the emulator, which only records regions that reach a
     commit or the final halt) *)
  let open_region : (int * string) option ref = ref None in
  let close_region at closed_by =
    match !open_region with
    | None -> ()
    | Some (start, func) ->
        regions_rev :=
          { rg_start = start; rg_cycles = at - start; rg_func = func;
            rg_closed_by = closed_by }
          :: !regions_rev
  in
  List.iter
    (fun { Trace.at; ev } ->
      let seg = at - !last in
      (match ev with
      | Trace.Boot { restore_cost; func; _ } ->
          (* the whole segment is boot + restore spend *)
          let rc = min restore_cost seg in
          charge boot_pseudo (seg - rc);
          charge restore_pseudo rc;
          incr boots;
          cur := func;
          open_region := Some (at, func)
      | Trace.Func_transition { to_func; _ } ->
          charge !cur seg;
          cur := to_func
      | Trace.Checkpoint { cause; func; cost; _ } ->
          charge !cur seg;
          let a = get func in
          if Trace.counted_cause cause then begin
            a.a_ckpts <- a.a_ckpts + 1;
            incr checkpoints
          end;
          a.a_ckpt_cycles <- a.a_ckpt_cycles + cost;
          close_region at (Trace.string_of_cause cause);
          open_region := Some (at, !cur)
      | Trace.Power_failure _ ->
          charge !cur seg;
          incr power_failures;
          cur := boot_pseudo;
          open_region := None
      | Trace.Irq { func = _; _ } ->
          charge !cur seg;
          (get !cur).a_irqs <- (get !cur).a_irqs + 1
      | Trace.Halt _ ->
          charge !cur seg;
          close_region at "halt";
          open_region := None);
      last := at)
    evs;
  let rows =
    Hashtbl.fold
      (fun name a acc ->
        {
          fn_name = name;
          fn_cycles = a.a_cycles;
          fn_ckpts = a.a_ckpts;
          fn_ckpt_cycles = a.a_ckpt_cycles;
          fn_irqs = a.a_irqs;
        }
        :: acc)
      tbl []
    |> List.sort (fun x y ->
           match compare y.fn_cycles x.fn_cycles with
           | 0 -> compare x.fn_name y.fn_name
           | c -> c)
  in
  {
    rows;
    regions = List.rev !regions_rev;
    total_cycles = !last;
    checkpoints = !checkpoints;
    power_failures = !power_failures;
    boots = !boots;
  }

let folded (t : t) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      if r.fn_cycles > 0 then
        Buffer.add_string b (Printf.sprintf "%s %d\n" r.fn_name r.fn_cycles))
    t.rows;
  Buffer.contents b
