(* Emulator execution tracing: typed events, sinks, and the Chrome
   trace-event renderer.  See trace.mli for the event schema. *)

type cause = Entry | Exit | Middle | Backend | Console

let string_of_cause = function
  | Entry -> "function-entry"
  | Exit -> "function-exit"
  | Middle -> "middle-end-war"
  | Backend -> "back-end-war"
  | Console -> "console"

let counted_cause = function Console -> false | _ -> true

type event =
  | Boot of {
      seq : int;
      restored : bool;
      boot_cost : int;
      restore_cost : int;
      func : string;
    }
  | Checkpoint of {
      cause : cause;
      pc : int;
      func : string;
      mask : int;
      bytes : int;
      cost : int;
    }
  | Power_failure of { lost_cycles : int }
  | Irq of { pc : int; func : string }
  | Func_transition of { from_func : string; to_func : string }
  | Halt of { exit_code : int32 }

type timed = { at : int; ev : event }

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

(* The recording sink keeps events newest-first; a positive capacity is
   enforced lazily (truncate once the list doubles past it), so emission
   stays amortized O(1). *)
type recorder = {
  capacity : int;  (* 0 = unbounded *)
  mutable rev : timed list;  (* newest first *)
  mutable n : int;
  mutable lost : int;
}

type sink = Null | Rec of recorder

let null = Null

let ring ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Trace.ring: negative capacity";
  Rec { capacity; rev = []; n = 0; lost = 0 }

let enabled = function Null -> false | Rec _ -> true

let emit sink at ev =
  match sink with
  | Null -> ()
  | Rec r ->
      r.rev <- { at; ev } :: r.rev;
      r.n <- r.n + 1;
      if r.capacity > 0 && r.n >= 2 * r.capacity then begin
        r.rev <- Wario_support.Util.take r.capacity r.rev;
        r.lost <- r.lost + (r.n - r.capacity);
        r.n <- r.capacity
      end

let events = function
  | Null -> []
  | Rec r ->
      let evs = List.rev r.rev in
      if r.capacity > 0 && r.n > r.capacity then
        Wario_support.Util.drop (r.n - r.capacity) evs
      else evs

let length = function
  | Null -> 0
  | Rec r -> if r.capacity > 0 then min r.n r.capacity else r.n

let dropped = function
  | Null -> 0
  | Rec r ->
      if r.capacity > 0 && r.n > r.capacity then r.lost + (r.n - r.capacity)
      else r.lost

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                              *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One trace-event object.  [ts]/[dur] are cycles rendered as µs. *)
let obj b ~first ~name ~cat ~ph ~ts ?dur ?(tid = 0) ?(extra = []) () =
  if not first then Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d"
       (escape name) cat ph ts);
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":1,\"tid\":%d" tid);
  if ph = "i" then Buffer.add_string b ",\"s\":\"g\"";
  (match extra with
  | [] -> ()
  | kvs ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
        kvs;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let json_str s = "\"" ^ escape s ^ "\""

let to_chrome_json ?(process_name = "wario-tm2") (evs : timed list) : string =
  let b = Buffer.create 65536 in
  Buffer.add_string b "[\n";
  let first = ref true in
  let put ~name ~cat ~ph ~ts ?dur ?tid ?extra () =
    obj b ~first:!first ~name ~cat ~ph ~ts ?dur ?tid ?extra ();
    first := false
  in
  (* metadata: process and the two tracks (0 = events, 1 = functions) *)
  if not !first then Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":%s}}"
       (json_str process_name));
  first := false;
  Buffer.add_string b
    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"events\"}}";
  Buffer.add_string b
    ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"functions\"}}";
  (* the function track: slices between transitions/boots/halt *)
  let seg_start = ref 0 in
  let seg_func = ref None in
  let close_segment upto =
    (match !seg_func with
    | Some f when upto > !seg_start ->
        put ~name:f ~cat:"func" ~ph:"X" ~ts:!seg_start ~dur:(upto - !seg_start)
          ~tid:1 ()
    | _ -> ());
    seg_start := upto
  in
  List.iter
    (fun { at; ev } ->
      match ev with
      | Boot { seq; restored; boot_cost; restore_cost; func } ->
          close_segment (at - boot_cost - restore_cost);
          put ~name:"boot" ~cat:"power" ~ph:"X"
            ~ts:(at - boot_cost - restore_cost)
            ~dur:(boot_cost + restore_cost)
            ~extra:
              [
                ("seq", string_of_int seq);
                ("restored", if restored then "true" else "false");
                ("restore_cost", string_of_int restore_cost);
              ]
            ();
          seg_start := at;
          seg_func := Some func
      | Checkpoint { cause; pc; func; mask; bytes; cost } ->
          put ~name:"checkpoint" ~cat:"ckpt" ~ph:"X" ~ts:(at - cost) ~dur:cost
            ~extra:
              [
                ("cause", json_str (string_of_cause cause));
                ("pc", string_of_int pc);
                ("func", json_str func);
                ("mask", string_of_int mask);
                ("bytes", string_of_int bytes);
              ]
            ()
      | Power_failure { lost_cycles } ->
          close_segment at;
          seg_func := None;
          put ~name:"power-failure" ~cat:"power" ~ph:"i" ~ts:at
            ~extra:[ ("lost_cycles", string_of_int lost_cycles) ]
            ()
      | Irq { pc; func } ->
          put ~name:"irq" ~cat:"irq" ~ph:"i" ~ts:at
            ~extra:[ ("pc", string_of_int pc); ("func", json_str func) ]
            ()
      | Func_transition { from_func = _; to_func } ->
          close_segment at;
          seg_func := Some to_func
      | Halt { exit_code } ->
          close_segment at;
          seg_func := None;
          put ~name:"halt" ~cat:"power" ~ph:"i" ~ts:at
            ~extra:[ ("exit_code", Int32.to_string exit_code) ]
            ())
    evs;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
