(* Hierarchical structured spans. See span.mli for the model. *)

module J = Wario_support.Json

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_name : string;
  sp_t0 : float;
  sp_dur : float;
  sp_track : int;
  sp_attrs : (string * value) list;
  sp_counters : (string * int) list;
  sp_children : span list;
}

(* An in-flight span: attrs/counters/children accumulate in reverse and are
   reversed once at close so first-set order is preserved cheaply. *)
type open_span = {
  o_name : string;
  o_t0 : float;
  mutable o_attrs_rev : (string * value) list;
  mutable o_counters_rev : (string * int) list;
  mutable o_children_rev : span list;
}

type t = {
  live : bool;
  track : int;
  mutable stack : open_span list; (* innermost first *)
  mutable roots_rev : span list;
}

let now_ms () = Unix.gettimeofday () *. 1000.

let create ?(track = 0) () =
  { live = true; track; stack = []; roots_rev = [] }

let disabled = { live = false; track = 0; stack = []; roots_rev = [] }
let is_enabled t = t.live

let close t (o : open_span) =
  let sp =
    {
      sp_name = o.o_name;
      sp_t0 = o.o_t0;
      sp_dur = Float.max 0. (now_ms () -. o.o_t0);
      sp_track = t.track;
      sp_attrs = List.rev o.o_attrs_rev;
      sp_counters = List.rev o.o_counters_rev;
      sp_children = List.rev o.o_children_rev;
    }
  in
  match t.stack with
  | [] -> t.roots_rev <- sp :: t.roots_rev
  | parent :: _ -> parent.o_children_rev <- sp :: parent.o_children_rev

let with_span ?(attrs = []) t name f =
  if not t.live then f ()
  else begin
    let o =
      {
        o_name = name;
        o_t0 = now_ms ();
        o_attrs_rev = List.rev attrs;
        o_counters_rev = [];
        o_children_rev = [];
      }
    in
    t.stack <- o :: t.stack;
    let finish () =
      (match t.stack with
      | top :: rest when top == o -> t.stack <- rest
      | _ ->
          (* unbalanced nesting can only happen if [f] tampered with the
             recorder; recover by popping down to [o] *)
          let rec pop () =
            match t.stack with
            | top :: rest ->
                t.stack <- rest;
                if top != o then (
                  close t top;
                  pop ())
            | [] -> ()
          in
          pop ());
      close t o
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let set_attr t key v =
  if t.live then
    match t.stack with
    | [] -> ()
    | o :: _ ->
        if List.mem_assoc key o.o_attrs_rev then
          o.o_attrs_rev <-
            List.map
              (fun (k, old) -> if k = key then (k, v) else (k, old))
              o.o_attrs_rev
        else o.o_attrs_rev <- (key, v) :: o.o_attrs_rev

let add_counter ?(by = 1) t key =
  if t.live then
    match t.stack with
    | [] -> ()
    | o :: _ -> (
        match List.assoc_opt key o.o_counters_rev with
        | Some _ ->
            o.o_counters_rev <-
              List.map
                (fun (k, old) -> if k = key then (k, old + by) else (k, old))
                o.o_counters_rev
        | None -> o.o_counters_rev <- (key, by) :: o.o_counters_rev)

let graft t spans =
  if t.live then
    match t.stack with
    | [] -> t.roots_rev <- List.rev_append spans t.roots_rev
    | o :: _ -> o.o_children_rev <- List.rev_append spans o.o_children_rev

let roots t = List.rev t.roots_rev

(* --- self-check ---------------------------------------------------- *)

(* Clock-granularity slack: gettimeofday ticks in microseconds, and every
   child start/stop pair can round against the parent by one tick. *)
let eps_window = 0.01 (* ms *)
let eps_sum nchildren = 0.01 +. (0.002 *. float_of_int nchildren)

exception Check_failed of string

let check (spans : span list) : (unit, string) result =
  let rec walk path sp =
    let path = path ^ "/" ^ sp.sp_name in
    if sp.sp_dur < 0. then
      raise (Check_failed (Printf.sprintf "%s: negative duration" path));
    let t1 = sp.sp_t0 +. sp.sp_dur in
    List.iter
      (fun c ->
        if
          c.sp_t0 < sp.sp_t0 -. eps_window
          || c.sp_t0 +. c.sp_dur > t1 +. eps_window
        then
          raise
            (Check_failed
               (Printf.sprintf
                  "%s: child %s [%.3f..%.3f] escapes parent window \
                   [%.3f..%.3f]"
                  path c.sp_name c.sp_t0
                  (c.sp_t0 +. c.sp_dur)
                  sp.sp_t0 t1)))
      sp.sp_children;
    (* per-track sums: same-track children ran sequentially on one domain,
       so their durations must fit inside the parent *)
    let by_track = Hashtbl.create 4 in
    List.iter
      (fun c ->
        let sum, count =
          Option.value ~default:(0., 0) (Hashtbl.find_opt by_track c.sp_track)
        in
        Hashtbl.replace by_track c.sp_track (sum +. c.sp_dur, count + 1))
      sp.sp_children;
    Hashtbl.iter
      (fun track (sum, count) ->
        if sum > sp.sp_dur +. eps_sum count then
          raise
            (Check_failed
               (Printf.sprintf
                  "%s: track %d children sum to %.3fms > parent %.3fms" path
                  track sum sp.sp_dur)))
      by_track;
    List.iter (walk path) sp.sp_children
  in
  try
    List.iter (walk "") spans;
    Ok ()
  with Check_failed msg -> Error msg

(* --- rendering ----------------------------------------------------- *)

let value_json = function
  | Int n -> string_of_int n
  | Float f -> J.float_repr f
  | Str s -> "\"" ^ J.escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let args_json attrs counters =
  let fields =
    List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (J.escape k) (value_json v)) attrs
    @ List.map
        (fun (k, n) -> Printf.sprintf "\"%s\":%d" (J.escape k) n)
        counters
  in
  "{" ^ String.concat "," fields ^ "}"

let rec min_t0 acc sp =
  let acc = Float.min acc sp.sp_t0 in
  List.fold_left min_t0 acc sp.sp_children

let to_chrome_json ?(process_name = "wario") (spans : span list) : string =
  let base = List.fold_left min_t0 Float.max_float spans in
  let base = if base = Float.max_float then 0. else base in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
       (J.escape process_name));
  let rec emit sp =
    Buffer.add_string b ",";
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":1,\"tid\":%d,\"args\":%s}"
         (J.escape sp.sp_name)
         ((sp.sp_t0 -. base) *. 1000.)
         (sp.sp_dur *. 1000.) sp.sp_track
         (args_json sp.sp_attrs sp.sp_counters));
    List.iter emit sp.sp_children
  in
  List.iter emit spans;
  Buffer.add_string b "]}";
  Buffer.contents b

let to_jsonl (spans : span list) : string =
  let b = Buffer.create 4096 in
  let next_id = ref 0 in
  let rec emit parent sp =
    let id = !next_id in
    incr next_id;
    let parent_s =
      match parent with None -> "null" | Some p -> string_of_int p
    in
    Buffer.add_string b
      (Printf.sprintf
         "{\"span\":\"%s\",\"id\":%d,\"parent\":%s,\"track\":%d,\"t0_ms\":%s,\"dur_ms\":%s,\"attrs\":%s,\"counters\":%s}\n"
         (J.escape sp.sp_name) id parent_s sp.sp_track
         (J.float_repr sp.sp_t0) (J.float_repr sp.sp_dur)
         (args_json sp.sp_attrs [])
         ("{"
         ^ String.concat ","
             (List.map
                (fun (k, n) -> Printf.sprintf "\"%s\":%d" (J.escape k) n)
                sp.sp_counters)
         ^ "}"));
    List.iter (emit (Some id)) sp.sp_children
  in
  List.iter (emit None) spans;
  Buffer.contents b

let of_jsonl (text : string) : (span list, string) result =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let exception Bad of string in
  try
    let rows =
      List.mapi
        (fun i line ->
          match J.parse line with
          | Error e -> raise (Bad (Printf.sprintf "line %d: %s" (i + 1) e))
          | Ok doc ->
              let req name extract =
                match Option.bind (J.member name doc) extract with
                | Some v -> v
                | None ->
                    raise
                      (Bad
                         (Printf.sprintf "line %d: missing field %S" (i + 1)
                            name))
              in
              let attrs =
                match Option.bind (J.member "attrs" doc) J.obj_fields with
                | None -> []
                | Some fields ->
                    List.map
                      (fun (k, v) ->
                        ( k,
                          match v with
                          | J.Num f when Float.is_integer f ->
                              Int (int_of_float f)
                          | J.Num f -> Float f
                          | J.Str s -> Str s
                          | J.Bool b -> Bool b
                          | _ ->
                              raise
                                (Bad
                                   (Printf.sprintf
                                      "line %d: bad attr %S" (i + 1) k)) ))
                      fields
              in
              let counters =
                match Option.bind (J.member "counters" doc) J.obj_fields with
                | None -> []
                | Some fields ->
                    List.map
                      (fun (k, v) ->
                        match J.to_int v with
                        | Some n -> (k, n)
                        | None ->
                            raise
                              (Bad
                                 (Printf.sprintf "line %d: bad counter %S"
                                    (i + 1) k)))
                      fields
              in
              let parent =
                match J.member "parent" doc with
                | Some J.Null | None -> None
                | Some v -> (
                    match J.to_int v with
                    | Some p -> Some p
                    | None ->
                        raise (Bad (Printf.sprintf "line %d: bad parent" (i + 1))))
              in
              ( req "id" J.to_int,
                parent,
                {
                  sp_name = req "span" J.to_string;
                  sp_t0 = req "t0_ms" J.to_float;
                  sp_dur = req "dur_ms" J.to_float;
                  sp_track = req "track" J.to_int;
                  sp_attrs = attrs;
                  sp_counters = counters;
                  sp_children = [];
                } ))
        lines
    in
    (* preorder emission guarantees parents precede children, so a single
       reverse pass can build each subtree bottom-up *)
    let children : (int, span list) Hashtbl.t = Hashtbl.create 64 in
    let roots = ref [] in
    List.iter
      (fun (id, parent, sp) ->
        let sp =
          {
            sp with
            sp_children =
              Option.value ~default:[] (Hashtbl.find_opt children id);
          }
        in
        match parent with
        | None -> roots := sp :: !roots
        | Some p ->
            let siblings =
              Option.value ~default:[] (Hashtbl.find_opt children p)
            in
            Hashtbl.replace children p (sp :: siblings))
      (List.rev rows);
    (* every parent id must resolve to a seen row *)
    let ids = Hashtbl.create 64 in
    List.iter (fun (id, _, _) -> Hashtbl.replace ids id ()) rows;
    List.iter
      (fun (_, parent, _) ->
        match parent with
        | Some p when not (Hashtbl.mem ids p) ->
            raise (Bad (Printf.sprintf "dangling parent id %d" p))
        | _ -> ())
      rows;
    Ok !roots
  with Bad msg -> Error msg
