(** Emulator execution tracing: typed events with active-cycle timestamps,
    a no-op / ring sink pair, and renderers (Chrome trace-event JSON for
    Perfetto, plus raw accessors for {!Profile}).

    The emulator emits one event per checkpoint commit, power failure,
    boot/restore, interrupt, halt and function transition.  With the
    {!null} sink every emission is a single tag test — tracing disabled
    costs no measurable emulator slowdown. *)

(** Checkpoint cause, mirroring {!Wario_machine.Isa.ckpt_cause} plus the
    implicit console-output commit (which the emulator's cause statistics
    deliberately exclude — see {!counted_cause}). *)
type cause = Entry | Exit | Middle | Backend | Console

val string_of_cause : cause -> string

val counted_cause : cause -> bool
(** [false] only for [Console]: console commits do not appear in
    [Emulator.result.checkpoints], so well-formedness checks comparing
    trace contents against [checkpoints_total] must skip them. *)

type event =
  | Boot of {
      seq : int;  (** boot ordinal, 1-based *)
      restored : bool;  (** false = cold start *)
      boot_cost : int;
      restore_cost : int;
      func : string;  (** function execution resumes in *)
    }
  | Checkpoint of {
      cause : cause;
      pc : int;
      func : string;
      mask : int;  (** live-register mask *)
      bytes : int;  (** bytes written to the checkpoint buffer *)
      cost : int;  (** commit cost in cycles *)
    }
  | Power_failure of {
      lost_cycles : int;
          (** work since the last commit, now discarded (will re-execute) *)
    }
  | Irq of { pc : int; func : string }
  | Func_transition of { from_func : string; to_func : string }
  | Halt of { exit_code : int32 }

type timed = { at : int; ev : event }
(** [at] is the emulator's active-cycle counter when the event completed.
    Active cycles never reset across power failures, so timestamps are
    monotone over the whole trace (and in particular within each power
    cycle). *)

(** {1 Sinks} *)

type sink

val null : sink
(** Discards every emission (the default everywhere). *)

val ring : ?capacity:int -> unit -> sink
(** A recording sink.  [capacity] = 0 (the default) grows without bound;
    a positive capacity keeps only the newest [capacity] events (a ring),
    counting the rest in {!dropped}. *)

val enabled : sink -> bool
val emit : sink -> int -> event -> unit

val events : sink -> timed list
(** Recorded events, oldest first.  Empty for {!null}. *)

val length : sink -> int
val dropped : sink -> int

(** {1 Rendering} *)

val to_chrome_json : ?process_name:string -> timed list -> string
(** The trace as a Chrome trace-event JSON array (load in Perfetto or
    [chrome://tracing]).  Timestamps are cycles presented as microseconds.
    Checkpoints and boots become duration ("X") slices, power failures /
    irqs / halt become instant events, and function transitions are folded
    into per-function slices on their own track. *)
