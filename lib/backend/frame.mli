(** Frame lowering: prologs, the Idempotent Stack Pop Converter, and the
    Epilog Optimizer (paper §3.1.3).

    Every function (except in the [Bare] baseline) is bracketed by a
    mandatory entry checkpoint and at least one exit checkpoint: calls are
    the forced region barriers the middle-end analysis assumes. *)

type epilog_style =
  | Naive  (** pop converter only: up to three exit checkpoints *)
  | Optimized  (** epilog optimizer: a single exit checkpoint, irqs deferred *)
  | Bare  (** no boundary checkpoints at all (uninstrumented baseline) *)

val run :
  style:epilog_style ->
  slots:Wario_ir.Ir.slot list ->
  spill_slots:int ->
  params:int ->
  returns:bool ->
  Wario_machine.Isa.mfunc ->
  unit
(** Lower frames in place: resolve slot/spill pseudos to sp-relative
    accesses, add the prolog (entry checkpoint, pushes, frame allocation)
    and the epilog in the chosen style.  Records the layout (plus
    [params]/[returns] calling-convention facts) in the function's
    [frame_meta] for the static certifier. *)
