(* Back-end driver: WIR program -> TM2 machine program.

   Pipeline per function (paper Figure 2, dark-blue area):
     isel -> register allocation (no slot sharing) ->
     stack-spill checkpoint inserter (naive or hitting-set) ->
     frame lowering with pop conversion (naive or optimized epilogs) ->
     checkpoint live-mask computation. *)

module I = Wario_machine.Isa
module Ir = Wario_ir.Ir

type config = {
  spill_strategy : Stack_ckpt.strategy option;  (** [None] = uninstrumented *)
  epilog_style : Frame.epilog_style;
}

let plain_backend = { spill_strategy = None; epilog_style = Frame.Bare }

let ratchet_backend =
  { spill_strategy = Some Stack_ckpt.Naive; epilog_style = Frame.Naive }

let wario_backend =
  { spill_strategy = Some Stack_ckpt.Hitting_set; epilog_style = Frame.Optimized }

type stats = {
  spill_wars : int;
  spill_ckpts : int;
  spill_slots : int;
}

let mdata_of_global (g : Ir.global) : I.data =
  {
    I.dname = g.gname;
    dsize = g.gsize;
    dalign = g.galign;
    dinit =
      List.map
        (fun (off, w, v) -> (off, Ir.bytes_of_width w, v))
        g.ginit;
  }

(** Compile a WIR program to machine code.  With a live [metrics]
    registry, per-pass wall times accumulate across functions under
    [backend.<pass>.ms] and the spill deltas are recorded as counters.
    [block_weights] (mangled machine label -> estimated execution
    frequency) makes the stack-spill checkpoint inserter cost-guided. *)
let run ?(metrics = Wario_obs.Metrics.disabled)
    ?(block_weights : (string -> float) option) ~(config : config)
    (p : Ir.program) : I.mprog * stats =
  let module M = Wario_obs.Metrics in
  let stats = ref { spill_wars = 0; spill_ckpts = 0; spill_slots = 0 } in
  let mfuncs =
    List.map
      (fun (f : Ir.func) ->
        let mf, next_vreg =
          M.time metrics "backend.isel.ms" (fun () -> Isel.select_func f)
        in
        M.time metrics "backend.webs.ms" (fun () ->
            ignore (Webs.run mf ~next_vreg));
        let ra = M.time metrics "backend.regalloc.ms" (fun () -> Regalloc.run mf) in
        let sc =
          match config.spill_strategy with
          | Some strategy ->
              M.time metrics "backend.stack_ckpt.ms" (fun () ->
                  Stack_ckpt.run ?weight:block_weights ~strategy ra.mfunc)
          | None -> { Stack_ckpt.spill_wars = 0; spill_ckpts = 0 }
        in
        let returns =
          List.exists
            (fun (b : Ir.block) ->
              match b.term with Ir.Ret (Some _) -> true | _ -> false)
            f.blocks
        in
        M.time metrics "backend.frame.ms" (fun () ->
            Frame.run ~style:config.epilog_style ~slots:f.slots
              ~spill_slots:ra.spill_slots
              ~params:(List.length f.params)
              ~returns ra.mfunc);
        M.time metrics "backend.mliveness.ms" (fun () ->
            Mliveness.set_ckpt_masks ra.mfunc);
        stats :=
          {
            spill_wars = !stats.spill_wars + sc.spill_wars;
            spill_ckpts = !stats.spill_ckpts + sc.spill_ckpts;
            spill_slots = !stats.spill_slots + ra.spill_slots;
          };
        ra.mfunc)
      p.funcs
  in
  M.set metrics "backend.functions" (List.length p.funcs);
  M.set metrics "backend.spill_wars" !stats.spill_wars;
  M.set metrics "backend.spill_ckpts" !stats.spill_ckpts;
  M.set metrics "backend.spill_slots" !stats.spill_slots;
  ({ I.mfuncs; mdata = List.map mdata_of_global p.globals }, !stats)
