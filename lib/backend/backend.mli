(** Back-end driver: WIR program -> TM2 machine program (paper Figure 2,
    dark-blue area): isel, web splitting, linear-scan register allocation
    with stack-slot sharing disabled, the stack-spill checkpoint inserter,
    frame lowering with pop conversion, and checkpoint live masks. *)

type config = {
  spill_strategy : Stack_ckpt.strategy option;  (** [None] = uninstrumented *)
  epilog_style : Frame.epilog_style;
}

val plain_backend : config
(** No checkpoints at all (the uninstrumented C baseline). *)

val ratchet_backend : config
(** Naive spill checkpoints, up-to-three-checkpoint epilogs. *)

val wario_backend : config
(** Hitting-set spill checkpoints, single-checkpoint epilogs. *)

type stats = { spill_wars : int; spill_ckpts : int; spill_slots : int }

val run :
  ?metrics:Wario_obs.Metrics.t ->
  ?block_weights:(string -> float) ->
  config:config ->
  Wario_ir.Ir.program ->
  Wario_machine.Isa.mprog * stats
(** [metrics] (default {!Wario_obs.Metrics.disabled}) accumulates per-pass
    wall time under [backend.<pass>.ms] and records the spill-slot /
    spill-checkpoint deltas as counters.  [block_weights] (mangled machine
    label -> estimated execution frequency, from
    {!Wario_analysis.Costmodel}) makes the stack-spill checkpoint inserter
    cost-guided. *)
