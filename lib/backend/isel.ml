(* Instruction selection: WIR -> TM2 over virtual registers.

   The mapping is direct (one IR instruction becomes a short fixed pattern),
   which keeps the relative cost of the software environments comparable —
   the paper's evaluation compares checkpoint strategies, not instruction
   schedulers.  IR register [r] becomes virtual register [first_vreg + r];
   block label [l] of function [f] becomes the program-unique [f $ l].

   Calling convention: up to four arguments in r0-r3, result in r0, r4-r10
   callee-saved (the register allocator's pool), r11/r12 reserved as spill
   scratch.  More than four parameters is a front-end restriction. *)

open Wario_ir.Ir
module I = Wario_machine.Isa

exception Isel_error of string

let mwidth = function
  | W8 -> I.W8
  | W16 -> I.W16
  | W32 -> I.W32
  | S8 -> I.S8
  | S16 -> I.S16

let mcause = function
  | Middle_end_war -> I.Middle_end_war
  | Back_end_war -> I.Back_end_war
  | Function_entry -> I.Function_entry
  | Function_exit -> I.Function_exit

let cond_of_cmpop = function
  | Ceq -> I.EQ
  | Cne -> I.NE
  | Cslt -> I.LT
  | Csle -> I.LE
  | Csgt -> I.GT
  | Csge -> I.GE
  | Cult -> I.LO
  | Cule -> I.LS
  | Cugt -> I.HI
  | Cuge -> I.HS

let mangle fname lbl = fname ^ "$" ^ lbl
let epilog_label fname = fname ^ "$.epilog"

type ctx = {
  f : func;
  mutable next_vreg : int;
  mutable code_rev : I.instr list;
}

let vreg r = I.first_vreg + r

let fresh ctx =
  let v = ctx.next_vreg in
  ctx.next_vreg <- v + 1;
  v

let emit ctx i = ctx.code_rev <- i :: ctx.code_rev

let fits_mov_imm i = Int32.compare i 0l >= 0 && Int32.compare i 256l < 0
let fits_op2_imm i = Int32.compare i 0l >= 0 && Int32.compare i 256l < 0

(* Materialise a value into a register. *)
let to_reg ctx (v : value) : I.mreg =
  match v with
  | Reg r -> vreg r
  | Imm i ->
      let t = fresh ctx in
      if fits_mov_imm i then emit ctx (I.Mov (t, I.I i))
      else emit ctx (I.Movw32 (t, i));
      t
  | Glob g ->
      let t = fresh ctx in
      emit ctx (I.AdrData (t, g, 0l));
      t
  | Slot s ->
      let t = fresh ctx in
      emit ctx (I.FrameAddr (t, s));
      t

(* Value as a flexible second operand. *)
let to_op2 ctx (v : value) : I.operand2 =
  match v with
  | Imm i when fits_op2_imm i -> I.I i
  | v -> I.R (to_reg ctx v)

let select_instr ctx (ins : instr) : unit =
  match ins with
  | Bin (d, op, a, b) -> (
      let simple aop =
        let ra = to_reg ctx a in
        let o2 = to_op2 ctx b in
        emit ctx (I.Alu (aop, vreg d, ra, o2))
      in
      match op with
      | Add -> simple I.ADD
      | Sub -> simple I.SUB
      | Mul ->
          (* Thumb-2 MUL takes registers only *)
          let ra = to_reg ctx a and rb = to_reg ctx b in
          emit ctx (I.Alu (I.MUL, vreg d, ra, I.R rb))
      | And -> simple I.AND
      | Or -> simple I.ORR
      | Xor -> simple I.EOR
      | Shl -> simple I.LSL
      | Lshr -> simple I.LSR
      | Ashr -> simple I.ASR
      | Sdiv ->
          let ra = to_reg ctx a and rb = to_reg ctx b in
          emit ctx (I.Alu (I.SDIV, vreg d, ra, I.R rb))
      | Udiv ->
          let ra = to_reg ctx a and rb = to_reg ctx b in
          emit ctx (I.Alu (I.UDIV, vreg d, ra, I.R rb))
      | Srem | Urem ->
          (* q = a / b; d = a - q*b  (sdiv/udiv + mul + sub, like MLS) *)
          let ra = to_reg ctx a and rb = to_reg ctx b in
          let q = fresh ctx and t = fresh ctx in
          emit ctx
            (I.Alu ((if op = Srem then I.SDIV else I.UDIV), q, ra, I.R rb));
          emit ctx (I.Alu (I.MUL, t, q, I.R rb));
          emit ctx (I.Alu (I.SUB, vreg d, ra, I.R t)))
  | Cmp (d, op, a, b) ->
      let ra = to_reg ctx a in
      let o2 = to_op2 ctx b in
      (* materialise the boolean: mov 0; cmp; it<c> mov 1 *)
      emit ctx (I.Mov (vreg d, I.I 0l));
      emit ctx (I.Cmp (ra, o2));
      emit ctx (I.Movc (cond_of_cmpop op, vreg d, I.I 1l))
  | Mov (d, v) -> (
      match v with
      | Reg r -> emit ctx (I.Mov (vreg d, I.R (vreg r)))
      | Imm i ->
          if fits_mov_imm i then emit ctx (I.Mov (vreg d, I.I i))
          else emit ctx (I.Movw32 (vreg d, i))
      | Glob g -> emit ctx (I.AdrData (vreg d, g, 0l))
      | Slot s -> emit ctx (I.FrameAddr (vreg d, s)))
  | Select (d, c, a, b) ->
      let rc = to_reg ctx c in
      let ra = to_reg ctx a in
      let ob = to_op2 ctx b in
      let t = fresh ctx in
      emit ctx (I.Mov (t, ob));
      emit ctx (I.Cmp (rc, I.I 0l));
      emit ctx (I.Movc (I.NE, t, I.R ra));
      emit ctx (I.Mov (vreg d, I.R t))
  | Load (d, w, addr) ->
      let ra = to_reg ctx addr in
      emit ctx (I.Ldr (mwidth w, vreg d, ra, 0l))
  | Store (w, data, addr) ->
      let rd = to_reg ctx data in
      let ra = to_reg ctx addr in
      emit ctx (I.Str (mwidth w, rd, ra, 0l))
  | Call (d, callee, args) ->
      if List.length args > 4 then
        raise
          (Isel_error
             (Printf.sprintf "call to %s: more than 4 arguments" callee));
      (* evaluate arguments into temps first, then move into r0-r3 *)
      let temps = List.map (to_reg ctx) args in
      List.iteri (fun i t -> emit ctx (I.Mov (i, I.R t))) temps;
      emit ctx (I.Bl callee);
      (match d with Some d -> emit ctx (I.Mov (vreg d, I.R I.r0)) | None -> ())
  | Checkpoint c -> emit ctx (I.Ckpt (mcause c, 0))
  | Print v ->
      let o = to_op2 ctx v in
      emit ctx (I.Mov (I.r0, o));
      emit ctx (I.Svc 0)

let select_term ctx fname (t : term) : unit =
  match t with
  | Br l -> emit ctx (I.B (mangle fname l))
  | Cbr (c, l1, l2) ->
      let rc = to_reg ctx c in
      emit ctx (I.Cmp (rc, I.I 0l));
      emit ctx (I.Bc (I.NE, mangle fname l1));
      emit ctx (I.B (mangle fname l2))
  | Ret v ->
      (match v with
      | Some v ->
          let o = to_op2 ctx v in
          emit ctx (I.Mov (I.r0, o))
      | None -> ());
      emit ctx (I.B (epilog_label fname))

(** Select one function.  The first block is labelled with the bare function
    name so [Bl] targets resolve; parameters are moved out of r0-r3. *)
let select_func (f : func) : I.mfunc * int =
  if List.length f.params > 4 then
    raise
      (Isel_error
         (Printf.sprintf "%s: more than 4 parameters unsupported" f.fname));
  let ctx = { f; next_vreg = I.first_vreg + f.next_reg; code_rev = [] } in
  let body =
    List.map
      (fun (b : block) ->
        ctx.code_rev <- [];
        List.iter (select_instr ctx) b.insns;
        select_term ctx f.fname b.term;
        { I.mlabel = mangle f.fname b.bname; mcode = List.rev ctx.code_rev })
      f.blocks
  in
  (* A stub block carries the function-name label (the [Bl] target) and the
     parameter landing moves, then falls through to the entry block (blocks
     are laid out in order and fall through when not ending in a branch). *)
  ctx.code_rev <- [];
  List.iteri (fun i p -> emit ctx (I.Mov (vreg p, I.R i))) f.params;
  let stub = { I.mlabel = f.fname; mcode = List.rev ctx.code_rev } in
  ({ I.mname = f.fname; mblocks = stub :: body; frame_words = 0; mframe = None }, ctx.next_vreg)
