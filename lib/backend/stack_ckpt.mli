(** Stack Spill Checkpoint Inserter (paper §3.1.3, §4.4).

    Runs between register allocation and frame lowering, while spill
    accesses are explicit pseudos.  Slots are never shared, so a WAR on a
    spill slot needs a barrier-free load-to-store path — in practice loops. *)

type strategy =
  | Naive  (** Ratchet: a checkpoint before every WAR-completing store *)
  | Hitting_set  (** WARio: hitting set over candidate windows *)

type stats = { spill_wars : int; spill_ckpts : int }

val run :
  ?weight:(string -> float) -> strategy:strategy -> Wario_machine.Isa.mfunc -> stats
(** [weight], when given, maps a machine block label ([Isel.mangle]d) to
    its estimated execution frequency; the [Hitting_set] strategy then
    runs the weighted solver minimising the summed frequency of chosen
    points — the expected number of dynamically executed spill
    checkpoints.  Without it, the historical unweighted greedy. *)
