(* Frame lowering: prolog/epilog construction, pseudo elimination, and the
   two back-end checkpoint behaviours around function boundaries:

   - the *Idempotent Stack Pop Converter* (paper §3.1.3): every pop becomes
     loads, a checkpoint, then the stack-pointer adjustment, so an interrupt
     pushing onto the stack after the adjustment cannot corrupt re-execution;
   - the *Epilog Optimizer*: interrupts are disabled across the epilog, all
     restores execute, a single checkpoint covers every stack-pointer
     adjustment, then interrupts are re-enabled — one exit checkpoint
     instead of up to three.

   Frame layout (descending stack):

       [caller frame]
       [saved callee-saved registers + lr]   <- pushed by prolog
       [IR slot area]
       [spill slots]                          <- sp during the body

   A function that writes no stack memory (no pushes, no frame) needs no
   entry or exit checkpoint at all. *)

module I = Wario_machine.Isa
module Ir = Wario_ir.Ir
module Util = Wario_support.Util

type epilog_style =
  | Naive  (** pop converter only: up to three exit checkpoints *)
  | Optimized  (** epilog optimizer: a single exit checkpoint *)
  | Bare  (** no boundary checkpoints at all (uninstrumented baseline) *)

(* Callee-saved registers actually written by the body. *)
let used_callee_saved (mf : I.mfunc) : int list =
  let used = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun ins ->
          match I.writes ins with
          | Some r when r >= 4 && r <= 12 -> Hashtbl.replace used r ()
          | _ -> ())
        b.I.mcode)
    mf.I.mblocks;
  List.filter (Hashtbl.mem used) [ 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let calls_out (mf : I.mfunc) =
  List.exists
    (fun b -> List.exists (function I.Bl _ -> true | _ -> false) b.I.mcode)
    mf.I.mblocks

(** Lower frames for one function.
    @param slots the IR stack slots of the source function
    @param spill_slots number of register-allocator spill slots
    @param params number of IR parameters (live in r0.. at entry)
    @param returns whether the function returns a value in r0 *)
let run ~(style : epilog_style) ~(slots : Ir.slot list) ~(spill_slots : int)
    ~(params : int) ~(returns : bool) (mf : I.mfunc) : unit =
  (* layout: spills first, then IR slots *)
  let spill_off n = 4 * n in
  let slot_area_base = Util.align_up (4 * spill_slots) 8 in
  let slot_off, slot_area =
    List.fold_left
      (fun (m, off) (s : Ir.slot) ->
        let off = Util.align_up off s.slot_align in
        (Util.Int_map.add s.slot_id off m, off + s.slot_size))
      (Util.Int_map.empty, slot_area_base)
      slots
  in
  let frame_bytes = Util.align_up slot_area 8 in
  let saved = used_callee_saved mf in
  (* r11/r12 are scratch: no need to preserve them across calls we make,
     but the ABI says callee-saved for r11; treat both as scratch-only and
     exclude from saves (they are never live across our calls). *)
  let saved = List.filter (fun r -> r <= 10) saved in
  let need_lr = calls_out mf in
  let push_list = saved @ if need_lr then [ I.lr ] else [] in
  let writes_stack = frame_bytes > 0 || push_list <> [] in
  mf.I.frame_words <- frame_bytes / 4;
  mf.I.mframe <-
    Some
      {
        I.fm_frame_bytes = frame_bytes;
        fm_spill_bytes = 4 * spill_slots;
        fm_slots =
          List.map
            (fun (s : Ir.slot) ->
              (s.slot_id, Util.Int_map.find s.slot_id slot_off, s.slot_size))
            slots;
        fm_saved = push_list;
        fm_params = params;
        fm_returns = returns;
      };
  (* --- eliminate pseudos --- *)
  List.iter
    (fun b ->
      b.I.mcode <-
        List.map
          (fun ins ->
            match ins with
            | I.FrameAddr (rd, s) ->
                let off = Util.Int_map.find s slot_off in
                I.Alu (I.ADD, rd, I.sp, I.I (Int32.of_int off))
            | I.SpillLd (rd, n) ->
                I.Ldr (I.W32, rd, I.sp, Int32.of_int (spill_off n))
            | I.SpillSt (rd, n) ->
                I.Str (I.W32, rd, I.sp, Int32.of_int (spill_off n))
            | ins -> ins)
          b.I.mcode)
    mf.I.mblocks;
  (* --- prolog --- *)
  ignore writes_stack;
  let prolog =
    (* The function-entry checkpoint is unconditional (except in the
       uninstrumented baseline): the middle end's WAR analysis treats every
       call as a region barrier (paper: calls are forced checkpoint
       locations), so even a stackless leaf must provide the barrier. *)
    (if style <> Bare then [ I.Ckpt (I.Function_entry, 0) ] else [])
    @ (if push_list <> [] then [ I.Push push_list ] else [])
    @
    if frame_bytes > 0 then
      [ I.Alu (I.SUB, I.sp, I.sp, I.I (Int32.of_int frame_bytes)) ]
    else []
  in
  (match mf.I.mblocks with
  | stub :: _ -> stub.I.mcode <- prolog @ stub.I.mcode
  | [] -> ());
  (* --- epilog --- *)
  let nsaved = List.length push_list in
  let epilog_code =
    match style with
    | Bare ->
        (* plain epilog: restores and one adjustment, no checkpoints *)
        let restores =
          List.mapi
            (fun k r ->
              I.Ldr (I.W32, r, I.sp, Int32.of_int (frame_bytes + (4 * k))))
            push_list
        in
        let total = frame_bytes + (4 * List.length push_list) in
        if total = 0 then [ I.Bx_lr ]
        else
          restores
          @ [ I.Alu (I.ADD, I.sp, I.sp, I.I (Int32.of_int total)); I.Bx_lr ]
    | Naive ->
        (* (1) deallocate locals; (2) pop callee-saved; (3) pop lr — each
           sp adjustment preceded by its own checkpoint (pop conversion). *)
        (if frame_bytes > 0 then
           [
             I.Ckpt (I.Function_exit, 0);
             I.Alu (I.ADD, I.sp, I.sp, I.I (Int32.of_int frame_bytes));
           ]
         else [])
        @ (if saved <> [] then
             List.mapi
               (fun k r -> I.Ldr (I.W32, r, I.sp, Int32.of_int (4 * k)))
               saved
             @ [
                 I.Ckpt (I.Function_exit, 0);
                 I.Alu
                   (I.ADD, I.sp, I.sp, I.I (Int32.of_int (4 * List.length saved)));
               ]
           else [])
        @ (if need_lr then
             [
               I.Ldr (I.W32, I.lr, I.sp, 0l);
               I.Ckpt (I.Function_exit, 0);
               I.Alu (I.ADD, I.sp, I.sp, I.I 4l);
             ]
           else if frame_bytes = 0 && saved = [] then
             (* even a stackless function must end its region: its reads
                must not share a region with the caller's later writes *)
             [ I.Ckpt (I.Function_exit, 0) ]
           else [])
        @ [ I.Bx_lr ]
    | Optimized ->
        (* interrupts off; all restores; one checkpoint; one adjustment *)
        let restores =
          List.mapi
            (fun k r ->
              I.Ldr (I.W32, r, I.sp, Int32.of_int (frame_bytes + (4 * k))))
            push_list
        in
        let total = frame_bytes + (4 * nsaved) in
        if total = 0 then [ I.Ckpt (I.Function_exit, 0); I.Bx_lr ]
        else
          [ I.Cpsid ] @ restores
          @ [
              I.Ckpt (I.Function_exit, 0);
              I.Alu (I.ADD, I.sp, I.sp, I.I (Int32.of_int total));
              I.Cpsie;
              I.Bx_lr;
            ]
  in
  mf.I.mblocks <-
    mf.I.mblocks
    @ [ { I.mlabel = Isel.epilog_label mf.I.mname; mcode = epilog_code } ]
