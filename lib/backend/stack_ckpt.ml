(* Stack Spill Checkpoint Inserter (paper §3.1.3, §4.4).

   Runs between register allocation and frame lowering, while spill accesses
   are still explicit [SpillLd]/[SpillSt] pseudos with their slot ids.
   Because slots are never shared, a WAR on a spill slot requires a
   barrier-free path from a load of the slot to a store of the same slot —
   in practice only loops re-execute a slot's store after its load.

   Two strategies:
   - [Naive] (Ratchet §4.1): a checkpoint immediately before every store
     that completes a WAR;
   - [Hitting_set] (WARio): per-WAR candidate windows (all points between
     the load and the store inside a block, plus the point before the store)
     fed to the same greedy minimal hitting set as the middle end, so one
     checkpoint can cover the WARs of several slots at once — vital after
     the write clusterers raised register pressure. *)

module I = Wario_machine.Isa

module Point_hs = Wario_analysis.Hitting_set.Make (struct
  type t = int * int (* block index, instruction index *)

  let compare = compare
end)

type strategy = Naive | Hitting_set

type stats = { spill_wars : int; spill_ckpts : int }

let is_barrier = function I.Ckpt _ | I.Bl _ -> true | _ -> false

(* [weight], when given, maps a machine block label to its estimated
   execution frequency (Wario_analysis.Costmodel, static or
   profile-guided); the Hitting_set strategy then minimises the summed
   frequency of chosen points — the expected number of dynamically executed
   spill checkpoints — via the weighted solver.  Without it the historical
   unweighted greedy (every point cost 1) is used. *)
let run ?(weight : (string -> float) option) ~(strategy : strategy)
    (mf : I.mfunc) : stats =
  let blocks = Array.of_list mf.I.mblocks in
  let n = Array.length blocks in
  let label_index = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.replace label_index b.I.mlabel i) blocks;
  let code = Array.map (fun b -> Array.of_list b.I.mcode) blocks in
  let succs i =
    let rec scan acc seals = function
      | [] -> (acc, seals)
      | ins :: rest ->
          let acc =
            match ins with
            | I.B l | I.Bc (_, l) -> (
                match Hashtbl.find_opt label_index l with
                | Some t -> t :: acc
                | None -> acc)
            | _ -> acc
          in
          let seals =
            match (rest, ins) with [], (I.B _ | I.Bx_lr) -> true | _ -> seals
          in
          scan acc seals rest
    in
    let targets, sealed = scan [] false (Array.to_list code.(i)) in
    if sealed || i + 1 >= n then targets else (i + 1) :: targets
  in
  ignore succs;
  (* Machine blocks can hold mid-block branches AND barriers, so
     barrier-free reachability must be edge-aware: a path may escape a
     block through a Bc before hitting a later barrier.  Per block we keep
     the barrier positions and the exit edges (position, target). *)
  let barrier_idx b =
    Array.to_list code.(b)
    |> List.mapi (fun i ins -> (i, ins))
    |> List.filter_map (fun (i, ins) -> if is_barrier ins then Some i else None)
  in
  let barriers = Array.init n barrier_idx in
  let exits_of b =
    let arr = code.(b) in
    let res = ref [] in
    let sealed = ref false in
    Array.iteri
      (fun p ins ->
        match ins with
        | I.Bc (_, l) -> (
            match Hashtbl.find_opt label_index l with
            | Some t -> res := (p, t) :: !res
            | None -> ())
        | I.B l ->
            (match Hashtbl.find_opt label_index l with
            | Some t -> res := (p, t) :: !res
            | None -> ());
            if p = Array.length arr - 1 then sealed := true
        | I.Bx_lr -> if p = Array.length arr - 1 then sealed := true
        | _ -> ())
      arr;
    (* fallthrough to the next block in layout order *)
    if (not !sealed) && b + 1 < n then
      res := (Array.length arr, b + 1) :: !res;
    List.rev !res
  in
  let exits = Array.init n exits_of in
  (* no barrier strictly inside (i, p) *)
  let clear_range b i p =
    not (List.exists (fun k -> k > i && k < p) barriers.(b))
  in
  (* blocks whose ENTRY is barrier-free-reachable from position i of b *)
  let reach_from b i =
    let seen = Hashtbl.create 8 in
    let q = Queue.create () in
    List.iter
      (fun (p, t) -> if p > i && clear_range b i p then Queue.add t q)
      exits.(b);
    while not (Queue.is_empty q) do
      let x = Queue.take q in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        (* traverse x: enter at position -1 (its start) *)
        List.iter
          (fun (p, t) -> if clear_range x (-1) p then Queue.add t q)
          exits.(x)
      end
    done;
    seen
  in
  (* memoised per exact position (the query pattern is loads x stores, so
     each load's BFS is reused across all its store pairings) *)
  let memo : (int * int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let reach_sets b i =
    let key = (b, i) in
    match Hashtbl.find_opt memo key with
    | Some s -> s
    | None ->
        let s = reach_from b i in
        Hashtbl.replace memo key s;
        s
  in
  let reaches (bl, i) (bs, j) =
    (bl = bs && i < j && clear_range bl i j)
    || (clear_range bs (-1) j && Hashtbl.mem (reach_sets bl i) bs)
  in
  (* collect spill accesses *)
  let accesses = ref [] in
  Array.iteri
    (fun b arr ->
      Array.iteri
        (fun i ins ->
          match ins with
          | I.SpillLd (_, slot) -> accesses := (`Load, slot, (b, i)) :: !accesses
          | I.SpillSt (_, slot) -> accesses := (`Store, slot, (b, i)) :: !accesses
          | _ -> ())
        arr)
    code;
  let loads = List.filter (fun (k, _, _) -> k = `Load) !accesses in
  let stores = List.filter (fun (k, _, _) -> k = `Store) !accesses in
  let wars =
    List.concat_map
      (fun (_, slot_l, pl) ->
        List.filter_map
          (fun (_, slot_s, ps) ->
            if slot_l = slot_s && reaches pl ps then Some (pl, ps) else None)
          stores)
      loads
  in
  if wars = [] then { spill_wars = 0; spill_ckpts = 0 }
  else begin
    let chosen =
      match strategy with
      | Naive ->
          (* checkpoint right before every WAR store *)
          Wario_support.Util.dedup_stable (List.map snd wars)
      | Hitting_set ->
          (* Machine blocks may contain mid-block branches (a Cbr lowers to
             Cmp/Bc/B), so a point after a Bc is only on the fall-through
             path: suffix candidates stop at the first diverting branch. *)
          let first_branch_after b i =
            let arr = code.(b) in
            let rec go k =
              if k >= Array.length arr then Array.length arr
              else if I.is_branch arr.(k) then k
              else go (k + 1)
            in
            go (i + 1)
          in
          let sets =
            List.map
              (fun ((bl, i), (bs, j)) ->
                let pts = ref [ (bs, j) ] in
                let add p = pts := p :: !pts in
                if bl = bs && i < j then
                  for k = i + 1 to min j (first_branch_after bl i) do
                    add (bl, k)
                  done
                else begin
                  for k = i + 1 to first_branch_after bl i do add (bl, k) done;
                  for k = 0 to j do add (bs, k) done
                end;
                !pts)
              wars
          in
          let naive () = Wario_support.Util.dedup_stable (List.map snd wars) in
          (* unreachable Error — each set contains its WAR's store point —
             but fall back to the Naive placement as documented *)
          (match weight with
          | None -> (
              match Point_hs.solve ~cost:(fun _ -> 1.) sets with
              | Ok chosen -> chosen
              | Error (Wario_analysis.Hitting_set.Empty_set _) -> naive ())
          | Some w -> (
              let cost (b, _) = w blocks.(b).I.mlabel in
              match Point_hs.solve_weighted ~cost sets with
              | Ok sol -> sol.Point_hs.chosen
              | Error (Wario_analysis.Hitting_set.Empty_set _) -> naive ()))
    in
    (* insert checkpoints, per block in descending index order *)
    let by_block = Hashtbl.create 8 in
    List.iter
      (fun (b, i) ->
        let cur = try Hashtbl.find by_block b with Not_found -> [] in
        Hashtbl.replace by_block b (i :: cur))
      (Wario_support.Util.dedup_stable chosen);
    Hashtbl.iter
      (fun b idxs ->
        let block = blocks.(b) in
        let arr = Array.to_list code.(b) in
        let idxs = List.sort compare idxs in
        let rec weave k rem = function
          | [] -> (
              match rem with
              | i :: _ when i >= k -> [ I.Ckpt (I.Back_end_war, 0) ]
              | _ -> [])
          | ins :: tl ->
              if List.mem k rem then
                I.Ckpt (I.Back_end_war, 0)
                :: ins
                :: weave (k + 1) (List.filter (fun x -> x <> k) rem) tl
              else ins :: weave (k + 1) rem tl
        in
        block.I.mcode <- weave 0 idxs arr)
      by_block;
    { spill_wars = List.length wars; spill_ckpts = List.length chosen }
  end
