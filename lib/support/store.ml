(* A content-addressed on-disk blob store: the persistence layer of the
   compilation cache (lib/core/cache.ml builds the typed, stage-keyed
   interface on top of this).

   Layout under [dir]:

     objects/<key>    one file per entry: a fixed magic line, the key
                      (self-describing — a corrupt or misplaced file can
                      be detected without the index), then the payload
     tmp/             write staging; entries land via [Sys.rename]
     index.jsonl      advisory append-only log of puts ({key, meta,
                      bytes}); informational only — the objects
                      directory is the source of truth and the index is
                      rewritten from it after every eviction sweep

   Crash-safety and concurrency: every entry is written to a unique file
   under tmp/ and renamed into place.  rename(2) is atomic on a POSIX
   filesystem, so a reader (another process, or another domain of an
   `Exec.map` pool) either sees the complete entry or no entry — never a
   torn one.  Two writers racing on the same key both write valid
   entries and the second rename wins; since entries are
   content-addressed the two bodies are identical and the race is
   harmless.

   Eviction: least-recently-used by file mtime.  [find] touches the
   entry's mtime, [put] checks the byte budget and deletes
   oldest-mtime entries until the store fits again.  The budget is
   advisory (a concurrent writer can overshoot between the check and
   the sweep) — the store converges back under the cap on the next put.

   Failure policy: a cache must never break its caller.  Every
   filesystem error degrades to a miss ([find] -> None) or a no-op
   ([put]); corrupt entries are deleted on discovery. *)

let magic = "wario-store-1\n"

type t = {
  dir : string;
  max_bytes : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  puts : int Atomic.t;
  approx_bytes : int Atomic.t;
      (* running estimate of the objects/ footprint; re-synced by the
         full scan each eviction sweep performs *)
}

type counters = { hits : int; misses : int; evictions : int; puts : int }

let objects_dir t = Filename.concat t.dir "objects"
let tmp_dir t = Filename.concat t.dir "tmp"
let index_file t = Filename.concat t.dir "index.jsonl"

let mkdir_p path =
  let rec go p =
    if p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

(* a key becomes a file name verbatim: restrict it to a safe alphabet *)
let valid_key k =
  k <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'F' | '0' .. '9' | '-' | '.' -> true | _ -> false)
       k

let scan_bytes t =
  match Sys.readdir (objects_dir t) with
  | exception Sys_error _ -> 0
  | names ->
      Array.fold_left
        (fun acc name ->
          match Unix.stat (Filename.concat (objects_dir t) name) with
          | { Unix.st_size; _ } -> acc + st_size
          | exception Unix.Unix_error _ -> acc)
        0 names

let default_max_bytes = 256 * 1024 * 1024

let open_store ?(max_bytes = default_max_bytes) (dir : string) : t =
  let t =
    {
      dir;
      max_bytes;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      evictions = Atomic.make 0;
      puts = Atomic.make 0;
      approx_bytes = Atomic.make 0;
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  Atomic.set t.approx_bytes (scan_bytes t);
  t

let counters (t : t) : counters =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    puts = Atomic.get t.puts;
  }

let entry_path t key = Filename.concat (objects_dir t) key

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Advisory index line.  O_APPEND keeps concurrent one-line writes from
   interleaving on a local filesystem; the index is never read back for
   correctness, only for inspection. *)
let index_append t ~key ~meta ~bytes =
  try
    let fd =
      Unix.openfile (index_file t)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
        0o644
    in
    let line =
      Printf.sprintf "{\"key\":\"%s\",\"meta\":\"%s\",\"bytes\":%d}\n" key meta
        bytes
    in
    let b = Bytes.of_string line in
    ignore (Unix.write fd b 0 (Bytes.length b));
    Unix.close fd
  with Unix.Unix_error _ | Sys_error _ -> ()

let index_rewrite t (live : (string * int) list) =
  try
    let tmp =
      Filename.concat (tmp_dir t)
        (Printf.sprintf "index.%d.%d" (Unix.getpid ()) (Domain.self () :> int))
    in
    let oc = open_out_bin tmp in
    List.iter
      (fun (key, bytes) ->
        output_string oc
          (Printf.sprintf "{\"key\":\"%s\",\"meta\":\"live\",\"bytes\":%d}\n"
             key bytes))
      live;
    close_out oc;
    Sys.rename tmp (index_file t)
  with Unix.Unix_error _ | Sys_error _ -> ()

(* Oldest-mtime-first sweep until the store fits under [max_bytes] again.
   Runs a full directory scan: eviction is rare (only on budget overflow)
   and the scan also re-syncs the running byte estimate. *)
let evict_lru t =
  match Sys.readdir (objects_dir t) with
  | exception Sys_error _ -> ()
  | names ->
      let entries =
        Array.to_list names
        |> List.filter_map (fun name ->
               let path = Filename.concat (objects_dir t) name in
               match Unix.stat path with
               | { Unix.st_size; st_mtime; _ } ->
                   Some (name, path, st_size, st_mtime)
               | exception Unix.Unix_error _ -> None)
        |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b)
      in
      let total =
        List.fold_left (fun acc (_, _, sz, _) -> acc + sz) 0 entries
      in
      let total = ref total in
      let live = ref [] in
      List.iter
        (fun (name, path, sz, _) ->
          if !total > t.max_bytes then begin
            (try Sys.remove path with Sys_error _ -> ());
            Atomic.incr t.evictions;
            total := !total - sz
          end
          else live := (name, sz) :: !live)
        entries;
      Atomic.set t.approx_bytes !total;
      index_rewrite t (List.rev !live)

let find (t : t) (key : string) : string option =
  let miss () =
    Atomic.incr t.misses;
    None
  in
  if not (valid_key key) then miss ()
  else
    let path = entry_path t key in
    match read_file path with
    | exception (Sys_error _ | End_of_file) -> miss ()
    | body ->
        let mlen = String.length magic and klen = String.length key in
        let header_len = mlen + klen + 1 in
        if
          String.length body > header_len
          && String.sub body 0 mlen = magic
          && String.sub body mlen klen = key
          && body.[mlen + klen] = '\n'
        then begin
          (* LRU touch: both timestamps to "now" *)
          (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
          Atomic.incr t.hits;
          Some (String.sub body header_len (String.length body - header_len))
        end
        else begin
          (* corrupt or mislabelled entry: delete on discovery *)
          (try Sys.remove path with Sys_error _ -> ());
          miss ()
        end

let mem (t : t) (key : string) : bool =
  valid_key key && Sys.file_exists (entry_path t key)

let put (t : t) ?(meta = "") (key : string) (payload : string) : unit =
  if valid_key key then begin
    try
      let body = magic ^ key ^ "\n" ^ payload in
      let tmp =
        Filename.concat (tmp_dir t)
          (Printf.sprintf "%s.%d.%d" key (Unix.getpid ())
             (Domain.self () :> int))
      in
      let oc = open_out_bin tmp in
      output_string oc body;
      close_out oc;
      Sys.rename tmp (entry_path t key);
      Atomic.incr t.puts;
      index_append t ~key ~meta ~bytes:(String.length body);
      let b = ref (Atomic.get t.approx_bytes) in
      let continue = ref true in
      while !continue do
        if Atomic.compare_and_set t.approx_bytes !b (!b + String.length body)
        then continue := false
        else b := Atomic.get t.approx_bytes
      done;
      if Atomic.get t.approx_bytes > t.max_bytes then evict_lru t
    with Unix.Unix_error _ | Sys_error _ -> ()
  end
