(* Small shared utilities used across the WARio libraries. *)

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)
module Str_map = Map.Make (String)
module Str_set = Set.Make (String)

(** [fold_range f acc lo hi] folds [f] over the half-open range [lo, hi). *)
let fold_range f acc lo hi =
  let rec go acc i = if i >= hi then acc else go (f acc i) (i + 1) in
  go acc lo

(** [list_index_of p xs] is the index of the first element satisfying [p]. *)
let list_index_of p xs =
  let rec go i = function
    | [] -> None
    | x :: _ when p x -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 xs

(** [take n xs] is the first [n] elements of [xs] (all of [xs] if shorter). *)
let rec take n xs =
  if n <= 0 then [] else match xs with [] -> [] | x :: tl -> x :: take (n - 1) tl

(** [drop n xs] is [xs] without its first [n] elements. *)
let rec drop n xs =
  if n <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (n - 1) tl

(** [span p xs] splits [xs] into the longest prefix satisfying [p] and the rest. *)
let span p xs =
  let rec go acc = function
    | x :: tl when p x -> go (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  go [] xs

(** Stable deduplication preserving first occurrences. *)
let dedup_stable (type a) (xs : a list) : a list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else (
        Hashtbl.add seen x ();
        true))
    xs

(** Round [n] up to the next multiple of [align] (a power of two or not). *)
let align_up n align = if align <= 1 then n else (n + align - 1) / align * align

(** Nearest-rank percentile over an already-sorted non-empty array: the
    sort-once companion to {!percentile} for callers taking several
    percentiles of one sample. *)
let percentile_sorted p (sorted : int array) =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Util.percentile_sorted: empty";
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let rank = max 1 (min n rank) in
  sorted.(rank - 1)

(** Simple percentile over a non-empty list (nearest-rank).  Sorts per
    call; use {!percentile_sorted} when taking several percentiles of the
    same sample. *)
let percentile p xs =
  match xs with
  | [] -> invalid_arg "Util.percentile: empty"
  | _ ->
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      percentile_sorted p sorted

let mean xs =
  match xs with
  | [] -> invalid_arg "Util.mean: empty"
  | _ -> List.fold_left ( +. ) 0. (List.map float_of_int xs) /. float_of_int (List.length xs)

(** FNV-1a 64-bit digest of a string.  Deterministic across runs and OCaml
    versions (unlike [Hashtbl.hash] on structured data), so it is safe to
    persist — the regression corpus uses it both to content-address entry
    files and to fingerprint the program a reproducer was recorded
    against. *)
let fnv1a64 (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(** A deterministic 32-bit linear congruential generator, used wherever the
    library needs reproducible pseudo-randomness (workload inputs, synthetic
    harvester traces).  Numerical Recipes constants. *)
module Lcg = struct
  type t = { mutable state : int32 }

  let create seed = { state = Int32.of_int (seed land 0x7fffffff) }

  let next t =
    let s = Int32.add (Int32.mul t.state 1664525l) 1013904223l in
    t.state <- s;
    s

  (** [int t bound] is a pseudo-random int in [0, bound). *)
  let int t bound =
    if bound <= 0 then invalid_arg "Lcg.int: bound <= 0";
    let v = Int32.to_int (Int32.shift_right_logical (next t) 8) in
    v mod bound

  (** [float t] is a pseudo-random float in [0, 1). *)
  let float t = float_of_int (int t (1 lsl 24)) /. float_of_int (1 lsl 24)
end

(** A binary max-heap over float priorities with integer payloads, used by
    the greedy hitting set (lazy-deletion pattern: priorities that only ever
    decrease are revalidated at pop time). *)
module Fheap = struct
  type t = {
    mutable keys : float array;
    mutable vals : int array;
    mutable size : int;
  }

  let create () = { keys = Array.make 64 0.; vals = Array.make 64 0; size = 0 }

  let grow h =
    if h.size = Array.length h.keys then begin
      let nk = Array.make (2 * h.size) 0. and nv = Array.make (2 * h.size) 0 in
      Array.blit h.keys 0 nk 0 h.size;
      Array.blit h.vals 0 nv 0 h.size;
      h.keys <- nk;
      h.vals <- nv
    end

  let swap h i j =
    let k = h.keys.(i) and v = h.vals.(i) in
    h.keys.(i) <- h.keys.(j);
    h.vals.(i) <- h.vals.(j);
    h.keys.(j) <- k;
    h.vals.(j) <- v

  let push h key v =
    grow h;
    h.keys.(h.size) <- key;
    h.vals.(h.size) <- v;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.keys.((!i - 1) / 2) < h.keys.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let is_empty h = h.size = 0

  (** Pop the maximum; raises [Invalid_argument] when empty. *)
  let pop h =
    if h.size = 0 then invalid_arg "Fheap.pop: empty";
    let key = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < h.size && h.keys.(l) > h.keys.(!m) then m := l;
      if r < h.size && h.keys.(r) > h.keys.(!m) then m := r;
      if !m <> !i then begin
        swap h !i !m;
        i := !m
      end
      else continue := false
    done;
    (key, v)
end
