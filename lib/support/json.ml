(* Minimal JSON reader for run artifacts (BENCH_*.json, span/metrics JSONL,
   campaign coverage JSON, stats budgets).  Recursive descent over a string;
   no external dependencies.  Numbers are kept as floats — the artifact
   schemas only store integers small enough to round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then (
          (match peek () with
          | None -> fail "unterminated escape"
          | Some e ->
              advance ();
              (match e with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* artifacts are ASCII; encode the rare non-ASCII point
                     as UTF-8 so round-trips stay lossless *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then (
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
                  else (
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
              | _ -> fail "bad escape"));
          loop ())
        else (
          Buffer.add_char b c;
          loop ())
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Malformed msg -> Error msg

(* --- accessors ----------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let obj_fields = function Obj fields -> Some fields | _ -> None

(* --- writer helpers ------------------------------------------------ *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Render a float without trailing noise: integers print as integers. *)
let float_repr (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips: span timestamps are
       absolute epoch milliseconds, where %.6g would throw away every
       digit below the kilosecond *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
