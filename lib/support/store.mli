(** A content-addressed on-disk blob store — the persistence layer of
    the compilation cache (see lib/core/cache.ml for the typed,
    stage-keyed interface and DESIGN.md §19 for the layout).

    Entries live as [dir/objects/<key>] files, each self-describing (a
    magic line plus its own key before the payload).  Writes stage under
    [dir/tmp/] and land via an atomic [rename], so concurrent readers —
    other processes, or other domains of an {!Wario_exec} pool — never
    observe torn entries.  [dir/index.jsonl] is an advisory put log,
    rewritten from the live object set after every eviction sweep.

    Eviction is least-recently-used by file mtime with a byte budget:
    [find] touches the entry, [put] sweeps oldest-first when the store
    outgrows [max_bytes].

    A cache must never break its caller: every filesystem error degrades
    to a miss ([find] -> [None]) or a no-op ([put]); corrupt entries are
    deleted on discovery. *)

type t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
}

val default_max_bytes : int
(** 256 MiB. *)

val open_store : ?max_bytes:int -> string -> t
(** [open_store dir] creates [dir] (and its [objects/]/[tmp/]
    subdirectories) if missing and returns a handle.  The handle is
    domain-safe: counters are atomics and all entry state lives on
    disk. *)

val find : t -> string -> string option
(** Payload stored under a key, or [None] (counted as a miss) when
    absent, torn, corrupt or unreadable.  A hit refreshes the entry's
    LRU position. *)

val mem : t -> string -> bool
(** Existence probe without reading, counting or LRU-touching. *)

val put : t -> ?meta:string -> string -> string -> unit
(** [put t ~meta key payload] writes an entry atomically
    (write-to-tmp + rename), logs it to the index with the advisory
    [meta] tag, and runs the LRU sweep if the byte budget is exceeded.
    Keys must be non-empty and drawn from [a-z A-F 0-9 - .] (they are
    used as file names verbatim); anything else is ignored. *)

val counters : t -> counters
(** Hit/miss/eviction/put totals since [open_store]. *)
