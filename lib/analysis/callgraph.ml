(* Interprocedural call-graph cost model.

   The per-function Ball-Larus weights (Costmodel.static_weights) answer
   "how often does this block run per invocation of its function?"; the
   hitting-set placement minimises the sum of chosen weights, which is only
   the true objective if every function is invoked equally often.  It
   isn't: crc32_stream calls mc_getc once per byte, so a checkpoint in
   mc_getc's entry block costs thousands of dynamic checkpoints while one
   in io_refill's costs a handful.  This module supplies the missing
   factor.

   Construction:
   - nodes are the program's defined functions; one edge per WIR [Call]
     instruction, weighted by the static frequency of the calling block
     (a call in a depth-2 loop contributes ~100 invocations per caller
     entry under the trip_guess model);
   - Tarjan's SCC algorithm condenses recursion.  Tarjan emits components
     in reverse topological order of the condensation (callees complete
     first), so processing the reversed list visits callers before
     callees;
   - invocation frequencies propagate top-down through the condensation:
     the root starts at 1.0, each function pushes [freq(f) * edge_freq]
     along its extra-SCC out-edges, and a recursive SCC multiplies its
     external inflow by [recursion_factor] (each level of recursion is
     guessed to re-enter trip_guess times; intra-SCC edges are dropped —
     the multiplier stands in for the diverging geometric sum);
   - functions the root cannot reach keep freq 1.0 so their block weights
     degrade to the old per-invocation model instead of collapsing to the
     floor (dead code and test stubs still get sensible placement).

   block_weight multiplies the two factors and floors at
   Costmodel.min_weight, keeping the solver's cost strictly positive. *)

module Ir = Wario_ir.Ir

type edge = {
  cg_caller : string;
  cg_callee : string;
  cg_site : Ir.label;
  cg_freq : float;
}

type t = {
  cg_funcs : string list;
  cg_edges : edge list;
  recursive : string -> bool;
  func_freq : string -> float;
  local_weight : string -> Ir.label -> float;
  block_weight : string -> Ir.label -> float;
}

(* ------------------------------------------------------------------ *)
(* Tarjan SCC over the function graph                                   *)
(* ------------------------------------------------------------------ *)

(* Returns the SCC list in reverse topological order of the condensation
   (every edge leaving an SCC targets an SCC emitted EARLIER). *)
let tarjan (nodes : string list) (succs : string -> string list) :
    string list list =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !sccs

(* ------------------------------------------------------------------ *)
(* Build                                                                *)
(* ------------------------------------------------------------------ *)

let build ?(root = "main") ?(recursion_factor = Costmodel.trip_guess)
    (p : Ir.program) : t =
  let funcs = List.map (fun f -> f.Ir.fname) p.Ir.funcs in
  let defined = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace defined f ()) funcs;
  (* Per-function local (per-invocation) weights. *)
  let locals : (string, Ir.label -> float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let cfg = Cfg.build f in
      let dom = Dominance.build cfg in
      let loops = Loops.build cfg dom in
      Hashtbl.replace locals f.Ir.fname (Costmodel.static_weights cfg loops))
    p.Ir.funcs;
  let local_weight fname lbl =
    match Hashtbl.find_opt locals fname with
    | Some w -> w lbl
    | None -> Costmodel.min_weight
  in
  (* One edge per Call instruction, weighted by the calling block's static
     frequency (calls to undefined externals are dropped — nothing to
     place there). *)
  let edges =
    List.concat_map
      (fun f ->
        List.concat_map
          (fun (b : Ir.block) ->
            List.filter_map
              (function
                | Ir.Call (_, callee, _) when Hashtbl.mem defined callee ->
                    Some
                      {
                        cg_caller = f.Ir.fname;
                        cg_callee = callee;
                        cg_site = b.Ir.bname;
                        cg_freq = local_weight f.Ir.fname b.Ir.bname;
                      }
                | _ -> None)
              b.Ir.insns)
          f.Ir.blocks)
      p.Ir.funcs
  in
  let out : (string, edge list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find out e.cg_caller with Not_found -> [] in
      Hashtbl.replace out e.cg_caller (cur @ [ e ]))
    edges;
  let out_edges f = try Hashtbl.find out f with Not_found -> [] in
  (* SCC condensation: scc_of maps a function to its component id;
     a component is recursive if it has >1 member or a self-edge. *)
  let sccs =
    tarjan funcs (fun f ->
        List.sort_uniq compare (List.map (fun e -> e.cg_callee) (out_edges f)))
  in
  let scc_of = Hashtbl.create 16 in
  List.iteri
    (fun i scc -> List.iter (fun f -> Hashtbl.replace scc_of f i) scc)
    sccs;
  let is_recursive = Hashtbl.create 16 in
  List.iter
    (fun scc ->
      let rec_ =
        match scc with
        | [ f ] ->
            List.exists (fun e -> String.equal e.cg_callee f) (out_edges f)
        | _ -> true
      in
      List.iter (fun f -> Hashtbl.replace is_recursive f rec_) scc)
    sccs;
  (* Top-down propagation over the condensation.  Tarjan's output is
     reverse-topological (callees first), so walk it reversed. *)
  let inflow : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let add_inflow f x =
    Hashtbl.replace inflow f
      ((try Hashtbl.find inflow f with Not_found -> 0.) +. x)
  in
  let indeg = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if Hashtbl.find scc_of e.cg_caller <> Hashtbl.find scc_of e.cg_callee
      then
        Hashtbl.replace indeg e.cg_callee
          (1 + try Hashtbl.find indeg e.cg_callee with Not_found -> 0))
    edges;
  (* Seed the roots: [root] if defined, else every function no other
     component calls (a library without main gets each entry point at
     frequency 1). *)
  if Hashtbl.mem defined root then add_inflow root 1.0
  else
    List.iter
      (fun f -> if not (Hashtbl.mem indeg f) then add_inflow f 1.0)
      funcs;
  let freq : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun scc ->
      let factor =
        if try Hashtbl.find is_recursive (List.hd scc) with Not_found -> false
        then recursion_factor
        else 1.0
      in
      List.iter
        (fun f ->
          let fin = try Hashtbl.find inflow f with Not_found -> 0. in
          Hashtbl.replace freq f (fin *. factor))
        scc;
      (* Push along extra-SCC edges only; intra-SCC flow is the factor's
         job. *)
      List.iter
        (fun f ->
          let ff = Hashtbl.find freq f in
          if ff > 0. then
            List.iter
              (fun e ->
                if
                  Hashtbl.find scc_of e.cg_callee
                  <> Hashtbl.find scc_of e.cg_caller
                then add_inflow e.cg_callee (ff *. e.cg_freq))
              (out_edges f))
        scc)
    (List.rev sccs);
  let func_freq f =
    match Hashtbl.find_opt freq f with
    | Some x when x > 0. -> x
    | _ -> 1.0 (* unreachable from root: keep per-invocation scale *)
  in
  {
    cg_funcs = funcs;
    cg_edges = edges;
    recursive =
      (fun f -> try Hashtbl.find is_recursive f with Not_found -> false);
    func_freq;
    local_weight;
    block_weight =
      (fun f lbl ->
        Float.max (func_freq f *. local_weight f lbl) Costmodel.min_weight);
  }

let callers_of (t : t) (callee : string) : edge list =
  List.filter (fun e -> String.equal e.cg_callee callee) t.cg_edges
