(* Barrier-aware reachability between program points.

   A *barrier* is an instruction that (dynamically) starts a new idempotent
   region: an explicit [Checkpoint], or a [Call] (every function body begins
   with a function-entry checkpoint, so calling cuts the region).

   [reaches t p q] answers: is there a CFG path from point [p] to point [q]
   that executes no barrier?  This is the reachability relation underlying
   the static WAR definition and checkpoint placement. *)

open Wario_ir.Ir
module Str_set = Wario_support.Util.Str_set

type t = {
  cfg : Cfg.t;
  barriers : (label, int list) Hashtbl.t;  (** sorted barrier indices per block *)
  transparent : (label, bool) Hashtbl.t;
  (* memo: src block -> blocks whose entry is reachable from src's exit
     through transparent interior blocks *)
  memo : (label, Str_set.t) Hashtbl.t;
}

let build (cfg : Cfg.t) : t =
  let barriers = Hashtbl.create 64 and transparent = Hashtbl.create 64 in
  List.iter
    (fun lbl ->
      let b = Cfg.block cfg lbl in
      let idxs =
        List.mapi (fun i ins -> (i, ins)) b.insns
        |> List.filter_map (fun (i, ins) -> if is_barrier ins then Some i else None)
      in
      Hashtbl.replace barriers lbl idxs;
      Hashtbl.replace transparent lbl (idxs = []))
    (Cfg.labels cfg);
  { cfg; barriers; transparent; memo = Hashtbl.create 64 }

let barrier_idxs t lbl = try Hashtbl.find t.barriers lbl with Not_found -> []
let is_transparent t lbl = try Hashtbl.find t.transparent lbl with Not_found -> true

(** No barrier strictly between instruction indices [i] and [j] (i < j). *)
let clear_between t lbl i j =
  not (List.exists (fun k -> k > i && k < j) (barrier_idxs t lbl))

(** No barrier strictly after index [i] in block [lbl] (the path may leave
    through the terminator). *)
let clear_after t lbl i = not (List.exists (fun k -> k > i) (barrier_idxs t lbl))

(** No barrier strictly before index [j]. *)
let clear_before t lbl j = not (List.exists (fun k -> k < j) (barrier_idxs t lbl))

(** Blocks whose *entry* is reachable from the *exit* of [src] without
    executing a barrier in any intermediate block. *)
let reachable_entries t src : Str_set.t =
  match Hashtbl.find_opt t.memo src with
  | Some s -> s
  | None ->
      let result = ref Str_set.empty in
      let queue = Queue.create () in
      List.iter (fun s -> Queue.add s queue) (Cfg.succs t.cfg src);
      while not (Queue.is_empty queue) do
        let b = Queue.take queue in
        if not (Str_set.mem b !result) then begin
          result := Str_set.add b !result;
          if is_transparent t b then
            List.iter (fun s -> Queue.add s queue) (Cfg.succs t.cfg b)
        end
      done;
      Hashtbl.replace t.memo src !result;
      !result

(** Is there a barrier-free path from point [p] (exclusive) to point [q]
    (exclusive)?  Points index instructions: [(lbl, i)] is the i-th
    instruction of block [lbl]. *)
let reaches t ((bl, i) : point) ((bq, j) : point) : bool =
  let straight_line = bl = bq && i < j && clear_between t bl i j in
  straight_line
  || (* leave bl after i, travel, enter bq before j *)
  (clear_after t bl i
  && clear_before t bq j
  && Str_set.mem bq (reachable_entries t bl))

(** Like [reaches], but produce the barrier-free path as evidence: the two
    end points bracketing the entry point of every block traversed in
    between ([[p; q]] for a straight-line path).  [None] when [q] is not
    barrier-free-reachable from [p]. *)
let reaches_witness t ((bl, i) as p : point) ((bq, j) as q : point) :
    point list option =
  if bl = bq && i < j && clear_between t bl i j then Some [ p; q ]
  else if not (clear_after t bl i && clear_before t bq j) then None
  else begin
    (* BFS with parents over transparent interior blocks *)
    let parent : (label, label option) Hashtbl.t = Hashtbl.create 16 in
    let queue = Queue.create () in
    List.iter (fun s -> Queue.add (s, None) queue) (Cfg.succs t.cfg bl);
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let b, from = Queue.take queue in
      if not (Hashtbl.mem parent b) then begin
        Hashtbl.replace parent b from;
        if b = bq then found := true
        else if is_transparent t b then
          List.iter (fun s -> Queue.add (s, Some b) queue) (Cfg.succs t.cfg b)
      end
    done;
    if not !found then None
    else begin
      let rec chain acc b =
        match Hashtbl.find parent b with
        | None -> b :: acc
        | Some prev -> chain (b :: acc) prev
      in
      let blocks = chain [] bq in
      Some ((p :: List.map (fun b -> (b, 0)) blocks) @ [ q ])
    end
  end
