(** Barrier-aware reachability between program points.

    A {e barrier} starts a new idempotent region: an explicit checkpoint or
    a call (every function is bracketed by entry/exit checkpoints).
    [reaches] underlies both the static WAR definition and checkpoint
    placement. *)

type t

val build : Cfg.t -> t

val reaches : t -> Wario_ir.Ir.point -> Wario_ir.Ir.point -> bool
(** Is there a CFG path from the first point to the second that executes no
    barrier? *)

val reaches_witness :
  t -> Wario_ir.Ir.point -> Wario_ir.Ir.point -> Wario_ir.Ir.point list option
(** Like [reaches], but with evidence: the end points bracketing the entry
    point of every block the barrier-free path traverses ([[p; q]] for a
    straight-line path), or [None] if unreachable.  Used by the WAR
    diagnostics in [Run.check_no_violations] and the static certifier's
    reports, which print the path instead of a bare boolean. *)
