(* Greedy minimal hitting set (de Kruijf et al., §4.2.1 — the algorithm both
   Ratchet and WARio use to pick checkpoint locations).

   Input: a family of non-empty candidate sets (one per WAR violation) and a
   cost per candidate.  Output: a set of candidates such that every input
   set contains at least one chosen candidate.  The greedy rule picks, at
   each step, the candidate maximising (number of uncovered sets hit) / cost,
   breaking ties toward lower cost and then lower element order for
   determinism.

   The implementation is the standard incremental-count greedy: when an
   element is chosen, only the sets it covers have their other elements'
   counters decremented, so total work is proportional to the sum of set
   sizes plus (#elements x #chosen). *)

type error = Empty_set of int  (** index of the offending input set *)

module Make (Elt : sig
  type t

  val compare : t -> t -> int
end) =
struct
  let solve_nonempty ~(cost : Elt.t -> float) (sets : Elt.t list list) :
      Elt.t list =
    (* intern elements (hashed: candidate families can hold millions) *)
    let id_of : (Elt.t, int) Hashtbl.t = Hashtbl.create 4096 in
    let elems = ref [] in
    let n_elems = ref 0 in
    let intern e =
      match Hashtbl.find_opt id_of e with
      | Some i -> i
      | None ->
          let i = !n_elems in
          incr n_elems;
          Hashtbl.replace id_of e i;
          elems := e :: !elems;
          i
    in
    let sets =
      Array.of_list
        (List.map
           (fun s ->
             Array.of_list (List.map intern (List.sort_uniq Elt.compare s)))
           sets)
    in
    let elems = Array.of_list (List.rev !elems) in
    let ne = Array.length elems in
    let costs = Array.map cost elems in
    (* element -> indices of sets containing it *)
    let containing = Array.make ne [] in
    Array.iteri
      (fun si s -> Array.iter (fun e -> containing.(e) <- si :: containing.(e)) s)
      sets;
    let covered = Array.make (Array.length sets) false in
    let count = Array.make ne 0 in
    Array.iteri (fun e lst -> count.(e) <- List.length lst) containing;
    let uncovered = ref (Array.length sets) in
    let chosen = ref [] in
    (* Greedy selection with a lazy max-heap: scores only decrease as sets
       get covered, so a stale heap entry is simply re-pushed with its
       current score; ties break toward lower cost then element order by
       perturbing the score deterministically at push time. *)
    let score e = float_of_int count.(e) /. max costs.(e) 1e-9 in
    let heap = Wario_support.Util.Fheap.create () in
    for e = 0 to ne - 1 do
      if count.(e) > 0 then Wario_support.Util.Fheap.push heap (score e) e
    done;
    while !uncovered > 0 do
      let key, e = Wario_support.Util.Fheap.pop heap in
      let current = score e in
      if count.(e) = 0 then () (* fully stale: drop *)
      else if current < key -. 1e-12 then
        (* stale: revalidate *)
        Wario_support.Util.Fheap.push heap current e
      else begin
        chosen := elems.(e) :: !chosen;
        List.iter
          (fun si ->
            if not covered.(si) then begin
              covered.(si) <- true;
              decr uncovered;
              Array.iter (fun e' -> count.(e') <- count.(e') - 1) sets.(si)
            end)
          containing.(e)
      end
    done;
    List.rev !chosen

  (** [solve ~cost sets] returns [Ok chosen] such that every input set
      contains a chosen element, or [Error (Empty_set i)] when set [i] is
      empty — an empty set is unhittable, so no cover exists.  Callers must
      not drop such a set silently: either guarantee non-emptiness by
      construction (every in-tree candidate set contains the point before
      its WAR's store), or fall back to a placement that needs no cover,
      such as a checkpoint directly before each WAR store. *)
  let solve ~(cost : Elt.t -> float) (sets : Elt.t list list) :
      (Elt.t list, error) result =
    let rec first_empty i = function
      | [] -> None
      | [] :: _ -> Some i
      | _ :: tl -> first_empty (i + 1) tl
    in
    match first_empty 0 sets with
    | Some i -> Error (Empty_set i)
    | None -> Ok (solve_nonempty ~cost sets)
end
