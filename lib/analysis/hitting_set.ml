(* Minimal hitting set (de Kruijf et al., §4.2.1 — the algorithm both
   Ratchet and WARio use to pick checkpoint locations), in two flavours:

   - [solve]: the classic greedy, picking at each step the candidate
     maximising (number of uncovered sets hit) / cost.  Kept as the
     baseline placement and as the upper bound seeding the exact solver.
   - [solve_weighted]: cost-guided placement.  The objective is the *sum of
     the chosen candidates' costs* (with costs = estimated execution
     frequencies, that sum is the expected number of dynamically executed
     checkpoints), solved exactly by branch and bound with memoized lower
     bounds under a node budget, falling back to the weighted greedy when
     the instance is too large or the budget runs out.  The returned
     [solution] records which of the two produced it.

   The greedy implementation is the standard incremental-count greedy: when
   an element is chosen, only the sets it covers have their other elements'
   counters decremented, so total work is proportional to the sum of set
   sizes plus (#elements x #chosen). *)

type error = Empty_set of int  (** index of the offending input set *)

type optimality =
  | Exact  (** branch and bound completed: no cheaper cover exists *)
  | Greedy_fallback  (** instance too large or node budget exhausted *)

let default_node_budget = 20_000

(* Exact search is only attempted when the (reduced) family fits in an
   OCaml int bitmask and its candidate lists are modest — each node costs
   O(sets x set size) in the lower bound, so giant dominator-sandwich
   windows would spend the whole budget learning nothing.  Beyond either
   gate the greedy bound is the answer. *)
let max_exact_sets = 62
let max_exact_elems = 2_000  (* sum of reduced set sizes *)

module Make (Elt : sig
  type t

  val compare : t -> t -> int
end) =
struct
  type solution = {
    chosen : Elt.t list;  (** sorted by [Elt.compare] *)
    total_cost : float;
    optimality : optimality;
    nodes_explored : int;
        (** branch-and-bound nodes visited (0 when the exact search was
            never attempted) — the span/metrics attribution for solver
            effort, including budget-exhausted fallbacks *)
  }

  (* intern elements (hashed: candidate families can hold millions) *)
  let intern_sets (sets : Elt.t list list) =
    let id_of : (Elt.t, int) Hashtbl.t = Hashtbl.create 4096 in
    let elems = ref [] in
    let n_elems = ref 0 in
    let intern e =
      match Hashtbl.find_opt id_of e with
      | Some i -> i
      | None ->
          let i = !n_elems in
          incr n_elems;
          Hashtbl.replace id_of e i;
          elems := e :: !elems;
          i
    in
    let sets =
      Array.of_list
        (List.map
           (fun s ->
             Array.of_list (List.map intern (List.sort_uniq Elt.compare s)))
           sets)
    in
    (sets, Array.of_list (List.rev !elems))

  let solve_nonempty ~(cost : Elt.t -> float) (sets : Elt.t list list) :
      Elt.t list =
    let sets, elems = intern_sets sets in
    let ne = Array.length elems in
    let costs = Array.map cost elems in
    (* element -> indices of sets containing it *)
    let containing = Array.make ne [] in
    Array.iteri
      (fun si s -> Array.iter (fun e -> containing.(e) <- si :: containing.(e)) s)
      sets;
    let covered = Array.make (Array.length sets) false in
    let count = Array.make ne 0 in
    Array.iteri (fun e lst -> count.(e) <- List.length lst) containing;
    let uncovered = ref (Array.length sets) in
    let chosen = ref [] in
    (* Greedy selection with a lazy max-heap: scores only decrease as sets
       get covered, so a stale heap entry is simply re-pushed with its
       current score; ties break toward lower cost then element order by
       perturbing the score deterministically at push time. *)
    let score e = float_of_int count.(e) /. max costs.(e) 1e-9 in
    let heap = Wario_support.Util.Fheap.create () in
    for e = 0 to ne - 1 do
      if count.(e) > 0 then Wario_support.Util.Fheap.push heap (score e) e
    done;
    while !uncovered > 0 do
      let key, e = Wario_support.Util.Fheap.pop heap in
      let current = score e in
      if count.(e) = 0 then () (* fully stale: drop *)
      else if current < key -. 1e-12 then
        (* stale: revalidate *)
        Wario_support.Util.Fheap.push heap current e
      else begin
        chosen := elems.(e) :: !chosen;
        List.iter
          (fun si ->
            if not covered.(si) then begin
              covered.(si) <- true;
              decr uncovered;
              Array.iter (fun e' -> count.(e') <- count.(e') - 1) sets.(si)
            end)
          containing.(e)
      end
    done;
    List.rev !chosen

  (** [solve ~cost sets] returns [Ok chosen] such that every input set
      contains a chosen element, or [Error (Empty_set i)] when set [i] is
      empty — an empty set is unhittable, so no cover exists.  Callers must
      not drop such a set silently: either guarantee non-emptiness by
      construction (every in-tree candidate set contains the point before
      its WAR's store), or fall back to a placement that needs no cover,
      such as a checkpoint directly before each WAR store. *)
  let solve ~(cost : Elt.t -> float) (sets : Elt.t list list) :
      (Elt.t list, error) result =
    let rec first_empty i = function
      | [] -> None
      | [] :: _ -> Some i
      | _ :: tl -> first_empty (i + 1) tl
    in
    match first_empty 0 sets with
    | Some i -> Error (Empty_set i)
    | None -> Ok (solve_nonempty ~cost sets)

  (* Redundancy elimination for greedy covers: a greedy choice can become
     superfluous once later choices cover all its sets, so try dropping the
     chosen elements in decreasing cost order (most expensive first) and
     keep the cover property.  Never increases total cost; the result is a
     *minimal* (though not necessarily minimum) cover. *)
  let prune_cover ~(cost : Elt.t -> float) (sets : Elt.t list list)
      (chosen : Elt.t list) : Elt.t list =
    let isets, elems = intern_sets sets in
    let ne = Array.length elems in
    let id_of = Hashtbl.create (2 * ne) in
    Array.iteri (fun i e -> Hashtbl.replace id_of e i) elems;
    let kept = Array.make ne false in
    List.iter
      (fun e ->
        match Hashtbl.find_opt id_of e with
        | Some i -> kept.(i) <- true
        | None -> () (* not a set member: vacuously redundant, dropped *))
      chosen;
    (* per set, how many kept elements hit it *)
    let hits = Array.map (fun s -> Array.fold_left (fun a e -> a + if kept.(e) then 1 else 0) 0 s) isets in
    let containing = Array.make ne [] in
    Array.iteri
      (fun si s -> Array.iter (fun e -> containing.(e) <- si :: containing.(e)) s)
      isets;
    let costs = Array.map cost elems in
    let order =
      List.init ne (fun i -> i)
      |> List.filter (fun i -> kept.(i))
      |> List.sort (fun a b ->
             match compare costs.(b) costs.(a) with
             | 0 -> compare a b
             | c -> c)
    in
    List.iter
      (fun e ->
        if kept.(e) && List.for_all (fun si -> hits.(si) >= 2) containing.(e)
        then begin
          kept.(e) <- false;
          List.iter (fun si -> hits.(si) <- hits.(si) - 1) containing.(e)
        end)
      order;
    List.init ne (fun i -> i)
    |> List.filter (fun i -> kept.(i))
    |> List.map (fun i -> elems.(i))

  (* ---------------- weighted exact solver ---------------- *)

  exception Budget_exhausted

  (* Branch and bound over the reduced family.  [sets] are interned int
     arrays; [costs] per element.  Search state is the bitmask of covered
     sets.  Lower bound: greedily collect element-disjoint uncovered sets —
     any cover must pay at least the cheapest element of each — memoized
     per covered-mask.  Returns the cheapest cover as element ids. *)
  let branch_and_bound ~budget ~nodes sets costs incumbent incumbent_cost =
    let ns = Array.length sets in
    let ne = Array.length costs in
    let full = (1 lsl ns) - 1 in
    (* element -> bitmask of sets containing it *)
    let hits = Array.make ne 0 in
    Array.iteri
      (fun si s -> Array.iter (fun e -> hits.(e) <- hits.(e) lor (1 lsl si)) s)
      sets;
    let min_cost_of_set =
      Array.map
        (fun s -> Array.fold_left (fun a e -> min a costs.(e)) infinity s)
        sets
    in
    let lb_memo : (int, float) Hashtbl.t = Hashtbl.create 1024 in
    let used = Array.make ne false in
    let lower_bound covered =
      match Hashtbl.find_opt lb_memo covered with
      | Some lb -> lb
      | None ->
          Array.fill used 0 ne false;
          let lb = ref 0. in
          for si = 0 to ns - 1 do
            if covered land (1 lsl si) = 0 then begin
              let disjoint =
                Array.for_all (fun e -> not used.(e)) sets.(si)
              in
              if disjoint then begin
                lb := !lb +. min_cost_of_set.(si);
                Array.iter (fun e -> used.(e) <- true) sets.(si)
              end
            end
          done;
          Hashtbl.replace lb_memo covered !lb;
          !lb
    in
    let best = ref incumbent and best_cost = ref incumbent_cost in
    let rec go covered acc acc_cost =
      incr nodes;
      if !nodes > budget then raise Budget_exhausted;
      if covered = full then begin
        if acc_cost < !best_cost -. 1e-12 then begin
          best := acc;
          best_cost := acc_cost
        end
      end
      else if acc_cost +. lower_bound covered < !best_cost -. 1e-12 then begin
        (* branch on the most constrained uncovered set (fewest remaining
           candidates); deterministic tie-break toward the lowest index *)
        let pick = ref (-1) and pick_n = ref max_int in
        for si = 0 to ns - 1 do
          if covered land (1 lsl si) = 0 then begin
            let n = Array.length sets.(si) in
            if n < !pick_n then begin
              pick := si;
              pick_n := n
            end
          end
        done;
        (* cheapest elements first: good incumbents early, better pruning *)
        let cands = Array.copy sets.(!pick) in
        Array.sort
          (fun a b ->
            match compare costs.(a) costs.(b) with 0 -> compare a b | c -> c)
          cands;
        Array.iter
          (fun e -> go (covered lor hits.(e)) (e :: acc) (acc_cost +. costs.(e)))
          cands
      end
    in
    go 0 [] 0.;
    (!best, !best_cost)

  (* Drop duplicate and superset sets: hitting a subset hits every superset,
     so only the minimal sets constrain the cover.  Keeps exact instances
     small (the bitmask gate is on the *reduced* family).  The
     superset-minimality pass is quadratic with a linear subset test, so it
     only runs on families small enough to possibly pass the bitmask gate
     afterwards — larger ones are greedy-fallback territory anyway. *)
  let max_minimality_sets = 2 * max_exact_sets

  let reduce_family (sets : int array array) : int array array =
    let keyed =
      Array.map (fun s -> (Array.to_list (Array.copy s) |> List.sort compare, s)) sets
    in
    let seen = Hashtbl.create 64 in
    let uniq =
      Array.to_list keyed
      |> List.filter (fun (k, _) ->
             if Hashtbl.mem seen k then false
             else begin
               Hashtbl.replace seen k ();
               true
             end)
    in
    let subset a b =
      (* a ⊆ b over sorted lists *)
      let rec go a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> false
        | x :: a', y :: b' ->
            if x = y then go a' b' else if x > y then go a b' else false
      in
      go a b
    in
    let minimal =
      if List.length uniq > max_minimality_sets then uniq
      else
        List.filter
          (fun (k, _) ->
            not
              (List.exists
                 (fun (k', _) -> k' != k && List.length k' <= List.length k
                                 && k' <> k && subset k' k)
                 uniq))
          uniq
    in
    Array.of_list (List.map snd minimal)

  (** [solve_weighted ~cost sets] returns the cover minimising the sum of
      chosen costs when the exact search completes within [node_budget]
      branch-and-bound nodes (and the reduced family fits in a bitmask),
      and the weighted-greedy cover otherwise; [solution.optimality] says
      which.  [node_budget = 0] forces the greedy path (the baseline the
      property tests compare against).  Same [Empty_set] contract as
      {!solve}. *)
  let solve_weighted ?(node_budget = default_node_budget)
      ~(cost : Elt.t -> float) (sets : Elt.t list list) :
      (solution, error) result =
    let rec first_empty i = function
      | [] -> None
      | [] :: _ -> Some i
      | _ :: tl -> first_empty (i + 1) tl
    in
    match first_empty 0 sets with
    | Some i -> Error (Empty_set i)
    | None when sets = [] ->
        Ok { chosen = []; total_cost = 0.; optimality = Exact; nodes_explored = 0 }
    | None ->
        let isets, elems = intern_sets sets in
        let costs = Array.map cost elems in
        let greedy = prune_cover ~cost sets (solve_nonempty ~cost sets) in
        let greedy_cost =
          List.fold_left (fun a e -> a +. cost e) 0. greedy
        in
        let nodes = ref 0 in
        let finish optimality chosen total_cost =
          Ok
            {
              chosen = List.sort_uniq Elt.compare chosen;
              total_cost;
              optimality;
              nodes_explored = !nodes;
            }
        in
        let reduced = reduce_family isets in
        let reduced_elems =
          Array.fold_left (fun a s -> a + Array.length s) 0 reduced
        in
        if
          node_budget <= 0
          || Array.length reduced > max_exact_sets
          || reduced_elems > max_exact_elems
        then finish Greedy_fallback greedy greedy_cost
        else begin
          (* seed the search with the greedy cover as the incumbent *)
          let greedy_ids =
            let id_of = Hashtbl.create 64 in
            Array.iteri (fun i e -> Hashtbl.replace id_of e i) elems;
            List.map
              (fun e ->
                match Hashtbl.find_opt id_of e with
                | Some i -> i
                | None -> assert false (* greedy only picks set members *))
              greedy
          in
          match
            branch_and_bound ~budget:node_budget ~nodes reduced costs
              greedy_ids greedy_cost
          with
          | ids, total ->
              finish Exact (List.map (fun i -> elems.(i)) ids) total
          | exception Budget_exhausted ->
              finish Greedy_fallback greedy greedy_cost
        end
end
