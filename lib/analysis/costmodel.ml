(* Static + profile-guided block-frequency cost model for checkpoint
   placement.

   The weight of a block approximates how many times it executes per
   function invocation; with the weighted hitting set minimising the sum of
   chosen weights, the placement minimises the *expected number of
   dynamically executed checkpoints*.

   Static estimate, two factors multiplied together:
   - branch structure: one unit of mass enters at the entry block and is
     propagated acyclically in reverse postorder.  At a branch the mass is
     split equally among the successors that stay at the block's loop
     depth, while a loop-EXITING successor (shallower depth) receives the
     block's full mass — the Ball-Larus loop-branch heuristic: the
     continuation after a loop is as frequent as the loop's entry, and an
     exit test must not halve the frequency of the path that stays inside
     (see the comment at the split below).  Mass is only delivered along
     forward edges (RPO index increasing); retreating edges drop theirs —
     loop iteration is accounted for by the second factor, not by solving
     the cyclic flow.  A chain of conditionals thus halves the frequency at
     every split, making straight-line dominators cheaper than branchy
     interiors.
   - loop nesting: the acyclic mass is multiplied by trip_guess^depth
     (trip_guess = 10, the same guess the unweighted inserter used), so a
     block two loops deep is 100x as expensive as its preheader.

   Profile-guided mode replaces the estimate with measured per-block entry
   counts from a pilot emulator run (keyed by mangled machine labels,
   [mangle fname bname]); blocks the profile does not mention fall back to
   the static estimate, and a profile too stale to cover the current label
   set is rejected by [validate_profile] upstream. *)

module Ir = Wario_ir.Ir

type profile = (string * int) list

let trip_guess = 10.

(* Weights must stay strictly positive: the greedy solver's score divides
   by cost, and a zero-cost block would make every cover "free". *)
let min_weight = 1e-6

(* Must agree with Isel.mangle (lib/backend): machine block labels are
   [fname ^ "$" ^ bname], with the function's prolog stub labelled bare
   [fname].  The back end cannot depend on this module's callers, so the
   convention is duplicated here and pinned by a unit test. *)
let mangle fname bname = fname ^ "$" ^ bname

let static_weights (cfg : Cfg.t) (loops : Loops.t) : Ir.label -> float =
  let n = Array.length cfg.Cfg.order in
  let mass : (Ir.label, float) Hashtbl.t = Hashtbl.create (max 16 n) in
  Array.iter (fun l -> Hashtbl.replace mass l 0.) cfg.Cfg.order;
  if n > 0 then Hashtbl.replace mass cfg.Cfg.order.(0) 1.0;
  Array.iteri
    (fun i lbl ->
      let m = try Hashtbl.find mass lbl with Not_found -> 0. in
      let succs = Cfg.succs cfg lbl in
      if succs <> [] && m > 0. then begin
        (* Ball-Larus loop-branch heuristic, folded into the per-entry
           mass convention.  A loop-exit test's exiting edge (successor at
           a shallower depth) carries the block's FULL mass — the loop
           completes once per entry, so the continuation is as frequent as
           the loop's entry — and must not halve the mass of the path that
           stays inside the loop.  Only the staying successors split the
           mass among themselves.  Without this, an unrolled loop (a chain
           of k copies, each with its own exit test) decays to 2^-k of its
           true frequency and the weighted solver floods the "cold" late
           copies with checkpoints. *)
        let d = loops.Loops.depth_of lbl in
        let k_stay =
          List.length
            (List.filter (fun s -> loops.Loops.depth_of s >= d) succs)
        in
        let share = m /. float_of_int (max 1 k_stay) in
        List.iter
          (fun s ->
            match Hashtbl.find_opt cfg.Cfg.index s with
            | Some j when j > i ->
                let delivered =
                  if loops.Loops.depth_of s < d then m else share
                in
                Hashtbl.replace mass s
                  ((try Hashtbl.find mass s with Not_found -> 0.)
                  +. delivered)
            | _ -> () (* retreating edge: depth factor accounts for it *))
          succs
      end)
    cfg.Cfg.order;
  let weights : (Ir.label, float) Hashtbl.t = Hashtbl.create (max 16 n) in
  Array.iter
    (fun lbl ->
      let m = try Hashtbl.find mass lbl with Not_found -> 0. in
      let d = loops.Loops.depth_of lbl in
      let w = max m min_weight *. (trip_guess ** float_of_int d) in
      Hashtbl.replace weights lbl w)
    cfg.Cfg.order;
  fun lbl -> try Hashtbl.find weights lbl with Not_found -> min_weight

(* A usable profile must mention (nearly) every label the program about to
   be compiled will emit; a shortfall means the profile was taken from a
   different program or options and its counts would misguide placement. *)
let coverage_threshold = 0.9

let validate_profile (p : profile) ~(expected_labels : string list) :
    (int, string) result =
  if p = [] then Error "profile is empty"
  else begin
    let keys = Hashtbl.create (List.length p) in
    List.iter (fun (l, _) -> Hashtbl.replace keys l ()) p;
    let expected = List.length expected_labels in
    let matched =
      List.fold_left
        (fun acc l -> if Hashtbl.mem keys l then acc + 1 else acc)
        0 expected_labels
    in
    if expected = 0 then Ok 0
    else if float_of_int matched >= coverage_threshold *. float_of_int expected
    then Ok matched
    else
      Error
        (Printf.sprintf
           "stale profile: covers %d of %d current block labels (< %.0f%%)"
           matched expected
           (coverage_threshold *. 100.))
  end

let profile_weights (p : profile) ~(fname : string)
    ~(fallback : Ir.label -> float) : Ir.label -> float =
  let counts = Hashtbl.create (List.length p) in
  List.iter (fun (l, c) -> Hashtbl.replace counts l c) p;
  fun lbl ->
    match Hashtbl.find_opt counts (mangle fname lbl) with
    | Some c -> max (float_of_int c) min_weight
    | None -> fallback lbl
