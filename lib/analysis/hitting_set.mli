(** Greedy minimal hitting set (de Kruijf et al. §4.2.1) — the algorithm
    both Ratchet and WARio use to pick checkpoint locations.  Incremental
    counters make it linear-ish in the sum of set sizes. *)

type error = Empty_set of int
(** [Empty_set i]: input set [i] is empty, so no hitting set exists. *)

module Make (Elt : sig
  type t

  val compare : t -> t -> int
end) : sig
  val solve :
    cost:(Elt.t -> float) -> Elt.t list list -> (Elt.t list, error) result
  (** [solve ~cost sets] returns [Ok chosen] such that every set contains at
      least one chosen element, greedily maximising (sets hit)/cost per
      pick, or [Error (Empty_set i)] when set [i] is empty (an unhittable
      WAR — no cover exists).  On [Error], callers must not drop the
      offending set silently: either guarantee non-emptiness by construction
      (candidate sets built by the checkpoint inserters always contain the
      point before the WAR's store), or fall back to a placement that needs
      no cover, such as a checkpoint directly before each WAR store. *)
end
