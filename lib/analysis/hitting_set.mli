(** Minimal hitting set (de Kruijf et al. §4.2.1) — the algorithm both
    Ratchet and WARio use to pick checkpoint locations.

    Two solvers: the classic incremental-count greedy ({!Make.solve}, the
    baseline placement) and a weighted solver ({!Make.solve_weighted}) that
    minimises the {e sum of chosen costs} — with costs set to estimated
    block execution frequencies, that sum is the expected number of
    dynamically executed checkpoints — exactly by branch and bound when the
    instance is small enough, falling back to weighted greedy otherwise. *)

type error = Empty_set of int
(** [Empty_set i]: input set [i] is empty, so no hitting set exists. *)

type optimality =
  | Exact  (** branch and bound completed: no cheaper cover exists *)
  | Greedy_fallback  (** instance too large or node budget exhausted *)

val default_node_budget : int
(** Branch-and-bound node budget used when [?node_budget] is omitted. *)

module Make (Elt : sig
  type t

  val compare : t -> t -> int
end) : sig
  type solution = {
    chosen : Elt.t list;  (** sorted by [Elt.compare], duplicate-free *)
    total_cost : float;  (** sum of [cost] over [chosen] *)
    optimality : optimality;
    nodes_explored : int;
        (** branch-and-bound nodes visited, 0 when exact search was never
            attempted; reported even on budget-exhausted fallbacks so span
            attribution can rank solver effort *)
  }

  val solve :
    cost:(Elt.t -> float) -> Elt.t list list -> (Elt.t list, error) result
  (** [solve ~cost sets] returns [Ok chosen] such that every set contains at
      least one chosen element, greedily maximising (sets hit)/cost per
      pick, or [Error (Empty_set i)] when set [i] is empty (an unhittable
      WAR — no cover exists).  On [Error], callers must not drop the
      offending set silently: either guarantee non-emptiness by construction
      (candidate sets built by the checkpoint inserters always contain the
      point before the WAR's store), or fall back to a placement that needs
      no cover, such as a checkpoint directly before each WAR store. *)

  val solve_weighted :
    ?node_budget:int ->
    cost:(Elt.t -> float) ->
    Elt.t list list ->
    (solution, error) result
  (** [solve_weighted ~cost sets] returns the cover minimising
      [total_cost]: exact (branch and bound with memoized lower bounds,
      seeded with the greedy cover as incumbent) when the reduced family
      has at most 62 sets and the search finishes within [node_budget]
      nodes, the weighted-greedy cover otherwise — [solution.optimality]
      records which.  [node_budget = 0] forces the greedy path.  Costs must
      be non-negative.  Same [Empty_set] contract as {!solve}. *)
end
