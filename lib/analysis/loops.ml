(* Natural-loop detection.

   A back edge is an edge [u -> h] where [h] dominates [u]; the natural loop
   of the edge is [h] plus every block that reaches [u] without passing
   through [h].  Loops sharing a header are merged (as LLVM does).  The
   result carries the information the Loop Write Clusterer needs: header,
   latches, member blocks, exit edges and nesting depth. *)

open Wario_ir.Ir
module Str_set = Wario_support.Util.Str_set

type loop = {
  header : label;
  latches : label list;  (** sources of back edges into the header *)
  blocks : Str_set.t;
  exits : (label * label) list;  (** (inside block, outside target) edges *)
  depth : int;  (** 1 = outermost *)
  parent : label option;  (** header of the enclosing loop *)
}

type t = {
  loops : loop list;  (** innermost-first *)
  depth_of : label -> int;  (** loop-nesting depth of a block; 0 = no loop *)
}

let natural_loop cfg reachable header latch : Str_set.t =
  let set = ref (Str_set.add header (Str_set.singleton latch)) in
  let rec go l =
    List.iter
      (fun p ->
        (* dead blocks can be predecessors of live ones; they belong to
           no loop (and dominance is undefined on them) *)
        if Str_set.mem p reachable && not (Str_set.mem p !set) then begin
          set := Str_set.add p !set;
          go p
        end)
      (Cfg.preds cfg l)
  in
  if latch <> header then go latch;
  !set

let find_exits cfg blocks =
  Str_set.fold
    (fun b acc ->
      List.fold_left
        (fun acc s -> if Str_set.mem s blocks then acc else (b, s) :: acc)
        acc (Cfg.succs cfg b))
    blocks []

let build (cfg : Cfg.t) (dom : Dominance.t) : t =
  (* Blocks reachable from the entry: dominance (and so back-edge-ness)
     is only defined on these, and unreachable blocks are in no loop. *)
  let reachable =
    let seen = ref Str_set.empty in
    let rec go l =
      if not (Str_set.mem l !seen) then begin
        seen := Str_set.add l !seen;
        List.iter go (Cfg.succs cfg l)
      end
    in
    go (Cfg.entry cfg);
    !seen
  in
  (* Collect back edges grouped by header. *)
  let back_edges = Hashtbl.create 16 in
  Str_set.iter
    (fun u ->
      List.iter
        (fun h ->
          if Str_set.mem h reachable && Dominance.dominates dom h u then begin
            let cur = try Hashtbl.find back_edges h with Not_found -> [] in
            Hashtbl.replace back_edges h (u :: cur)
          end)
        (Cfg.succs cfg u))
    reachable;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) back_edges [] in
  let raw_loops =
    List.map
      (fun h ->
        let latches = Hashtbl.find back_edges h in
        let blocks =
          List.fold_left
            (fun acc latch ->
              Str_set.union acc (natural_loop cfg reachable h latch))
            Str_set.empty latches
        in
        (h, latches, blocks))
      headers
  in
  (* Nesting: loop A contains loop B if A's blocks include B's header and
     A <> B.  Depth = number of containing loops + 1. *)
  let contains (ha, _, ba) (hb, _, _) = ha <> hb && Str_set.mem hb ba in
  let loops =
    List.map
      (fun ((h, latches, blocks) as l) ->
        let enclosing = List.filter (fun l' -> contains l' l) raw_loops in
        (* The innermost enclosing loop is the smallest one by block count. *)
        let parent =
          match
            List.sort
              (fun (_, _, b1) (_, _, b2) ->
                compare (Str_set.cardinal b1) (Str_set.cardinal b2))
              enclosing
          with
          | (h', _, _) :: _ -> Some h'
          | [] -> None
        in
        {
          header = h;
          latches;
          blocks;
          exits = find_exits cfg blocks;
          depth = List.length enclosing + 1;
          parent;
        })
      raw_loops
  in
  let loops =
    List.sort (fun a b -> compare b.depth a.depth) loops (* innermost first *)
  in
  let depth_of lbl =
    List.fold_left
      (fun acc l -> if Str_set.mem lbl l.blocks then max acc l.depth else acc)
      0 loops
  in
  { loops; depth_of }

(** The innermost loop containing [lbl], if any. *)
let innermost_containing t lbl =
  List.find_opt (fun l -> Str_set.mem lbl l.blocks) t.loops
