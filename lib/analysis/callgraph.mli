(** Interprocedural call-graph cost model.

    Extends {!Costmodel}'s per-invocation Ball-Larus block frequencies to
    whole-program {e expected execution counts}: the call graph is built
    over WIR [Call] instructions, each edge weighted by the static
    frequency of its calling block, recursion is condensed into SCCs (a
    recursive component multiplies its inflow by a trip-count guess rather
    than diverging), and invocation frequencies are propagated top-down
    from the root.  [block_weight] then prices a block at
    [func_freq * local_weight] — a block in a helper called from a hot
    loop costs what it really costs, so the per-function weighted hitting
    set and the expansion/motion passes all optimise the same global
    objective. *)

type edge = {
  cg_caller : string;
  cg_callee : string;
  cg_site : Wario_ir.Ir.label;  (** calling block in the caller *)
  cg_freq : float;
      (** static per-invocation frequency of the calling block — expected
          executions of this call per invocation of the caller *)
}

type t = {
  cg_funcs : string list;  (** every defined function *)
  cg_edges : edge list;  (** one edge per [Call] instruction *)
  recursive : string -> bool;
      (** member of a non-trivial SCC, or directly self-recursive *)
  func_freq : string -> float;
      (** expected invocations per program run (root = 1); functions
          unreachable from the root report 1.0 so their weights stay
          per-invocation rather than vanishing *)
  local_weight : string -> Wario_ir.Ir.label -> float;
      (** {!Costmodel.static_weights} of the function, per invocation *)
  block_weight : string -> Wario_ir.Ir.label -> float;
      (** [func_freq f *. local_weight f lbl], floored at
          {!Costmodel.min_weight} — the interprocedural price of one
          dynamic checkpoint placed in that block *)
}

val build :
  ?root:string -> ?recursion_factor:float -> Wario_ir.Ir.program -> t
(** Build the model.  [root] defaults to ["main"] (falling back to every
    zero-in-degree function when absent); [recursion_factor] defaults to
    {!Costmodel.trip_guess} and scales the inflow of every recursive SCC
    (each level of recursion is guessed to recurse that many times). *)

val callers_of : t -> string -> edge list
(** Edges targeting the given callee. *)
