(** Block-frequency cost model for checkpoint placement.

    Weights approximate per-invocation execution counts; minimising the sum
    of chosen weights in the hitting set minimises the expected number of
    dynamically executed checkpoints.  Static weights combine acyclic
    branch-mass propagation (entry mass 1, split equally at branches,
    delivered along forward RPO edges only) with a [trip_guess]^depth loop
    factor; profile-guided weights substitute measured per-block entry
    counts from a pilot run. *)

type profile = (string * int) list
(** Measured entry counts keyed by {e mangled} machine block label
    ([mangle fname bname]; the prolog stub is bare [fname]). *)

val trip_guess : float
(** Assumed iterations per loop level in the static model (10). *)

val min_weight : float
(** Strictly positive floor applied to every weight. *)

val mangle : string -> string -> string
(** [mangle fname bname] — must agree with the back end's label mangling
    (pinned by a unit test). *)

val static_weights : Cfg.t -> Loops.t -> Wario_ir.Ir.label -> float
(** Static estimated execution frequency of each block of the function the
    [Cfg.t] was built from.  Unknown labels map to {!min_weight}. *)

val validate_profile :
  profile -> expected_labels:string list -> (int, string) result
(** [Ok matched] when the profile mentions at least 90% of
    [expected_labels] (the mangled labels the current compilation will
    emit); [Error reason] for empty or stale profiles.  Callers should warn
    and fall back to the static model on [Error], never crash. *)

val profile_weights :
  profile ->
  fname:string ->
  fallback:(Wario_ir.Ir.label -> float) ->
  Wario_ir.Ir.label ->
  float
(** Weight function for one function's blocks: the measured entry count of
    [mangle fname lbl] when present (floored at {!min_weight}), [fallback
    lbl] otherwise. *)
