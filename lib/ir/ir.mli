(** WIR: the WARio intermediate representation.

    A register-machine IR in the spirit of LLVM IR, specialised for
    intermittent computing: unbounded 32-bit virtual registers are the
    {e volatile} state saved by checkpoints; {!Load}/{!Store} access the
    byte-addressed {e non-volatile} main memory (globals and stack slots),
    which is where Write-After-Read hazards live.  WIR is not SSA — a
    register may be assigned several times; cloning transformations rename
    registers to fresh ones where freshness matters. *)

(** Memory access widths.  Registers are always 32 bits; loads zero-extend
    ([W8]/[W16]) or sign-extend ([S8]/[S16]). *)
type width = W8 | W16 | W32 | S8 | S16

val bytes_of_width : width -> int

type reg = int
(** Virtual register id. *)

type label = string
(** Basic-block label, unique within a function. *)

type value =
  | Reg of reg
  | Imm of int32
  | Glob of string  (** address of a global symbol *)
  | Slot of int  (** address of a stack slot of the enclosing function *)

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Ceq | Cne | Cslt | Csle | Csgt | Csge | Cult | Cule | Cugt | Cuge

(** Why a checkpoint exists — the four causes of paper Figure 5. *)
type ckpt_cause = Middle_end_war | Back_end_war | Function_entry | Function_exit

type instr =
  | Bin of reg * binop * value * value
  | Cmp of reg * cmpop * value * value  (** dst = 1 if the comparison holds *)
  | Mov of reg * value
  | Select of reg * value * value * value  (** dst = if cond <> 0 then a else b *)
  | Load of reg * width * value  (** dst = mem\[addr\] *)
  | Store of width * value * value  (** [Store (w, data, addr)]: mem\[addr\] <- data *)
  | Call of reg option * string * value list
  | Checkpoint of ckpt_cause  (** checkpoint intrinsic (lowered by the back end) *)
  | Print of value  (** observable output; the oracle for differential testing *)

type term =
  | Br of label
  | Cbr of value * label * label  (** if cond <> 0 then l1 else l2 *)
  | Ret of value option

type block = { bname : label; mutable insns : instr list; mutable term : term }

(** A stack slot: function-local non-volatile storage (C locals and arrays). *)
type slot = { slot_id : int; slot_size : int; slot_align : int }

type func = {
  fname : string;
  mutable params : reg list;  (** parameter registers, in order *)
  mutable slots : slot list;
  mutable blocks : block list;  (** the first block is the entry *)
  mutable next_reg : reg;
  mutable next_label : int;
}

type global = {
  gname : string;
  gsize : int;
  galign : int;
  ginit : (int * width * int32) list;  (** (byte offset, width, value) *)
  gconst : bool;
}

type program = { globals : global list; funcs : func list }

(** {1 Accessors and fresh-name generation} *)

val find_func : program -> string -> func
val find_func_opt : program -> string -> func option

(** [copy_program p] is a deep, independently-mutable copy (transform
    trials mutate the copy and throw it away).  Instructions and
    terminators are immutable values and stay shared. *)
val copy_program : program -> program
val find_block : func -> label -> block
val entry_block : func -> block
val fresh_reg : func -> reg
val fresh_label : func -> string -> label
val fresh_slot : func -> int -> int -> slot

(** {1 Structure queries} *)

val successors : block -> label list
val value_uses : value -> reg list
val instr_uses : instr -> reg list
val instr_def : instr -> reg option
val term_uses : term -> reg list

val has_side_effect : instr -> bool
(** Can the instruction be removed when its result is dead? *)

val is_barrier : instr -> bool
(** Region barriers for WAR analysis: checkpoints and calls (every function
    is bracketed by entry/exit checkpoints in the back end). *)

val is_store : instr -> bool
val is_load : instr -> bool

(** {1 Renaming (used by unrolling and inlining)} *)

val rename_value : (reg -> reg option) -> value -> value
val rename_instr : (reg -> reg option) -> instr -> instr
val rename_term : (reg -> reg option) -> term -> term

val retarget_term : (label -> label) -> term -> term
(** Rewrite the branch targets of a terminator. *)

(** {1 Program points} *)

type point = label * int
(** A point inside a function: [(block, i)] denotes the position {e before}
    the i-th instruction; [List.length insns] is before the terminator. *)

val compare_point : point -> point -> int

module Point_set : Set.S with type elt = point

val insert_at : func -> point -> instr list -> unit
(** [insert_at f p is] splices [is] at point [p]. *)
