(* WIR: the WARio intermediate representation.

   WIR is a register-machine IR in the spirit of LLVM IR, specialised for the
   intermittent-computing setting:

   - unbounded virtual registers holding 32-bit values (registers are the
     *volatile* state: they are saved by checkpoints and restored on reboot);
   - explicit [Load]/[Store] instructions against byte-addressed non-volatile
     main memory (globals and stack slots), the only place WAR hazards live;
   - a [Checkpoint] intrinsic carrying the cause used for paper Figure 5;
   - non-SSA: a register may be assigned several times.  Transformations that
     clone code (unrolling, inlining) rename registers to fresh ones, which
     restores SSA-like freshness where it matters. *)

(** Memory access widths.  Registers are always 32 bits wide; loads
    zero-extend ([U8]/[U16]) or sign-extend ([S8]/[S16]). *)
type width = W8 | W16 | W32 | S8 | S16

let bytes_of_width = function W8 | S8 -> 1 | W16 | S16 -> 2 | W32 -> 4

(** Virtual register id. *)
type reg = int

(** Basic-block label. *)
type label = string

type value =
  | Reg of reg
  | Imm of int32
  | Glob of string  (** address of a global symbol *)
  | Slot of int  (** address of a stack slot of the enclosing function *)

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Ceq | Cne | Cslt | Csle | Csgt | Csge | Cult | Cule | Cugt | Cuge

(** Why a checkpoint exists — the four causes of paper Figure 5. *)
type ckpt_cause = Middle_end_war | Back_end_war | Function_entry | Function_exit

type instr =
  | Bin of reg * binop * value * value
  | Cmp of reg * cmpop * value * value  (** dst = 1 if cmp holds else 0 *)
  | Mov of reg * value
  | Select of reg * value * value * value  (** dst = if cond <> 0 then a else b *)
  | Load of reg * width * value  (** dst = mem[addr] *)
  | Store of width * value * value  (** mem[addr] <- data; [Store (w, data, addr)] *)
  | Call of reg option * string * value list
  | Checkpoint of ckpt_cause
  | Print of value  (** observable output (emulator syscall); used as the oracle *)

type term =
  | Br of label
  | Cbr of value * label * label  (** if cond <> 0 then l1 else l2 *)
  | Ret of value option

type block = { bname : label; mutable insns : instr list; mutable term : term }

(** A stack slot: function-local non-volatile storage (C locals & arrays). *)
type slot = { slot_id : int; slot_size : int; slot_align : int }

type func = {
  fname : string;
  mutable params : reg list;  (** parameter registers, in order *)
  mutable slots : slot list;
  mutable blocks : block list;  (** first block is the entry *)
  mutable next_reg : reg;  (** fresh-register counter *)
  mutable next_label : int;  (** fresh-label counter *)
}

type global = {
  gname : string;
  gsize : int;
  galign : int;
  ginit : (int * width * int32) list;  (** (byte offset, width, value) initialisers *)
  gconst : bool;
}

type program = { globals : global list; funcs : func list }

(* ------------------------------------------------------------------ *)
(* Accessors and fresh-name generation                                 *)
(* ------------------------------------------------------------------ *)

let find_func p name =
  match List.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.find_func: no function %s" name)

let find_func_opt p name = List.find_opt (fun f -> f.fname = name) p.funcs

(* Instructions, terminators, slots and globals are immutable values, so a
   deep copy only needs fresh records for every mutable layer: the blocks,
   the functions, and the program itself. *)
let copy_block b = { b with insns = b.insns }
let copy_func f = { f with blocks = List.map copy_block f.blocks }
let copy_program p = { p with funcs = List.map copy_func p.funcs }

let find_block f lbl =
  match List.find_opt (fun b -> b.bname = lbl) f.blocks with
  | Some b -> b
  | None ->
      invalid_arg (Printf.sprintf "Ir.find_block: no block %s in %s" lbl f.fname)

let entry_block f =
  match f.blocks with
  | [] -> invalid_arg (Printf.sprintf "Ir.entry_block: %s has no blocks" f.fname)
  | b :: _ -> b

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let fresh_label f hint =
  let n = f.next_label in
  f.next_label <- n + 1;
  Printf.sprintf "%s.%d" hint n

let fresh_slot f size align =
  let id =
    1 + List.fold_left (fun acc s -> max acc s.slot_id) (-1) f.slots
  in
  let s = { slot_id = id; slot_size = size; slot_align = align } in
  f.slots <- f.slots @ [ s ];
  s

(* ------------------------------------------------------------------ *)
(* Successors, uses and defs                                           *)
(* ------------------------------------------------------------------ *)

let successors b =
  match b.term with
  | Br l -> [ l ]
  | Cbr (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ -> []

(** Registers read by a value. *)
let value_uses = function Reg r -> [ r ] | Imm _ | Glob _ | Slot _ -> []

(** Registers read by an instruction. *)
let instr_uses = function
  | Bin (_, _, a, b) | Cmp (_, _, a, b) -> value_uses a @ value_uses b
  | Mov (_, v) | Print v -> value_uses v
  | Select (_, c, a, b) -> value_uses c @ value_uses a @ value_uses b
  | Load (_, _, addr) -> value_uses addr
  | Store (_, data, addr) -> value_uses data @ value_uses addr
  | Call (_, _, args) -> List.concat_map value_uses args
  | Checkpoint _ -> []

(** Register written by an instruction, if any. *)
let instr_def = function
  | Bin (d, _, _, _) | Cmp (d, _, _, _) | Mov (d, _) | Select (d, _, _, _)
  | Load (d, _, _) ->
      Some d
  | Call (d, _, _) -> d
  | Store _ | Checkpoint _ | Print _ -> None

let term_uses = function
  | Br _ -> []
  | Cbr (c, _, _) -> value_uses c
  | Ret (Some v) -> value_uses v
  | Ret None -> []

(** Does the instruction have a side effect besides defining a register?
    Pure instructions can be removed when their result is dead. *)
let has_side_effect = function
  | Store _ | Call _ | Checkpoint _ | Print _ -> true
  | Bin _ | Cmp _ | Mov _ | Select _ | Load _ -> false

(** Instructions that act as region barriers for WAR analysis: an executed
    checkpoint ends the idempotent region; a call executes the callee's
    function-entry checkpoint. *)
let is_barrier = function Checkpoint _ | Call _ -> true | _ -> false

let is_store = function Store _ -> true | _ -> false
let is_load = function Load _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Register renaming (used by unrolling and inlining)                  *)
(* ------------------------------------------------------------------ *)

let rename_value subst v =
  match v with
  | Reg r -> ( match subst r with Some r' -> Reg r' | None -> v)
  | Imm _ | Glob _ | Slot _ -> v

let rename_instr subst i =
  let rv = rename_value subst in
  let rd d = match subst d with Some d' -> d' | None -> d in
  match i with
  | Bin (d, op, a, b) -> Bin (rd d, op, rv a, rv b)
  | Cmp (d, op, a, b) -> Cmp (rd d, op, rv a, rv b)
  | Mov (d, v) -> Mov (rd d, rv v)
  | Select (d, c, a, b) -> Select (rd d, rv c, rv a, rv b)
  | Load (d, w, addr) -> Load (rd d, w, rv addr)
  | Store (w, data, addr) -> Store (w, rv data, rv addr)
  | Call (d, f, args) -> Call (Option.map rd d, f, List.map rv args)
  | Checkpoint c -> Checkpoint c
  | Print v -> Print (rv v)

let rename_term subst t =
  match t with
  | Br l -> Br l
  | Cbr (c, l1, l2) -> Cbr (rename_value subst c, l1, l2)
  | Ret v -> Ret (Option.map (rename_value subst) v)

(** Retarget the labels of a terminator through [f]. *)
let retarget_term f t =
  match t with
  | Br l -> Br (f l)
  | Cbr (c, l1, l2) -> Cbr (c, f l1, f l2)
  | Ret v -> Ret v

(* ------------------------------------------------------------------ *)
(* Program points                                                      *)
(* ------------------------------------------------------------------ *)

(** A program point inside a function: [(block label, instruction index)].
    Index [i] denotes the point *before* the i-th instruction of the block;
    index [List.length insns] is the point just before the terminator. *)
type point = label * int

let compare_point (l1, i1) (l2, i2) =
  match String.compare l1 l2 with 0 -> Int.compare i1 i2 | c -> c

module Point_set = Set.Make (struct
  type t = point

  let compare = compare_point
end)

(** Insert [new_is] at point [(lbl, idx)] of [f]. *)
let insert_at f (lbl, idx) new_is =
  let b = find_block f lbl in
  let before = Wario_support.Util.take idx b.insns in
  let after = Wario_support.Util.drop idx b.insns in
  b.insns <- before @ new_is @ after
