(* Running compiled images on the emulator under the paper's power cases
   (§5.1.4) plus convenience wrappers used by examples, tests and benches. *)

module E = Wario_emulator

type outcome = {
  result : E.Emulator.result;
  compiled : Pipeline.compiled;
}

(** Continuous power (paper: execution-time overhead measurements). *)
let continuous ?(irq_period = 0) ?(verify = true) (c : Pipeline.compiled) :
    outcome =
  { result = E.Emulator.run ~irq_period ~verify c.Pipeline.image; compiled = c }

(** Intermittent power with a fixed on-period in cycles. *)
let periodic ?(irq_period = 0) ?(verify = true) ~(on_cycles : int)
    (c : Pipeline.compiled) : outcome =
  {
    result =
      E.Emulator.run ~irq_period ~verify
        ~supply:(E.Power.Periodic on_cycles) c.Pipeline.image;
    compiled = c;
  }

(** Intermittent power replaying a harvester trace of on-durations. *)
let with_trace ?(irq_period = 0) ?(verify = true) ~(trace : int array)
    (c : Pipeline.compiled) : outcome =
  {
    result =
      E.Emulator.run ~irq_period ~verify ~supply:(E.Power.Trace trace)
        c.Pipeline.image;
    compiled = c;
  }

(** Adversarial fault injection: cut power after each scheduled on-duration,
    then run to completion on continuous power (see [lib/verify]). *)
let with_schedule ?(irq_period = 0) ?(verify = true) ~(cuts : int array)
    (c : Pipeline.compiled) : outcome =
  {
    result =
      E.Emulator.run ~irq_period ~verify ~supply:(E.Power.Schedule cuts)
        c.Pipeline.image;
    compiled = c;
  }

(** Compile and run a source under an environment on continuous power. *)
let compile_and_run ?(opts = Pipeline.default_options)
    (env : Pipeline.environment) (source : string) : outcome =
  continuous (Pipeline.compile ~opts env source)

(** Assert the absence of WAR violations; raises [Failure] otherwise,
    reporting every violation: the total count, a per-function breakdown,
    and each offending access. *)
let check_no_violations (o : outcome) : unit =
  match o.result.E.Emulator.violations with
  | [] -> ()
  | all ->
      let by_func = Hashtbl.create 8 in
      List.iter
        (fun (v : E.Emulator.violation) ->
          Hashtbl.replace by_func v.E.Emulator.v_func
            (1
            + try Hashtbl.find by_func v.E.Emulator.v_func
              with Not_found -> 0))
        all;
      let breakdown =
        Hashtbl.fold (fun f n acc -> (f, n) :: acc) by_func []
        |> List.sort compare
        |> List.map (fun (f, n) -> Printf.sprintf "%s: %d" f n)
        |> String.concat ", "
      in
      let details =
        all
        |> List.map (fun (v : E.Emulator.violation) ->
               Printf.sprintf "%s at 0x%x in %s (pc=%d)" v.E.Emulator.v_instr
                 v.E.Emulator.v_addr v.E.Emulator.v_func v.E.Emulator.v_pc)
        |> String.concat "; "
      in
      (* For each violating function, point at the barrier-free IR paths of
         the WARs the middle end left open (Reach.reaches_witness), so the
         failure names a concrete load→store path instead of a bare count. *)
      let module A = Wario_analysis in
      let paths =
        let prog = o.compiled.Pipeline.ir in
        let escapes = A.Alias.escapes_of_program prog in
        Hashtbl.fold (fun f _ acc -> f :: acc) by_func []
        |> List.sort compare
        |> List.concat_map (fun fname ->
               match
                 List.find_opt
                   (fun (f : Wario_ir.Ir.func) -> f.Wario_ir.Ir.fname = fname)
                   prog.Wario_ir.Ir.funcs
               with
               | None -> []
               | Some f ->
                   let cfg = A.Cfg.build f in
                   let alias = A.Alias.build ~escapes f in
                   let pdg = A.Pdg.build alias cfg f in
                   A.Pdg.wars pdg
                   |> List.filter_map (fun (w : A.Pdg.war) ->
                          A.Reach.reaches_witness pdg.A.Pdg.reach
                            w.A.Pdg.war_load.A.Pdg.mo_point
                            w.A.Pdg.war_store.A.Pdg.mo_point
                          |> Option.map (fun path ->
                                 Printf.sprintf "%s: %s" fname
                                   (String.concat " -> "
                                      (List.map
                                         (fun (b, i) ->
                                           Printf.sprintf "%s.%d" b i)
                                         path)))))
      in
      let path_note =
        match paths with
        | [] -> ""
        | ps -> " — open IR WAR paths: " ^ String.concat "; " ps
      in
      failwith
        (Printf.sprintf "%d WAR violation(s) [%s] — per function: %s — %s%s"
           (List.length all)
           (Pipeline.environment_name o.compiled.Pipeline.env)
           breakdown details path_note)
