(* The WARio compilation pipeline: the paper's contribution, assembled.

   An [environment] names one of the software environments of the
   evaluation (paper §5.1.3); [compile] runs MiniC source through the
   corresponding sequence of transformations (Figure 2) down to a linked
   TM2 image ready for the emulator. *)

module Ir = Wario_ir.Ir
module T = Wario_transforms
module A = Wario_analysis
module B = Wario_backend

type environment =
  | Plain  (** uninstrumented C; continuous power only *)
  | Ratchet  (** basic alias analysis + hitting set; naive back end *)
  | R_pdg  (** Ratchet with precise PDG information *)
  | Epilog_opt  (** R-PDG + Epilog Optimizer (basic spill inserter) *)
  | Write_cluster  (** R-PDG + Write Clusterer + HS spill inserter *)
  | Loop_cluster  (** R-PDG + Loop Write Clusterer + HS spill inserter *)
  | Wario  (** complete WARio *)
  | Wario_expander  (** WARio + Expander *)

let environment_name = function
  | Plain -> "plain-c"
  | Ratchet -> "ratchet"
  | R_pdg -> "r-pdg"
  | Epilog_opt -> "epilog-optimizer"
  | Write_cluster -> "write-clusterer"
  | Loop_cluster -> "loop-write-clusterer"
  | Wario -> "wario"
  | Wario_expander -> "wario-expander"

let all_environments =
  [ Plain; Ratchet; R_pdg; Epilog_opt; Write_cluster; Loop_cluster; Wario;
    Wario_expander ]

let environment_of_name s =
  List.find_opt (fun e -> environment_name e = s) all_environments

type options = {
  unroll_factor : int;  (** the paper's N; default 8 (§5.2.4) *)
  expander_size_limit : int;
  optimize : bool;  (** run the -O3 substitute first (default true) *)
  expander_profile : (string * int) list option;
      (** dynamic call counts: switches the Expander to profile-guided mode *)
  max_region : int option;
      (** bound idempotent regions to ~n estimated cycles (extension, §6) *)
  drop_middle_ckpt : int option;
      (** TEST-ONLY sabotage hook for the fault-injection harness: delete
          the n-th middle-end checkpoint after insertion, deliberately
          re-opening the WAR it covered.  Never set outside tests. *)
}

let default_options =
  {
    unroll_factor = 8;
    expander_size_limit = 400;
    optimize = true;
    expander_profile = None;
    max_region = None;
    drop_middle_ckpt = None;
  }

type middle_stats = {
  wars_found : int;
  middle_ckpts : int;
  lwc : T.Loop_write_clusterer.stats option;
  wc_moves : int;
  expander : T.Expander.stats option;
}

type compiled = {
  env : environment;
  ir : Ir.program;  (** IR after all middle-end transformations *)
  mprog : Wario_machine.Isa.mprog;
  image : Wario_emulator.Image.t;
  middle : middle_stats;
  backend : B.Backend.stats;
  text_bytes : int;
}

let backend_config = function
  | Plain -> B.Backend.plain_backend
  | Ratchet | R_pdg -> B.Backend.ratchet_backend
  | Epilog_opt ->
      (* paper §5.1.3: the HS spill inserter is disabled for this
         environment so it does not pollute the epilog results *)
      {
        B.Backend.spill_strategy = Some B.Stack_ckpt.Naive;
        epilog_style = B.Frame.Optimized;
      }
  | Write_cluster | Loop_cluster ->
      {
        B.Backend.spill_strategy = Some B.Stack_ckpt.Hitting_set;
        epilog_style = B.Frame.Naive;
      }
  | Wario | Wario_expander -> B.Backend.wario_backend

(* Delete the [n]-th (mod count) middle-end checkpoint of the program.
   This deliberately breaks the checkpoint schedule: the WAR the deleted
   checkpoint was covering becomes re-executable, which the lib/verify
   crash-consistency oracle must detect.  Returns false when the program
   has no middle-end checkpoints to drop. *)
let drop_middle_checkpoint (prog : Ir.program) (n : int) : bool =
  let is_middle = function
    | Ir.Checkpoint Ir.Middle_end_war -> true
    | _ -> false
  in
  let total =
    List.fold_left
      (fun acc (f : Ir.func) ->
        List.fold_left
          (fun acc (b : Ir.block) ->
            acc + List.length (List.filter is_middle b.Ir.insns))
          acc f.Ir.blocks)
      0 prog.Ir.funcs
  in
  if total = 0 then false
  else begin
    let target = ((n mod total) + total) mod total in
    let seen = ref 0 in
    List.iter
      (fun (f : Ir.func) ->
        List.iter
          (fun (b : Ir.block) ->
            b.Ir.insns <-
              List.filter
                (fun i ->
                  if is_middle i then begin
                    let k = !seen in
                    incr seen;
                    k <> target
                  end
                  else true)
                b.Ir.insns)
          f.Ir.blocks)
      prog.Ir.funcs;
    true
  end

(** Run the middle end for [env] on [prog] (mutates it). *)
let middle_end ?(opts = default_options) (env : environment)
    (prog : Ir.program) : middle_stats =
  if opts.optimize then T.Opt_pipeline.run prog;
  let lwc =
    match env with
    | Loop_cluster | Wario | Wario_expander ->
        let st =
          T.Loop_write_clusterer.run ~unroll_factor:opts.unroll_factor prog
        in
        (* clean up moves and dead snapshots left behind by the clustering
           (copy propagation and DCE never reorder memory operations) *)
        ignore (T.Copyprop.run prog);
        ignore (T.Dce.run prog);
        Some st
    | _ -> None
  in
  let expander =
    match env with
    | Wario_expander ->
        Some
          (T.Expander.run ~size_limit:opts.expander_size_limit
             ?profile:opts.expander_profile prog)
    | _ -> None
  in
  let wc_moves =
    match env with
    | Write_cluster | Wario | Wario_expander -> T.Write_clusterer.run prog
    | _ -> 0
  in
  let wars_found, middle_ckpts =
    match env with
    | Plain -> (0, 0)
    | Ratchet ->
        let st = T.Checkpoint_inserter.run ~mode:A.Alias.Basic prog in
        (st.wars, st.checkpoints)
    | _ ->
        let st = T.Checkpoint_inserter.run ~mode:A.Alias.Precise prog in
        (st.wars, st.checkpoints)
  in
  (* optional extension: bound region sizes for tiny storage capacitors *)
  (match (env, opts.max_region) with
  | Plain, _ | _, None -> ()
  | _, Some n -> ignore (T.Region_bounder.run ~max_instrs:n prog));
  (* test-only sabotage: break the schedule so the verifier has a target *)
  (match (env, opts.drop_middle_ckpt) with
  | Plain, _ | _, None -> ()
  | _, Some n -> ignore (drop_middle_checkpoint prog n));
  { wars_found; middle_ckpts; lwc; wc_moves; expander }

(** Compile MiniC source text under a software environment. *)
let compile ?(opts = default_options) (env : environment) (source : string) :
    compiled =
  let prog = Wario_minic.Minic.compile source in
  let middle = middle_end ~opts env prog in
  Wario_ir.Ir_verify.verify_program prog;
  let mprog, backend = B.Backend.run ~config:(backend_config env) prog in
  let image = Wario_emulator.Image.link mprog in
  {
    env;
    ir = prog;
    mprog;
    image;
    middle;
    backend;
    text_bytes = image.Wario_emulator.Image.text_bytes;
  }

(** Compile an already-lowered IR program (used by tests). *)
let compile_ir ?(opts = default_options) (env : environment)
    (prog : Ir.program) : compiled =
  let middle = middle_end ~opts env prog in
  Wario_ir.Ir_verify.verify_program prog;
  let mprog, backend = B.Backend.run ~config:(backend_config env) prog in
  let image = Wario_emulator.Image.link mprog in
  {
    env;
    ir = prog;
    mprog;
    image;
    middle;
    backend;
    text_bytes = image.Wario_emulator.Image.text_bytes;
  }

(** Static WAR-freedom certification of the linked image (lib/certify):
    translation validation of the whole pipeline above. *)
let certify (c : compiled) : Wario_certify.Certify.verdict =
  Wario_certify.Certify.certify c.image

let certify_report (c : compiled) (v : Wario_certify.Certify.verdict) : string =
  Wario_certify.Certify.report c.image v
