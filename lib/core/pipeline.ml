(* The WARio compilation pipeline: the paper's contribution, assembled.

   An [environment] names one of the software environments of the
   evaluation (paper §5.1.3); [compile] runs MiniC source through the
   corresponding sequence of transformations (Figure 2) down to a linked
   TM2 image ready for the emulator. *)

module Ir = Wario_ir.Ir
module T = Wario_transforms
module A = Wario_analysis
module B = Wario_backend
module M = Wario_obs.Metrics
module S = Wario_obs.Span

(* One instrumented pipeline stage: a span named [name] nested in the
   caller's open span, plus the historical [name.ms] metrics timer. *)
let stage metrics spans name f =
  S.with_span spans name (fun () -> M.time metrics (name ^ ".ms") f)

type environment =
  | Plain  (** uninstrumented C; continuous power only *)
  | Ratchet  (** basic alias analysis + hitting set; naive back end *)
  | R_pdg  (** Ratchet with precise PDG information *)
  | Epilog_opt  (** R-PDG + Epilog Optimizer (basic spill inserter) *)
  | Write_cluster  (** R-PDG + Write Clusterer + HS spill inserter *)
  | Loop_cluster  (** R-PDG + Loop Write Clusterer + HS spill inserter *)
  | Wario  (** complete WARio *)
  | Wario_expander  (** WARio + Expander *)

let environment_name = function
  | Plain -> "plain-c"
  | Ratchet -> "ratchet"
  | R_pdg -> "r-pdg"
  | Epilog_opt -> "epilog-optimizer"
  | Write_cluster -> "write-clusterer"
  | Loop_cluster -> "loop-write-clusterer"
  | Wario -> "wario"
  | Wario_expander -> "wario-expander"

let all_environments =
  [ Plain; Ratchet; R_pdg; Epilog_opt; Write_cluster; Loop_cluster; Wario;
    Wario_expander ]

let environment_of_name s =
  List.find_opt (fun e -> environment_name e = s) all_environments

type options = {
  unroll_factor : int;  (** the paper's N; default 8 (§5.2.4) *)
  expander_size_limit : int;
  optimize : bool;  (** run the -O3 substitute first (default true) *)
  expander_profile : (string * int) list option;
      (** dynamic call counts: switches the Expander to profile-guided mode *)
  max_region : int option;
      (** bound idempotent regions to ~n estimated cycles (extension, §6) *)
  drop_middle_ckpt : int option;
      (** TEST-ONLY sabotage hook for the fault-injection harness: delete
          the n-th middle-end checkpoint after insertion, deliberately
          re-opening the WAR it covered.  Never set outside tests. *)
  placement : T.Checkpoint_inserter.placement;
      (** checkpoint placement policy for both the middle-end inserter and
          the back end's stack-spill inserter (default [Cost_guided]) *)
  block_profile : A.Costmodel.profile option;
      (** measured per-block entry counts from a PGO pilot run; validated
          against the current label set and ignored (with a warning) when
          empty or stale.  Only consulted under [Cost_guided]. *)
  elide : bool;
      (** run the certifier-validated checkpoint elision pass ({!Elide})
          after the back end, coalescing redundant middle-end/back-end
          checkpoint pairs.  Off by default (it re-certifies per
          candidate); `iclang pgo` and the placement benchmarks turn it
          on.  Only applies under [Cost_guided] and [Interprocedural]. *)
  motion : bool;
      (** run the certifier-validated checkpoint motion pass ({!Motion})
          after elision, relocating WAR checkpoints to cheaper blocks.
          Off by default; only applies under [Interprocedural] (motion
          needs the global weight table to price destinations). *)
}

let default_options =
  {
    unroll_factor = 8;
    expander_size_limit = 400;
    optimize = true;
    expander_profile = None;
    max_region = None;
    drop_middle_ckpt = None;
    placement = T.Checkpoint_inserter.Cost_guided;
    block_profile = None;
    elide = false;
    motion = false;
  }

(** What became of [options.block_profile] during placement. *)
type profile_status =
  | No_profile  (** none supplied: static cost model *)
  | Applied of int  (** profile used; [n] current labels matched *)
  | Fell_back of string
      (** profile rejected (empty/stale): static cost model, with a
          warning on stderr carrying this reason *)

type middle_stats = {
  wars_found : int;
  middle_ckpts : int;
  lwc : T.Loop_write_clusterer.stats option;
  wc_moves : int;
  expander : T.Expander.stats option;
  placement_exact : int;
      (** functions whose weighted cover was proven optimal *)
  placement_fallback : int;
      (** functions placed by the weighted-greedy fallback *)
  profile_status : profile_status;
  placements : T.Checkpoint_inserter.placement_info list;
      (** per-checkpoint rationale from the inserter ([--explain]) *)
  func_freqs : (string * float) list;
      (** call-graph invocation frequencies (only under [Interprocedural]) *)
}

type compiled = {
  env : environment;
  ir : Ir.program;  (** IR after all middle-end transformations *)
  mprog : Wario_machine.Isa.mprog;
  image : Wario_emulator.Image.t;
  middle : middle_stats;
  backend : B.Backend.stats;
  elision : Elide.stats option;  (** [Some] when [options.elide] ran *)
  motion : Motion.stats option;  (** [Some] when [options.motion] ran *)
  model_cost : float option;
      (** cost-model estimate of dynamic checkpoint executions per run:
          the sum of the placement weight of every checkpoint in the
          final image ([None] under [Greedy], which has no weights).
          Comparable across compiles of the same source; expansion
          trials themselves are judged by a measured reference run. *)
  text_bytes : int;
}

let backend_config = function
  | Plain -> B.Backend.plain_backend
  | Ratchet | R_pdg -> B.Backend.ratchet_backend
  | Epilog_opt ->
      (* paper §5.1.3: the HS spill inserter is disabled for this
         environment so it does not pollute the epilog results *)
      {
        B.Backend.spill_strategy = Some B.Stack_ckpt.Naive;
        epilog_style = B.Frame.Optimized;
      }
  | Write_cluster | Loop_cluster ->
      {
        B.Backend.spill_strategy = Some B.Stack_ckpt.Hitting_set;
        epilog_style = B.Frame.Naive;
      }
  | Wario | Wario_expander -> B.Backend.wario_backend

(* Delete the [n]-th (mod count) middle-end checkpoint of the program.
   This deliberately breaks the checkpoint schedule: the WAR the deleted
   checkpoint was covering becomes re-executable, which the lib/verify
   crash-consistency oracle must detect.  Returns false when the program
   has no middle-end checkpoints to drop. *)
let drop_middle_checkpoint (prog : Ir.program) (n : int) : bool =
  let is_middle = function
    | Ir.Checkpoint Ir.Middle_end_war -> true
    | _ -> false
  in
  let total =
    List.fold_left
      (fun acc (f : Ir.func) ->
        List.fold_left
          (fun acc (b : Ir.block) ->
            acc + List.length (List.filter is_middle b.Ir.insns))
          acc f.Ir.blocks)
      0 prog.Ir.funcs
  in
  if total = 0 then false
  else begin
    let target = ((n mod total) + total) mod total in
    let seen = ref 0 in
    List.iter
      (fun (f : Ir.func) ->
        List.iter
          (fun (b : Ir.block) ->
            b.Ir.insns <-
              List.filter
                (fun i ->
                  if is_middle i then begin
                    let k = !seen in
                    incr seen;
                    k <> target
                  end
                  else true)
                b.Ir.insns)
          f.Ir.blocks)
      prog.Ir.funcs;
    true
  end

(* The middle end is split at the placement boundary so the compilation
   cache can reuse its two halves independently (DESIGN.md §19):
   [middle_pre] is everything placement-independent (the "transformed
   WIR" stage — optimization, loop/write clustering, expansion) and
   [middle_place] is the placement suffix (profile validation, call
   graph, checkpoint insertion, region bounding, sabotage).  A
   placement-policy or profile change therefore re-runs only
   [middle_place] onward from a cached transformed WIR. *)

type pre_middle = {
  pm_lwc : T.Loop_write_clusterer.stats option;
  pm_wc_moves : int;
  pm_expander : T.Expander.stats option;
}

let middle_pre ~opts ~metrics ~spans (env : environment) (prog : Ir.program) :
    pre_middle =
  if opts.optimize then
    stage metrics spans "middle.opt_pipeline" (fun () ->
        T.Opt_pipeline.run prog);
  let lwc =
    match env with
    | Loop_cluster | Wario | Wario_expander ->
        let st =
          stage metrics spans "middle.loop_write_clusterer" (fun () ->
              T.Loop_write_clusterer.run ~unroll_factor:opts.unroll_factor prog)
        in
        (* clean up moves and dead snapshots left behind by the clustering
           (copy propagation and DCE never reorder memory operations) *)
        stage metrics spans "middle.lwc_cleanup" (fun () ->
            ignore (T.Copyprop.run prog);
            ignore (T.Dce.run prog));
        M.set metrics "middle.loop_write_clusterer.loops_unrolled"
          st.T.Loop_write_clusterer.loops_unrolled;
        M.set metrics "middle.loop_write_clusterer.stores_postponed"
          st.T.Loop_write_clusterer.stores_postponed;
        M.set metrics "middle.loop_write_clusterer.reads_instrumented"
          st.T.Loop_write_clusterer.reads_instrumented;
        M.set metrics "middle.loop_write_clusterer.reads_forwarded"
          st.T.Loop_write_clusterer.reads_forwarded;
        Some st
    | _ -> None
  in
  let expander =
    match (env, opts.placement) with
    | Plain, _ -> None
    (* Under [Interprocedural] expansion is a placement decision made by
       trial compilation in {!compile_ir} (each candidate inline needs a
       full compile of a program copy to be priced) — the middle end
       alone never expands under that policy. *)
    | _, T.Checkpoint_inserter.Interprocedural -> None
    | Wario_expander, _ ->
        let st =
          stage metrics spans "middle.expander" (fun () ->
              T.Expander.run ~size_limit:opts.expander_size_limit
                ?profile:opts.expander_profile prog)
        in
        M.set metrics "middle.expander.candidates" st.T.Expander.candidates;
        M.set metrics "middle.expander.inlined" st.T.Expander.inlined;
        Some st
    | _ -> None
  in
  let wc_moves =
    match env with
    | Write_cluster | Wario | Wario_expander ->
        let n =
          stage metrics spans "middle.write_clusterer" (fun () ->
              T.Write_clusterer.run prog)
        in
        M.set metrics "middle.write_clusterer.stores_moved" n;
        n
    | _ -> 0
  in
  { pm_lwc = lwc; pm_wc_moves = wc_moves; pm_expander = expander }

let middle_place ~opts ~metrics ~spans (env : environment) (prog : Ir.program)
    (pre : pre_middle) : middle_stats =
  let lwc = pre.pm_lwc
  and expander = pre.pm_expander
  and wc_moves = pre.pm_wc_moves in
  (* Validate the PGO profile here — after every label-creating transform
     (unrolling, clustering, inlining) has run, so the label set the
     profile is checked against is the one placement will actually see. *)
  let profile_status, profile =
    match (opts.block_profile, opts.placement) with
    | None, _ | _, T.Checkpoint_inserter.Greedy -> (No_profile, None)
    | ( Some p,
        T.Checkpoint_inserter.(Cost_guided | Interprocedural) ) -> (
        let expected_labels =
          List.concat_map
            (fun (f : Ir.func) ->
              f.Ir.fname
              :: List.map
                   (fun (b : Ir.block) ->
                     A.Costmodel.mangle f.Ir.fname b.Ir.bname)
                   f.Ir.blocks)
            prog.Ir.funcs
        in
        match A.Costmodel.validate_profile p ~expected_labels with
        | Ok n -> (Applied n, Some p)
        | Error reason ->
            Printf.eprintf
              "warning: ignoring block profile (%s); falling back to the \
               static cost model\n\
               %!"
              reason;
            (Fell_back reason, None))
  in
  (* The call graph for placement is built AFTER every structure-changing
     transform (unrolling, clustering, expansion): frequencies must price
     the blocks the solver will actually see. *)
  let callgraph =
    match (env, opts.placement) with
    | Plain, _ | _, (T.Checkpoint_inserter.Greedy | Cost_guided) -> None
    | _, T.Checkpoint_inserter.Interprocedural ->
        Some
          (stage metrics spans "middle.callgraph_place" (fun () ->
               A.Callgraph.build prog))
  in
  let wars_found, middle_ckpts, placement_exact, placement_fallback, placements
      =
    match env with
    | Plain -> (0, 0, 0, 0, [])
    | _ ->
        let mode =
          match env with Ratchet -> A.Alias.Basic | _ -> A.Alias.Precise
        in
        let global =
          match callgraph with
          | Some cg -> Some cg.A.Callgraph.block_weight
          | None -> None
        in
        let st =
          S.with_span spans "middle.checkpoint_inserter" (fun () ->
              let st =
                M.time metrics "middle.checkpoint_inserter.ms" (fun () ->
                    T.Checkpoint_inserter.run ~mode ~placement:opts.placement
                      ?profile ?global prog)
              in
              S.add_counter ~by:st.T.Checkpoint_inserter.wars spans "wars";
              S.add_counter ~by:st.T.Checkpoint_inserter.checkpoints spans
                "checkpoints";
              S.add_counter ~by:st.T.Checkpoint_inserter.hs_nodes spans
                "hs_nodes";
              S.add_counter ~by:st.T.Checkpoint_inserter.fallback spans
                "fallback";
              st)
        in
        M.set metrics "middle.checkpoint_inserter.wars" st.T.Checkpoint_inserter.wars;
        M.set metrics "middle.checkpoint_inserter.checkpoints"
          st.T.Checkpoint_inserter.checkpoints;
        M.set metrics "middle.checkpoint_inserter.exact"
          st.T.Checkpoint_inserter.exact;
        M.set metrics "middle.checkpoint_inserter.fallback"
          st.T.Checkpoint_inserter.fallback;
        M.set metrics "middle.checkpoint_inserter.hs_nodes"
          st.T.Checkpoint_inserter.hs_nodes;
        (st.wars, st.checkpoints, st.exact, st.fallback, st.placements)
  in
  (* optional extension: bound region sizes for tiny storage capacitors *)
  (match (env, opts.max_region) with
  | Plain, _ | _, None -> ()
  | _, Some n ->
      stage metrics spans "middle.region_bounder" (fun () ->
          ignore (T.Region_bounder.run ~max_instrs:n prog)));
  (* test-only sabotage: break the schedule so the verifier has a target *)
  (match (env, opts.drop_middle_ckpt) with
  | Plain, _ | _, None -> ()
  | _, Some n -> ignore (drop_middle_checkpoint prog n));
  {
    wars_found;
    middle_ckpts;
    lwc;
    wc_moves;
    expander;
    placement_exact;
    placement_fallback;
    profile_status;
    placements;
    func_freqs =
      (match callgraph with
      | Some cg ->
          List.map
            (fun f -> (f, cg.A.Callgraph.func_freq f))
            cg.A.Callgraph.cg_funcs
      | None -> []);
  }

(** Run the middle end for [env] on [prog] (mutates it).  A live
    [metrics] registry records per-pass wall time ([middle.<pass>.ms]) and
    the headline deltas of each pass as counters. *)
let middle_end ?(opts = default_options) ?(metrics = M.disabled)
    ?(spans = S.disabled) (env : environment) (prog : Ir.program) :
    middle_stats =
  S.with_span spans "middle" @@ fun () ->
  let pre = middle_pre ~opts ~metrics ~spans env prog in
  middle_place ~opts ~metrics ~spans env prog pre

(** Compile an already-lowered IR program (used by tests and by
    {!compile} after the front end). *)
(* Weight table for the back end's stack-spill inserter, keyed by mangled
   machine labels (Isel's 1:1 block mapping plus the bare-[fname] prolog
   stub).  Built on the post-middle-end IR, whose block structure the back
   end preserves; uses the validated profile when one was applied.
   Returned as a concrete table, not a closure, so the machine-program
   cache stage can marshal it alongside the backend output (the image
   stage needs it again for elision/motion pricing and the model cost). *)
let backend_weight_table (middle : middle_stats) (opts : options)
    (prog : Ir.program) : (string, float) Hashtbl.t option =
  match opts.placement with
  | T.Checkpoint_inserter.Greedy -> None
  | T.Checkpoint_inserter.(Cost_guided | Interprocedural) as pl ->
      let profile =
        match middle.profile_status with
        | Applied _ -> opts.block_profile
        | No_profile | Fell_back _ -> None
      in
      (* Under Interprocedural, fall back to call-graph-scaled global
         weights instead of per-invocation statics — the stub weight then
         IS the function's expected invocation count, which is what the
         entry/exit spill checkpoints cost. *)
      let cg =
        match pl with
        | T.Checkpoint_inserter.Interprocedural ->
            Some (A.Callgraph.build prog)
        | _ -> None
      in
      let tbl : (string, float) Hashtbl.t = Hashtbl.create 256 in
      List.iter
        (fun (f : Ir.func) ->
          let cfg = A.Cfg.build f in
          let dom = A.Dominance.build cfg in
          let loops = A.Loops.build cfg dom in
          let static = A.Costmodel.static_weights cfg loops in
          let base =
            match cg with
            | Some cg -> fun lbl -> cg.A.Callgraph.block_weight f.Ir.fname lbl
            | None -> static
          in
          let weigh =
            match profile with
            | None -> base
            | Some p ->
                A.Costmodel.profile_weights p ~fname:f.Ir.fname ~fallback:base
          in
          List.iter
            (fun (b : Ir.block) ->
              Hashtbl.replace tbl
                (A.Costmodel.mangle f.Ir.fname b.Ir.bname)
                (weigh b.Ir.bname))
            f.Ir.blocks;
          (* the prolog stub runs once per invocation, like the entry *)
          let stub_weight =
            match profile with
            | Some p -> (
                match List.assoc_opt f.Ir.fname p with
                | Some c -> max (float_of_int c) A.Costmodel.min_weight
                | None -> weigh (A.Cfg.entry cfg))
            | None -> (
                match cg with
                | Some cg ->
                    Float.max
                      (cg.A.Callgraph.func_freq f.Ir.fname)
                      A.Costmodel.min_weight
                | None -> weigh (A.Cfg.entry cfg))
          in
          Hashtbl.replace tbl f.Ir.fname stub_weight)
        prog.Ir.funcs;
      Some tbl

let weights_of_table (tbl : (string, float) Hashtbl.t) : string -> float =
 fun lbl ->
  match Hashtbl.find_opt tbl lbl with
  | Some w -> w
  | None -> A.Costmodel.min_weight

(* Model-priced dynamic checkpoint cost of a linked image: the placement
   weight of every Ckpt's block, summed.  Functions unreachable from main
   are skipped — inlining orphans out-of-line copies whose checkpoints
   never execute, and pricing them would bias every expansion trial. *)
let image_ckpt_cost ~(weights : string -> float) (prog : Ir.program)
    (image : Wario_emulator.Image.t) : float =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) -> Hashtbl.replace by_name f.Ir.fname f)
    prog.Ir.funcs;
  let reached = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt by_name name with
    | Some f when not (Hashtbl.mem reached name) ->
        Hashtbl.replace reached name ();
        List.iter
          (fun (b : Ir.block) ->
            List.iter
              (function Ir.Call (_, callee, _) -> visit callee | _ -> ())
              b.Ir.insns)
          f.Ir.blocks
    | _ -> ()
  in
  if Hashtbl.mem by_name "main" then visit "main"
  else List.iter (fun (f : Ir.func) -> visit f.Ir.fname) prog.Ir.funcs;
  let func_of_label lbl =
    match String.index_opt lbl '$' with
    | Some i -> String.sub lbl 0 i
    | None -> lbl (* bare prolog-stub label *)
  in
  let starts = Array.of_list (Wario_emulator.Image.block_starts image) in
  let n = Array.length starts in
  let cost = ref 0.0 and cursor = ref 0 in
  Array.iteri
    (fun pc instr ->
      while !cursor + 1 < n && snd starts.(!cursor + 1) <= pc do
        incr cursor
      done;
      match instr with
      | Wario_machine.Isa.Ckpt _ when n > 0 ->
          let lbl = fst starts.(!cursor) in
          if Hashtbl.mem reached (func_of_label lbl) then
            cost := !cost +. weights lbl
      | _ -> ())
    image.Wario_emulator.Image.code;
  !cost

(* The post-placement stage runners, shared verbatim by the uncached
   {!compile_ir} path and the cache-aware {!compile_with_report} ladder
   so the two paths cannot drift. *)

let run_backend ~metrics ~spans env ~block_weights (prog : Ir.program) =
  S.with_span spans "backend" (fun () ->
      B.Backend.run ~metrics ?block_weights ~config:(backend_config env) prog)

let run_elide ~(opts : options) ~metrics ~spans env ~block_weights
    (mprog : Wario_machine.Isa.mprog) : Elide.stats option =
  if
    opts.elide && env <> Plain
    && (opts.placement = T.Checkpoint_inserter.Cost_guided
       || opts.placement = T.Checkpoint_inserter.Interprocedural)
  then begin
    let boundary = opts.placement = T.Checkpoint_inserter.Interprocedural in
    let s =
      S.with_span spans "backend.elide" (fun () ->
          let s =
            M.time metrics "backend.elide.ms" (fun () ->
                Elide.run ~boundary ?weight:block_weights ~spans mprog)
          in
          S.add_counter ~by:s.Elide.elided spans "elided";
          S.add_counter ~by:s.Elide.boundary_elided spans "boundary_elided";
          s)
    in
    M.set metrics "backend.elide.count" s.Elide.elided;
    M.set metrics "backend.elide.boundary" s.Elide.boundary_elided;
    Some s
  end
  else None

let run_motion ~(opts : options) ~metrics ~spans env ~block_weights
    (mprog : Wario_machine.Isa.mprog) : Motion.stats option =
  match (opts.motion, env, opts.placement, block_weights) with
  | true, env', T.Checkpoint_inserter.Interprocedural, Some weights
    when env' <> Plain ->
      let s =
        S.with_span spans "backend.motion" (fun () ->
            let s =
              M.time metrics "backend.motion.ms" (fun () ->
                  Motion.run ~weights ~spans mprog)
            in
            S.add_counter ~by:s.Motion.applied spans "applied";
            s)
      in
      M.set metrics "backend.motion.applied" s.Motion.applied;
      Some s
  | _ -> None

let run_link ~metrics ~spans (mprog : Wario_machine.Isa.mprog) :
    Wario_emulator.Image.t =
  let image =
    stage metrics spans "link" (fun () -> Wario_emulator.Image.link mprog)
  in
  M.set metrics "link.text_bytes" image.Wario_emulator.Image.text_bytes;
  M.set metrics "link.data_bytes" image.Wario_emulator.Image.data_bytes;
  image

let rec compile_ir ?(opts = default_options) ?(metrics = M.disabled)
    ?(spans = S.disabled) (env : environment) (prog : Ir.program) : compiled =
  let trial_expander = run_trial_expander ~opts ~metrics ~spans env prog in
  let middle = middle_end ~opts ~metrics ~spans env prog in
  let middle =
    match trial_expander with
    | Some _ -> { middle with expander = trial_expander }
    | None -> middle
  in
  stage metrics spans "middle.ir_verify" (fun () ->
      Wario_ir.Ir_verify.verify_program prog);
  let wtbl = backend_weight_table middle opts prog in
  let block_weights = Option.map weights_of_table wtbl in
  let mprog, backend = run_backend ~metrics ~spans env ~block_weights prog in
  let elision = run_elide ~opts ~metrics ~spans env ~block_weights mprog in
  let motion = run_motion ~opts ~metrics ~spans env ~block_weights mprog in
  let image = run_link ~metrics ~spans mprog in
  let model_cost =
    match block_weights with
    | None -> None
    | Some weights -> Some (image_ckpt_cost ~weights prog image)
  in
  {
    env;
    ir = prog;
    mprog;
    image;
    middle;
    backend;
    elision;
    motion;
    model_cost;
    text_bytes = image.Wario_emulator.Image.text_bytes;
  }

(* Cost-coupled expansion (Interprocedural only) happens before the
   middle end, because each candidate inline is auditioned by a full
   compile of a program copy.  The trial compiles themselves are never
   span-instrumented — only the audition total is attributed. *)
and run_trial_expander ~opts ~metrics ~spans (env : environment)
    (prog : Ir.program) : T.Expander.stats option =
  match (env, opts.placement) with
  | Plain, _ -> None
  | _, T.Checkpoint_inserter.Interprocedural when opts.expander_size_limit > 0
    ->
      let st =
        S.with_span spans "middle.expander_trials" (fun () ->
            let st =
              M.time metrics "middle.expander.ms" (fun () ->
                  trial_expand ~opts env prog)
            in
            S.add_counter ~by:st.T.Expander.candidates spans "candidates";
            S.add_counter ~by:st.T.Expander.inlined spans "inlined";
            st)
      in
      M.set metrics "middle.expander.candidates" st.T.Expander.candidates;
      M.set metrics "middle.expander.inlined" st.T.Expander.inlined;
      Some st
  | _ -> None

(* The audition loop: candidates in descending closed-form benefit, each
   compiled on a copy of the program (expansion disabled; a profile's
   labels would be stale on the inlined copy) and judged by one measured
   reference run of the trial image — continuous power, verification off,
   a bounded cycle budget.  The closed form and the static model both
   mispredict inlining: removing a call deletes a free WAR barrier, and
   the WARs that re-opens live at *real* trip counts the model's
   per-loop guess cannot see (the paper's "sometimes detrimental"
   Expander caveat, and its §6 remedy: profile it).  So the model
   proposes and the measurement disposes: a candidate is kept only when
   the dynamic checkpoint count of the whole trial image strictly drops.
   Accepted inlines stay in force for later trials and the list is
   re-auditioned (bounded passes) because an accepted inline can change a
   later candidate's worth; a code-size budget of [4 * size_limit] added
   instructions bounds growth.  Programs that exhaust the trial budget
   (or break the trial build) audit as infinitely expensive, so
   non-terminating inputs simply keep the un-expanded program.  Finally
   the accepted set is replayed on the real program. *)
and trial_expand ~opts env (prog : Ir.program) : T.Expander.stats =
  let cg = A.Callgraph.build prog in
  let cands =
    T.Expander.costed_candidates ~size_limit:opts.expander_size_limit cg prog
  in
  let trial_opts =
    { opts with expander_size_limit = 0; block_profile = None }
  in
  let cost_of sel =
    let p = Ir.copy_program prog in
    List.iter (fun c -> ignore (T.Expander.apply_candidate p c)) sel;
    match
      let c = compile_ir ~opts:trial_opts env p in
      let r =
        Wario_emulator.Emulator.run ~fuel:100_000_000
          ~supply:Wario_emulator.Power.Continuous ~verify:false c.image
      in
      r.Wario_emulator.Emulator.checkpoints_total
    with
    | n -> n
    | exception _ -> max_int (* no termination, or a broken trial build *)
  in
  let budget = ref (4 * opts.expander_size_limit) in
  let accepted = ref [] in
  let cur = ref (cost_of []) in
  if !cur < max_int then begin
    let remaining = ref cands in
    let passes = ref 0 in
    let improving = ref true in
    while !improving && !passes < 3 do
      incr passes;
      improving := false;
      remaining :=
        List.filter
          (fun (cand : T.Expander.cand) ->
            if cand.T.Expander.xc_size > !budget then true
            else begin
              let cost = cost_of (List.rev (cand :: !accepted)) in
              if cost < !cur then begin
                accepted := cand :: !accepted;
                budget := !budget - cand.T.Expander.xc_size;
                cur := cost;
                improving := true;
                false
              end
              else true
            end)
          !remaining
    done
  end;
  let sel = List.rev !accepted in
  List.iter (fun c -> ignore (T.Expander.apply_candidate prog c)) sel;
  { T.Expander.candidates = List.length cands; inlined = List.length sel }

(* ------------------------------------------------------------------ *)
(* Stage keys and the content-addressed compile (DESIGN.md §19)         *)
(* ------------------------------------------------------------------ *)

let stage_names = [ "front"; "wir"; "place"; "mach"; "image" ]

(* Mirrors Emulator.create's sampling of WARIO_SAVE_ALL exactly ("" and
   "0" mean off).  The flag only matters to compilation under
   [Interprocedural] (trial compiles run the emulator to audition
   inlines), but it participates in every post-frontend key: the cache
   must never have to reason about which configurations could have
   observed it.  Sampled per call, not memoized — tests flip it. *)
let save_all_sampled () =
  match Sys.getenv_opt "WARIO_SAVE_ALL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let canon_bool b = if b then "1" else "0"
let canon_opt_int = function None -> "-" | Some n -> string_of_int n

let canon_placement = function
  | T.Checkpoint_inserter.Greedy -> "greedy"
  | T.Checkpoint_inserter.Cost_guided -> "cost-guided"
  | T.Checkpoint_inserter.Interprocedural -> "interprocedural"

(* Canonical rendering of a (label, count) profile: sorted, so two
   permutations of the same counts share a key. *)
let canon_counts = function
  | None -> "-"
  | Some p ->
      List.sort compare p
      |> List.map (fun (l, c) -> l ^ ":" ^ string_of_int c)
      |> String.concat ","

(** The five stage keys of one (source, env, options) compile, in
    pipeline order.  Each key is a canonical hash of the stage's input
    artifact (via the parent stage's key) plus exactly the option fields
    that stage consumes, so incremental recompilation falls out of the
    chaining: a [placement]/[block_profile] change misses from "place"
    down but reuses the cached transformed WIR, and an [elide]/[motion]
    toggle re-runs only the "image" stage (elision + motion + link) on
    the cached machine program.  The exception is [Interprocedural]
    expansion, whose audition loop compiles and *runs* full trial
    programs before the middle end: there the "wir" key conservatively
    absorbs every option the trial compiles consume (including the
    sampled WARIO_SAVE_ALL emulator flag). *)
let stage_keys ?(opts = default_options) (env : environment) (source : string)
    : (string * Cache.Key.t) list =
  let k_front = Cache.Key.of_parts [ ("stage", "front"); ("source", source) ] in
  let inter_trials =
    opts.placement = T.Checkpoint_inserter.Interprocedural
    && env <> Plain && opts.expander_size_limit > 0
  in
  let k_wir =
    Cache.Key.of_parts
      ([
         ("stage", "wir");
         ("parent", k_front);
         ("env", environment_name env);
         ("save_all", canon_bool (save_all_sampled ()));
         ("optimize", canon_bool opts.optimize);
         ("unroll_factor", string_of_int opts.unroll_factor);
         ("expander_size_limit", string_of_int opts.expander_size_limit);
         ("expander_profile", canon_counts opts.expander_profile);
       ]
      @
      if inter_trials then
        [
          ("trial_placement", "interprocedural");
          ("trial_max_region", canon_opt_int opts.max_region);
          ("trial_drop_middle_ckpt", canon_opt_int opts.drop_middle_ckpt);
          ("trial_elide", canon_bool opts.elide);
          ("trial_motion", canon_bool opts.motion);
          ("trial_save_all", canon_bool (save_all_sampled ()));
        ]
      else [])
  in
  let k_place =
    Cache.Key.of_parts
      [
        ("stage", "place");
        ("parent", k_wir);
        ("placement", canon_placement opts.placement);
        ("block_profile", canon_counts opts.block_profile);
        ("max_region", canon_opt_int opts.max_region);
        ("drop_middle_ckpt", canon_opt_int opts.drop_middle_ckpt);
      ]
  in
  let k_mach = Cache.Key.of_parts [ ("stage", "mach"); ("parent", k_place) ] in
  let k_image =
    Cache.Key.of_parts
      [
        ("stage", "image");
        ("parent", k_mach);
        ("elide", canon_bool opts.elide);
        ("motion", canon_bool opts.motion);
      ]
  in
  [
    ("front", k_front);
    ("wir", k_wir);
    ("place", k_place);
    ("mach", k_mach);
    ("image", k_image);
  ]

let image_key ?opts (env : environment) (source : string) : Cache.Key.t =
  List.assoc "image" (stage_keys ?opts env source)

let compile_uncached ~opts ~metrics ~spans (env : environment)
    (source : string) : compiled =
  S.with_span spans
    ~attrs:[ ("env", S.Str (environment_name env)) ]
    "pipeline.compile"
  @@ fun () ->
  let prog =
    stage metrics spans "frontend" (fun () ->
        Wario_minic.Minic.compile source)
  in
  compile_ir ~opts ~metrics ~spans env prog

(* Stage payloads are marshalled snapshots taken BEFORE any later pass
   mutates the artifact ([Cache.put] marshals eagerly): the "wir" entry
   is the program before placement mutates it, the "mach" entry is the
   machine program before elision/motion rewrite it in place.  Loading
   an entry yields a fresh structure, so cached prefixes are safe to
   mutate onward from. *)
let compile_with_report ?(opts = default_options) ?(metrics = M.disabled)
    ?(spans = S.disabled) ~(cache : Cache.t) (env : environment)
    (source : string) : compiled * (string * bool) list =
  if not (Cache.enabled cache) then
    (compile_uncached ~opts ~metrics ~spans env source, [])
  else
    S.with_span spans
      ~attrs:
        [ ("env", S.Str (environment_name env)); ("cached", S.Str "on") ]
      "pipeline.compile"
    @@ fun () ->
    let keys = stage_keys ~opts env source in
    let k s = List.assoc s keys in
    let report = ref [] in
    let note stage hit =
      Cache.note ~metrics ~spans ~stage hit;
      report := (stage, hit) :: !report
    in
    (* place artifact: the program after the whole middle end (what
       [compiled.ir] exposes) plus its stats — always materialized, even
       on a full image hit, because the compiled record carries it *)
    let prog, middle =
      match Cache.get cache (k "place") with
      | Some v ->
          note "place" true;
          v
      | None ->
          note "place" false;
          let prog, pre =
            match Cache.get cache (k "wir") with
            | Some v ->
                note "wir" true;
                v
            | None ->
                note "wir" false;
                let prog =
                  match Cache.get cache (k "front") with
                  | Some p ->
                      note "front" true;
                      p
                  | None ->
                      note "front" false;
                      let p =
                        stage metrics spans "frontend" (fun () ->
                            Wario_minic.Minic.compile source)
                      in
                      Cache.put cache ~stage:"front" (k "front") p;
                      p
                in
                let trial =
                  run_trial_expander ~opts ~metrics ~spans env prog
                in
                let pre =
                  S.with_span spans "middle" (fun () ->
                      middle_pre ~opts ~metrics ~spans env prog)
                in
                let pre =
                  match trial with
                  | Some _ -> { pre with pm_expander = trial }
                  | None -> pre
                in
                Cache.put cache ~stage:"wir" (k "wir") (prog, pre);
                (prog, pre)
          in
          let middle =
            S.with_span spans "middle" (fun () ->
                middle_place ~opts ~metrics ~spans env prog pre)
          in
          stage metrics spans "middle.ir_verify" (fun () ->
              Wario_ir.Ir_verify.verify_program prog);
          Cache.put cache ~stage:"place" (k "place") (prog, middle);
          (prog, middle)
    in
    let mprog0, backend, wtbl =
      match Cache.get cache (k "mach") with
      | Some v ->
          note "mach" true;
          v
      | None ->
          note "mach" false;
          let wtbl = backend_weight_table middle opts prog in
          let block_weights = Option.map weights_of_table wtbl in
          let mprog, backend =
            run_backend ~metrics ~spans env ~block_weights prog
          in
          Cache.put cache ~stage:"mach" (k "mach") (mprog, backend, wtbl);
          (mprog, backend, wtbl)
    in
    let mprog, image, elision, motion, model_cost, text_bytes =
      match Cache.get cache (k "image") with
      | Some v ->
          note "image" true;
          v
      | None ->
          note "image" false;
          let block_weights = Option.map weights_of_table wtbl in
          let elision =
            run_elide ~opts ~metrics ~spans env ~block_weights mprog0
          in
          let motion =
            run_motion ~opts ~metrics ~spans env ~block_weights mprog0
          in
          let image = run_link ~metrics ~spans mprog0 in
          let model_cost =
            match wtbl with
            | None -> None
            | Some t ->
                Some
                  (image_ckpt_cost ~weights:(weights_of_table t) prog image)
          in
          let v =
            ( mprog0,
              image,
              elision,
              motion,
              model_cost,
              image.Wario_emulator.Image.text_bytes )
          in
          Cache.put cache ~stage:"image" (k "image") v;
          v
    in
    ( {
        env;
        ir = prog;
        mprog;
        image;
        middle;
        backend;
        elision;
        motion;
        model_cost;
        text_bytes;
      },
      List.rev !report )

(** Compile MiniC source text under a software environment.  With an
    enabled [cache] (explicit, or ambient via [WARIO_CACHE_DIR] when the
    argument is omitted) the compile runs through the keyed stage ladder
    and reuses every cached prefix; with the cache disabled this is the
    classic single-pass pipeline. *)
let compile ?(opts = default_options) ?(metrics = M.disabled)
    ?(spans = S.disabled) ?cache (env : environment) (source : string) :
    compiled =
  let cache =
    match cache with Some c -> c | None -> Cache.from_env ()
  in
  if Cache.enabled cache then
    fst (compile_with_report ~opts ~metrics ~spans ~cache env source)
  else compile_uncached ~opts ~metrics ~spans env source

(** Static WAR-freedom certification of the linked image (lib/certify):
    translation validation of the whole pipeline above. *)
let certify (c : compiled) : Wario_certify.Certify.verdict =
  Wario_certify.Certify.certify c.image

let certify_report (c : compiled) (v : Wario_certify.Certify.verdict) : string =
  Wario_certify.Certify.report c.image v
