(** Run-artifact trend reporting and regression gating: the analysis
    behind [iclang stats].

    Ingests the artefacts the rest of the stack already emits — the
    benchmark harness's [BENCH_*.json] generations, span JSONL written by
    [--span-jsonl] anywhere in the fleet, campaign coverage JSON — and
    renders a trend report: per-program dynamic-checkpoint / cycle deltas
    across BENCH generations, the top-k slowest spans, and per-worker
    utilization.  With a budget file it additionally gates: any program
    over its dyn-ckpt or cycle budget (or missing from the newest
    generation that should carry it) is a breach, and [iclang stats
    --gate] exits nonzero.

    Everything here is total on degenerate input: zero generations, a
    single generation (no deltas), zero spans, a zero-dyn-ckpt baseline —
    no divide-by-zero, no [nan], no negative table widths. *)

(** {1 BENCH generations} *)

type point = {
  pt_program : string;
  pt_class : string;  (** ["micro"] or ["benchmark"] ([""] when absent) *)
  pt_selected : string;  (** the measured guard's pick *)
  pt_dyn_ckpts : int;  (** selected variant, continuous power *)
  pt_cycles : int;  (** selected variant, continuous power *)
}

type tpoint = {
  tp_program : string;
  tp_ref_ips : float;  (** reference engine, instr/s, continuous power *)
  tp_uop_ips : float;
  tp_block_ips : float;
}

type cache_point = {
  cp_cold_s : float;  (** wall seconds of the cold-cache sweep *)
  cp_warm_s : float;  (** wall seconds of the identical warm sweep *)
  cp_speedup : float;  (** [cp_cold_s /. cp_warm_s] *)
  cp_hits : int;
  cp_misses : int;
  cp_evictions : int;
}

type generation = {
  g_label : string;  (** e.g. ["BENCH_5"] — the file's base name *)
  g_kind : string;  (** the artefact's ["bench"] field *)
  g_small : bool;
  g_points : point list;  (** one per program; empty for perf artefacts *)
  g_emulator_ips : float option;
      (** perf artefacts: fast-path instructions per second *)
  g_throughput : tpoint list;
      (** emu artefacts (BENCH_7): per-program per-engine instr/s; empty
          for every other artefact kind *)
  g_cache : cache_point option;
      (** cache artefacts (BENCH_8): the compile-cache cold/warm summary *)
}

val generation_of_json :
  label:string -> Wario_support.Json.t -> (generation, string) result
(** Accepts every BENCH schema in the repo: [perf] (no programs),
    [place] / [place6] (programs × variants), [emu] (programs × engines —
    parsed into [g_throughput], not [g_points]), [cache] (one cold/warm
    compile summary, parsed into [g_cache]).  Each placement program's
    point is its {e selected} variant's continuous-power numbers. *)

val load_generation : label:string -> string -> (generation, string) result
(** [generation_of_json] on raw file text. *)

(** {1 Trend across generations} *)

type trend_row = {
  tr_program : string;
  tr_cells : (string * int * int) option list;
      (** aligned with the input generations (placement generations only):
          [Some (selected, dyn_ckpts, cycles)] where the program appears *)
  tr_dyn_delta_pct : float option;
      (** oldest → newest appearance; [None] with fewer than two
          appearances or a zero baseline *)
  tr_cycles_delta_pct : float option;
}

val trend : generation list -> trend_row list
(** Rows in order of first appearance; generations are taken in the order
    given (pass oldest first). *)

type throughput_row = {
  th_program : string;
  th_cells : tpoint option list;
      (** aligned with the emu generations in input order *)
  th_block_delta_pct : float option;
      (** block-engine instr/s, oldest → newest appearance; [None] with
          fewer than two appearances *)
}

val throughput_trend : generation list -> throughput_row list
(** The instr/s counterpart of {!trend}: one row per program appearing in
    any emu generation. *)

val render_trend : generation list -> string

(** {1 Span statistics} *)

type span_row = {
  sr_path : string;  (** ["/a/b/c"] root-to-span names *)
  sr_dur_ms : float;
  sr_self_ms : float;  (** duration minus same-track child time, >= 0 *)
  sr_track : int;
}

val top_spans : ?k:int -> Wario_obs.Span.span list -> span_row list
(** The [k] (default 10) slowest spans by total duration. *)

type worker_row = {
  wk_pool : string;  (** the pool span's label *)
  wk_worker : int;
  wk_busy_ms : float;
  wk_idle_ms : float;
  wk_items : int;
}

val worker_utilization : Wario_obs.Span.span list -> worker_row list
(** Aggregates every ["worker"] span under each pool label, summed per
    (pool, worker id) over all pool invocations — the per-domain
    busy/idle timeline {!Wario_exec.Exec.map} grafts at each join. *)

val render_spans : ?k:int -> Wario_obs.Span.span list -> string
(** Top-k table + worker-utilization table; a friendly line (not an
    exception) on zero spans. *)

(** {1 Regression gate} *)

type budget = {
  b_program : string;
  b_max_dyn_ckpts : int option;
  b_max_cycles : int option;
  b_min_instr_per_s : float option;
      (** a {e floor} on the block engine's continuous-power instr/s (the
          newest emu generation) — the inverted comparison: falling under
          it is the breach *)
  b_max_warm_compile_s : float option;
      (** ceiling on the warm-cache sweep's wall seconds (the newest
          cache generation); breaches render in milliseconds *)
  b_min_cache_speedup : float option;
      (** floor on cold/warm speedup of the newest cache generation;
          breaches render in percent *)
}

val budgets_of_json :
  Wario_support.Json.t -> (budget list, string) result
(** Schema: [{"budgets": [{"program": s, "max_dyn_ckpts": n?,
    "max_cycles": n?, "min_instr_per_s": x?}, ...]}]. *)

type breach = {
  br_program : string;
  br_metric : string;
      (** ["dyn_ckpts"], ["cycles"], ["missing"], ["instr_per_s"] or
          ["instr_per_s missing"] *)
  br_actual : int option;  (** [None] when the program is missing *)
  br_limit : int;
}

val gate : budgets:budget list -> generation list -> breach list
(** Each budgeted program is checked against its {e newest} appearance
    (the last generation, in input order, whose points include it); a
    program appearing in no generation is itself a breach.  Ceiling
    budgets (dyn-ckpts, cycles) read placement generations; the
    [min_instr_per_s] floor reads emu generations.  Empty result = gate
    passes. *)

val render_breaches : breach list -> string
