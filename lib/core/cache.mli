(** The typed compilation cache: canonical stage keys plus marshalled
    artifacts over the content-addressed on-disk store
    ({!Wario_support.Store}).  See DESIGN.md §19.

    {!Pipeline} owns the per-stage key derivations (which option fields
    each stage consumes); this module owns the canonical encoding, the
    128-bit FNV-1a key, and the never-raise get/put discipline: every
    cache failure degrades to a recompile, never an error. *)

module Key : sig
  type t = string
  (** 32 lowercase hex characters: two domain-separated FNV-1a 64-bit
      hashes of the canonical field string. *)

  val of_parts : (string * string) list -> t
  (** Canonical key of an ordered (field, value) list.  The cache format
      version (which includes the OCaml compiler version — payloads are
      [Marshal]ed) is folded into every key, so format changes miss
      against old entries instead of misreading them. *)

  val to_hex : t -> string
end

type t

val disabled : t
(** No store: every [get] misses, every [put] is a no-op. *)

val enabled : t -> bool

val create : ?max_bytes:int -> string -> t
(** Open (creating if needed) an on-disk cache rooted at a directory.
    [max_bytes] bounds it with LRU eviction
    (default {!Wario_support.Store.default_max_bytes}). *)

val from_env : unit -> t
(** The ambient cache: [WARIO_CACHE_DIR] names the directory (unset or
    empty → {!disabled}), [WARIO_CACHE_MAX_MB] bounds it.  Handles are
    shared per (dir, budget) within the process, so ambient users see
    one set of counters. *)

type counters = Wario_support.Store.counters = {
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
}

val counters : t -> counters

val get : t -> Key.t -> 'a option
(** Unmarshal the payload stored under a key.  [None] on any miss,
    corruption or unmarshal failure — never raises.  The ['a] is trusted
    from the key: stage names and the format version participate in
    every key, so distinct payload types cannot share one. *)

val put : t -> ?stage:string -> Key.t -> 'a -> unit
(** Marshal and store a payload (atomic rename-on-write; see
    {!Wario_support.Store.put}).  [stage] tags the advisory index.
    Never raises. *)

val mem : t -> Key.t -> bool
(** Existence probe without reading, counting or LRU-touching. *)

val note :
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  stage:string ->
  bool ->
  unit
(** Record a per-stage hit ([true]) or miss ([false]):
    [cache.<stage>.hit/miss] counters in the metrics registry and
    [cache_<stage>_hit/miss] counters on the open span. *)
