(* Report formatting: plain-text tables for the benchmark harness, plus the
   static feature-comparison of paper Table 4. *)

let hr width = String.make width '-'

(** Render a table: header row + rows, columns sized to fit. *)
let table ?(title = "") (header : string list) (rows : string list list) :
    string =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let pad = widths.(i) - String.length cell in
           if i = 0 then cell ^ String.make pad ' '
           else String.make pad ' ' ^ cell)
         r)
  in
  (* degenerate tables (no columns at all) must still render: the rule
     width below would go negative and [String.make] would raise *)
  let total = max 1 (Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))) in
  let b = Buffer.create 1024 in
  if title <> "" then Buffer.add_string b (title ^ "\n");
  Buffer.add_string b (render_row header);
  Buffer.add_char b '\n';
  Buffer.add_string b (hr total);
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (render_row r);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let pct ?(digits = 1) x = Printf.sprintf "%+.*f%%" digits x
let ratio x = Printf.sprintf "%.2f" x

(** Paper Table 4: WARio against the related intermittent-execution support
    systems (static content; reproduced from the paper). *)
let table4 () : string =
  table
    ~title:
      "Table 4: WARio compared against state-of-the-art intermittent \
       execution support systems"
    [
      "system"; "NV main mem"; "reg-only ckpt"; "no runtime log";
      "incorruptible"; "C support"; "compiler-based"; "code-aware";
      "code-transf."; "ARM";
    ]
    [
      [ "Mementos"; "no"; "no"; "yes"; "yes"; "yes"; "no"; "no"; "no"; "yes" ];
      [ "MPatch"; "no"; "no"; "no"; "yes"; "yes"; "no"; "no"; "no"; "yes" ];
      [ "Chinchilla"; "yes"; "yes"; "no"; "yes"; "partially"; "yes"; "no";
        "partially"; "no" ];
      [ "TICS"; "yes"; "no"; "no"; "yes"; "yes"; "yes"; "no"; "no"; "no" ];
      [ "InK"; "partially"; "yes"; "partially"; "yes"; "no"; "no"; "no"; "no";
        "no" ];
      [ "Ratchet"; "yes"; "yes"; "yes"; "yes"; "yes"; "yes"; "yes"; "no";
        "yes" ];
      [ "WARio"; "yes"; "yes"; "yes"; "yes"; "yes"; "yes"; "yes"; "yes";
        "yes" ];
    ]

(** Five-number summary of idempotent region sizes (paper Figure 7). *)
type region_summary = {
  rs_p25 : int;
  rs_median : int;
  rs_p75 : int;
  rs_mean : float;
  rs_max : int;
  rs_count : int;
}

(* ------------------------------------------------------------------ *)
(* Observability rendering (lib/obs)                                    *)
(* ------------------------------------------------------------------ *)

(** Wasted-cycle decomposition of an emulator result as a one-row table. *)
let waste_table (w : Wario_emulator.Emulator.waste) : string =
  let total = w.w_useful + w.w_boot + w.w_restore + w.w_reexec in
  let cell n =
    Printf.sprintf "%d (%.1f%%)" n
      (100. *. float_of_int n /. float_of_int (max 1 total))
  in
  table
    [ "total cycles"; "useful"; "boot"; "restore"; "re-executed" ]
    [
      [ string_of_int total; cell w.w_useful; cell w.w_boot; cell w.w_restore;
        cell w.w_reexec ];
    ]

(** Per-function profile table (self cycles, checkpoint commits, commit
    cycles, irqs), top [top] rows by self cycles. *)
let profile_table ?(top = 0) (p : Wario_obs.Profile.t) : string =
  let module Pr = Wario_obs.Profile in
  let rows =
    List.filter (fun (r : Pr.fn_row) -> r.Pr.fn_cycles > 0) p.Pr.rows
  in
  let rows = if top > 0 then Wario_support.Util.take top rows else rows in
  table
    [ "function"; "self cycles"; "%"; "ckpts"; "ckpt cycles"; "irqs" ]
    (List.map
       (fun (r : Pr.fn_row) ->
         [
           r.Pr.fn_name;
           string_of_int r.Pr.fn_cycles;
           Printf.sprintf "%.1f"
             (100.
             *. float_of_int r.Pr.fn_cycles
             /. float_of_int (max 1 p.Pr.total_cycles));
           string_of_int r.Pr.fn_ckpts;
           string_of_int r.Pr.fn_ckpt_cycles;
           string_of_int r.Pr.fn_irqs;
         ])
       rows)

(** The [top] longest idempotent regions of a trace profile. *)
let regions_table ?(top = 10) (p : Wario_obs.Profile.t) : string =
  let module Pr = Wario_obs.Profile in
  let rs =
    List.sort
      (fun (a : Pr.region) b -> compare b.Pr.rg_cycles a.Pr.rg_cycles)
      p.Pr.regions
  in
  let rs = Wario_support.Util.take top rs in
  table
    [ "start @cycle"; "cycles"; "function"; "closed by" ]
    (List.map
       (fun (r : Pr.region) ->
         [
           string_of_int r.Pr.rg_start;
           string_of_int r.Pr.rg_cycles;
           r.Pr.rg_func;
           r.Pr.rg_closed_by;
         ])
       rs)

let summarize_regions (sizes : int list) : region_summary =
  match sizes with
  | [] -> { rs_p25 = 0; rs_median = 0; rs_p75 = 0; rs_mean = 0.; rs_max = 0; rs_count = 0 }
  | _ ->
      let module U = Wario_support.Util in
      (* one sort serves all three percentiles, the mean, the max and the
         count (region lists reach one entry per checkpoint commit) *)
      let sorted = Array.of_list sizes in
      Array.sort compare sorted;
      let n = Array.length sorted in
      {
        rs_p25 = U.percentile_sorted 25. sorted;
        rs_median = U.percentile_sorted 50. sorted;
        rs_p75 = U.percentile_sorted 75. sorted;
        rs_mean = float_of_int (Array.fold_left ( + ) 0 sorted) /. float_of_int n;
        rs_max = sorted.(n - 1);
        rs_count = n;
      }

(* ------------------------------------------------------------------ *)
(* Verify-campaign coverage (lib/verify)                                *)
(* ------------------------------------------------------------------ *)

(* Scalar row so the core library stays independent of wario_verify: the
   campaign engine flattens its reports into these. *)
type campaign_row = {
  cr_workload : string;
  cr_env : string;
  cr_schedules : int;
  cr_probes : int;
  cr_boundaries : int;
  cr_boundaries_cut : int;
  cr_regions : int;
  cr_regions_cut : int;
  cr_boot_cut : bool;
  cr_worst_reexec : int;
  cr_failures : int;
}

let coverage_cell ~cut ~total =
  if total = 0 then "-/- (100%)"
  else
    Printf.sprintf "%d/%d (%.0f%%)" cut total
      (100.0 *. float_of_int cut /. float_of_int total)

let campaign_table (rows : campaign_row list) : string =
  table ~title:"Campaign coverage: commit-boundary and region cut accounting"
    [
      "workload";
      "env";
      "schedules";
      "probes";
      "boundaries cut";
      "regions cut";
      "boot";
      "worst reexec";
      "failures";
    ]
    (List.map
       (fun r ->
         [
           r.cr_workload;
           r.cr_env;
           string_of_int r.cr_schedules;
           string_of_int r.cr_probes;
           coverage_cell ~cut:r.cr_boundaries_cut ~total:r.cr_boundaries;
           coverage_cell ~cut:r.cr_regions_cut ~total:r.cr_regions;
           (if r.cr_boot_cut then "yes" else "no");
           string_of_int r.cr_worst_reexec;
           (if r.cr_failures = 0 then "ok"
            else string_of_int r.cr_failures);
         ])
       rows)
