(** Certifier-validated checkpoint motion.

    Generalises {!Elide}: instead of only deleting a redundant WAR
    checkpoint, move it to a cheaper block — hoist it out of a loop into
    a predecessor, or sink it into a successor past the hot part of its
    block — whenever the static idempotence certifier still proves the
    image WAR-free with the barrier at the new location.  A move is one
    {!Wario_certify.Certify.Session.recheck_insertion} at the
    destination (sound by monotonicity: adding a barrier only removes
    barrier-free paths) followed by one
    {!Wario_certify.Certify.Session.recheck_removal} at the source (the
    expensive direction); rejected removals are reverted and the
    destination barrier is taken back out when no other move needs it.
    Every decision ships with the certifier's verdict.

    After materialising kept moves into the machine program the pass
    re-runs {!Wario_backend.Mliveness.set_ckpt_masks} on every touched
    function: checkpoint masks are live-register sets at the {e old}
    location, and the emulator zeroes unmasked registers on restore, so
    stale masks would be a crash-consistency bug the WAR certifier
    cannot see.  The caller relinks. *)

type kind = Hoist | Sink

type move = {
  mv_func : string;
  mv_kind : kind;
  mv_cause : Wario_machine.Isa.ckpt_cause;
  mv_from : string;  (** source machine block label *)
  mv_to : string;  (** destination machine block label *)
  mv_from_pc : int;  (** pc of the source checkpoint (anchored image) *)
  mv_to_pc : int;  (** pc of the destination anchor (anchored image) *)
  mv_w_from : float;  (** model weight of the source block *)
  mv_w_to : float;  (** model weight of the destination block *)
  mv_applied : bool;
  mv_verdict : string;
      (** the certifier's verdict for this move: ["certified"] or the
          rejection's first reason *)
}

type stats = {
  proposed : int;
  applied : int;
  hoisted : int;
  sunk : int;
  rejected : int;
  moves : move list;  (** every proposed move, program order *)
}

val run :
  weights:(string -> float) ->
  ?spans:Wario_obs.Span.t ->
  Wario_machine.Isa.mprog ->
  stats
(** Mutates the program in place; the caller relinks.  A live [spans]
    recorder gets one ["certify.recheck"] span per session recheck
    (op/pc/verdict attributes).  [weights] prices a
    {e mangled} machine block label (the same table the back end's
    weighted spill placement uses); a move is proposed only when the
    destination is strictly cheaper.  Images that do not certify
    beforehand are left untouched.  Only [Middle_end_war] and
    [Back_end_war] checkpoints move; the entry/exit checkpoints of the
    calling convention never do. *)
