(* Certifier-validated checkpoint elision (coalescing).

   Cost-guided placement solves the middle end and the back end
   *independently*, so a hot block can end up with both a middle-end WAR
   checkpoint and one or more back-end spill checkpoints a few
   instructions apart — each pass proves its own WARs covered without
   seeing the barriers the other pass inserted.  Any one of those
   checkpoints often suffices as the barrier for every WAR crossing the
   block.

   Rather than teach each pass about the other's obligations, this pass
   removes candidate checkpoints *tentatively* and lets the static
   idempotence certifier (lib/certify, PR 2) arbitrate: a removal is kept
   only if the image still certifies WAR-free.  The certifier is the same
   translation validator the test suite and `iclang certify` apply to
   every build, so an elision can never ship a WAR the pipeline's own
   acceptance oracle would catch — the pass is safe by construction: its
   output is a subset of an already-certified instruction stream.

   The search runs on one linked image through an incremental
   {!Wario_certify.Certify.Session}: a trial replaces the checkpoint with
   [Mov (r0, R r0)] in place (the certifier models [Ckpt] as a
   state-transfer no-op whose only effect is barrierhood, so the
   substitution is deletion's exact analysis equivalent while keeping
   every pc stable and every cached abstract state exact), then re-judges
   only what the removal can change: the pop-conversion obligation at the
   next pc and the pairs of loads reaching the removed barrier
   barrier-free.  Kept removals are then really deleted from the machine
   program, and the caller relinks.

   Two candidate classes:

   - WAR coalescing (always on): Middle_end_war/Back_end_war checkpoints
     in blocks carrying at least two of them — the redundancy pattern
     above.  Tried in program order.

   - Calling-convention brackets ([boundary], interprocedural policy
     only): Function_entry/Function_exit checkpoints.  Per-function
     reasoning can never drop these — a call counts as a WAR barrier in
     every intraprocedural analysis precisely because the callee is
     guaranteed to checkpoint on entry — but the certifier's region walk
     crosses calls and returns, so it can prove a particular bracket
     redundant for this whole program (e.g. a callee whose body
     checkpoints before any store the caller's region could reach).  The
     interprocedural model also says where that pays: a bracket at a hot
     call boundary executes once per call, so candidates are ordered by
     the caller-weighted block weight, hottest first.

   Everything is a single pass per class (a rejected removal can never
   succeed after later removals — those only delete barriers, strictly
   hardening the obligation), so the result is deterministic.  All
   [mcode] deletions are deferred to the end: trials edit only the image
   (pc-stable), so original per-block indices stay valid throughout. *)

module I = Wario_machine.Isa
module C = Wario_certify.Certify
module E = Wario_emulator
module S = Wario_obs.Span

type stats = {
  candidates : int;
  tried : int;
  elided : int;
  boundary_tried : int;
  boundary_elided : int;
}

let is_war_ckpt = function
  | I.Ckpt ((I.Middle_end_war | I.Back_end_war), _) -> true
  | _ -> false

let is_boundary_ckpt = function
  | I.Ckpt ((I.Function_entry | I.Function_exit), _) -> true
  | _ -> false

let nop = I.Mov (0, I.R 0)

let run ?(boundary = false) ?(weight = fun _ -> 0.) ?(spans = S.disabled)
    (p : I.mprog) : stats =
  let img = E.Image.link p in
  (* An image that does not certify as-is gives the pass no oracle to
     preserve: leave such builds untouched. *)
  match C.certify img with
  | C.Rejected _ ->
      {
        candidates = 0;
        tried = 0;
        elided = 0;
        boundary_tried = 0;
        boundary_elided = 0;
      }
  | C.Certified _ ->
      let ses = C.Session.create img in
      let start_of =
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (l, pc) -> Hashtbl.replace tbl l pc)
          (E.Image.block_starts img);
        fun l -> Hashtbl.find tbl l
      in
      (* deferred per-block deletions: block -> original indices gone *)
      let gone : (I.mblock * int list ref) list ref = ref [] in
      let gone_of (b : I.mblock) =
        match List.find_opt (fun (b', _) -> b' == b) !gone with
        | Some (_, r) -> r
        | None ->
            let r = ref [] in
            gone := (b, r) :: !gone;
            r
      in
      let try_removal (b : I.mblock) (k : int) (ins : I.instr) : bool =
        let pc = start_of b.I.mlabel + k in
        (* one span per certifier recheck: per-removal verdict latency *)
        S.with_span spans
          ~attrs:[ ("pc", S.Int pc) ]
          "certify.recheck_removal"
        @@ fun () ->
        img.E.Image.code.(pc) <- nop;
        match C.Session.recheck_removal ses pc with
        | C.Certified _ ->
            S.set_attr spans "verdict" (S.Str "certified");
            let g = gone_of b in
            g := k :: !g;
            true
        | C.Rejected _ ->
            S.set_attr spans "verdict" (S.Str "rejected");
            img.E.Image.code.(pc) <- ins;
            false
      in
      let candidates = ref 0 and tried = ref 0 and elided = ref 0 in
      List.iter
        (fun (mf : I.mfunc) ->
          List.iter
            (fun (b : I.mblock) ->
              let code = Array.of_list b.I.mcode in
              let n_war =
                Array.fold_left
                  (fun a ins -> a + if is_war_ckpt ins then 1 else 0)
                  0 code
              in
              if n_war >= 2 then begin
                incr candidates;
                Array.iteri
                  (fun k ins ->
                    if is_war_ckpt ins then begin
                      incr tried;
                      if try_removal b k ins then incr elided
                    end)
                  code
              end)
            mf.I.mblocks)
        p.I.mfuncs;
      let boundary_tried = ref 0 and boundary_elided = ref 0 in
      if boundary then begin
        let cands =
          List.concat_map
            (fun (mf : I.mfunc) ->
              List.concat_map
                (fun (b : I.mblock) ->
                  List.mapi (fun k ins -> (b, k, ins)) b.I.mcode
                  |> List.filter (fun (_, _, ins) -> is_boundary_ckpt ins))
                mf.I.mblocks)
            p.I.mfuncs
        in
        (* hottest bracket first; ties broken by pc for determinism *)
        let keyed =
          List.map
            (fun (b, k, ins) ->
              ( weight b.I.mlabel,
                start_of b.I.mlabel + k,
                (b, k, ins) ))
            cands
          |> List.stable_sort (fun (wa, pa, _) (wb, pb, _) ->
                 match compare wb wa with 0 -> compare pa pb | c -> c)
        in
        List.iter
          (fun (_, _, (b, k, ins)) ->
            incr boundary_tried;
            if try_removal b k ins then incr boundary_elided)
          keyed
      end;
      List.iter
        (fun ((b : I.mblock), g) ->
          if !g <> [] then
            b.I.mcode <- List.filteri (fun k _ -> not (List.mem k !g)) b.I.mcode)
        !gone;
      {
        candidates = !candidates;
        tried = !tried;
        elided = !elided;
        boundary_tried = !boundary_tried;
        boundary_elided = !boundary_elided;
      }
