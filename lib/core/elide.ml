(* Certifier-validated checkpoint elision (coalescing).

   Cost-guided placement solves the middle end and the back end
   *independently*, so a hot block can end up with both a middle-end WAR
   checkpoint and one or more back-end spill checkpoints a few
   instructions apart — each pass proves its own WARs covered without
   seeing the barriers the other pass inserted.  Any one of those
   checkpoints often suffices as the barrier for every WAR crossing the
   block.

   Rather than teach each pass about the other's obligations, this pass
   removes candidate checkpoints *tentatively* and lets the static
   idempotence certifier (lib/certify, PR 2) arbitrate: a removal is kept
   only if the image still certifies WAR-free.  The certifier is the same
   translation validator the test suite and `iclang certify` apply to
   every build, so an elision can never ship a WAR the pipeline's own
   acceptance oracle would catch — the pass is safe by construction: its
   output is a subset of an already-certified instruction stream.

   The search runs on one linked image through an incremental
   {!Wario_certify.Certify.Session}: a trial replaces the checkpoint with
   [Mov (r0, R r0)] in place (the certifier models [Ckpt] as a
   state-transfer no-op whose only effect is barrierhood, so the
   substitution is deletion's exact analysis equivalent while keeping
   every pc stable and every cached abstract state exact), then re-judges
   only what the removal can change: the pop-conversion obligation at the
   next pc and the pairs of loads reaching the removed barrier
   barrier-free.  Kept removals are then really deleted from the machine
   program, and the caller relinks.

   Candidates are deliberately narrow: only Middle_end_war/Back_end_war
   checkpoints in blocks carrying at least two of them (the redundancy
   pattern above).  Function entry/exit checkpoints implement the calling
   convention and are never touched.  Everything iterates in program
   order, one trial per candidate (a rejected removal can never succeed
   after later removals — those only delete barriers, strictly hardening
   the obligation), so the result is deterministic. *)

module I = Wario_machine.Isa
module C = Wario_certify.Certify
module E = Wario_emulator

type stats = { candidates : int; tried : int; elided : int }

let is_war_ckpt = function
  | I.Ckpt ((I.Middle_end_war | I.Back_end_war), _) -> true
  | _ -> false

let nop = I.Mov (0, I.R 0)

let run (p : I.mprog) : stats =
  let img = E.Image.link p in
  (* An image that does not certify as-is gives the pass no oracle to
     preserve: leave such builds untouched. *)
  match C.certify img with
  | C.Rejected _ -> { candidates = 0; tried = 0; elided = 0 }
  | C.Certified _ ->
      let ses = C.Session.create img in
      let start_of =
        let tbl = Hashtbl.create 64 in
        List.iter (fun (l, pc) -> Hashtbl.replace tbl l pc) (E.Image.block_starts img);
        fun l -> Hashtbl.find tbl l
      in
      let candidates = ref 0 and tried = ref 0 and elided = ref 0 in
      List.iter
        (fun (mf : I.mfunc) ->
          List.iter
            (fun (b : I.mblock) ->
              let code = Array.of_list b.I.mcode in
              let n_war =
                Array.fold_left
                  (fun a ins -> a + if is_war_ckpt ins then 1 else 0)
                  0 code
              in
              if n_war >= 2 then begin
                incr candidates;
                let base = start_of b.I.mlabel in
                let gone = ref [] in
                (* single pass: a rejected removal can never succeed later
                   (further removals only delete barriers, making the
                   obligation strictly harder), so no retry loop *)
                Array.iteri
                  (fun k ins ->
                    if is_war_ckpt ins then begin
                      incr tried;
                      let pc = base + k in
                      img.E.Image.code.(pc) <- nop;
                      match C.Session.recheck_removal ses pc with
                      | C.Certified _ ->
                          incr elided;
                          gone := k :: !gone
                      | C.Rejected _ -> img.E.Image.code.(pc) <- ins
                    end)
                  code;
                if !gone <> [] then
                  b.I.mcode <-
                    List.filteri (fun k _ -> not (List.mem k !gone)) b.I.mcode
              end)
            mf.I.mblocks)
        p.I.mfuncs;
      { candidates = !candidates; tried = !tried; elided = !elided }
