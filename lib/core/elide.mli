(** Certifier-validated checkpoint elision.

    Cost-guided placement solves the middle end and the back end
    independently, so a hot block can carry both a middle-end WAR
    checkpoint and back-end spill checkpoints, each redundant given the
    other.  [run] tentatively removes such checkpoints and keeps each
    removal only if the static idempotence certifier (lib/certify) still
    proves the relinked image WAR-free — safe by construction, since the
    output is a subset of an already-certified instruction stream, judged
    by the same oracle `iclang certify` applies.

    Only [Middle_end_war]/[Back_end_war] checkpoints in blocks holding at
    least two of them are candidates; function entry/exit checkpoints are
    never touched.  Deterministic; images that do not certify beforehand
    are left untouched. *)

type stats = { candidates : int; tried : int; elided : int }

val run : Wario_machine.Isa.mprog -> stats
(** Mutates the program in place.  [candidates] counts blocks examined,
    [tried] individual removal attempts, [elided] removals kept. *)
