(** Certifier-validated checkpoint elision.

    Cost-guided placement solves the middle end and the back end
    independently, so a hot block can carry both a middle-end WAR
    checkpoint and back-end spill checkpoints, each redundant given the
    other.  [run] tentatively removes such checkpoints and keeps each
    removal only if the static idempotence certifier (lib/certify) still
    proves the relinked image WAR-free — safe by construction, since the
    output is a subset of an already-certified instruction stream, judged
    by the same oracle `iclang certify` applies.

    By default only [Middle_end_war]/[Back_end_war] checkpoints in blocks
    holding at least two of them are candidates; function entry/exit
    checkpoints implement the calling convention and are never touched.
    Under the interprocedural placement policy ([boundary = true]) the
    calling-convention brackets are audited too: every per-function
    analysis must keep them (a call is only a WAR barrier {e because} the
    callee checkpoints on entry), but the certifier's region walk crosses
    calls and returns, so it can prove a particular bracket redundant for
    this whole program — and a hot call boundary is exactly where the
    interprocedural model says the dynamic-checkpoint mass is.
    Deterministic; images that do not certify beforehand are left
    untouched. *)

type stats = {
  candidates : int;
  tried : int;
  elided : int;
  boundary_tried : int;
  boundary_elided : int;
}

val run :
  ?boundary:bool ->
  ?weight:(string -> float) ->
  ?spans:Wario_obs.Span.t ->
  Wario_machine.Isa.mprog ->
  stats
(** Mutates the program in place.  [candidates] counts blocks examined,
    [tried]/[elided] the WAR-coalescing attempts and removals kept,
    [boundary_tried]/[boundary_elided] the same for entry/exit brackets
    (both 0 unless [boundary]).  [weight] prices a machine block label
    (the interprocedural block weight) and only orders the boundary
    audit, hottest first; it defaults to a constant, which degrades to
    program order.  A live [spans] recorder gets one
    ["certify.recheck_removal"] span per certifier recheck (pc + verdict
    attributes — the per-removal verdict latency). *)
