(** The WARio compilation pipeline — the paper's contribution, assembled.

    [compile env src] runs MiniC source through the software environment
    [env] (paper §5.1.3): the -O3 substitute, the selected WARio middle-end
    transformations, the PDG checkpoint inserter, and the back end, down to
    a linked TM2 image for the emulator. *)

type environment =
  | Plain  (** uninstrumented C; continuous power only *)
  | Ratchet  (** basic alias analysis + hitting set; naive back end *)
  | R_pdg  (** Ratchet with precise PDG information *)
  | Epilog_opt  (** R-PDG + Epilog Optimizer (basic spill inserter) *)
  | Write_cluster  (** R-PDG + Write Clusterer + HS spill inserter *)
  | Loop_cluster  (** R-PDG + Loop Write Clusterer + HS spill inserter *)
  | Wario  (** complete WARio *)
  | Wario_expander  (** WARio + Expander *)

val environment_name : environment -> string
val all_environments : environment list
val environment_of_name : string -> environment option

type options = {
  unroll_factor : int;  (** the paper's N; default 8 (§5.2.4) *)
  expander_size_limit : int;
  optimize : bool;  (** run the -O3 substitute first (default true) *)
  expander_profile : (string * int) list option;
      (** dynamic call counts: switches the Expander to profile-guided mode *)
  max_region : int option;
      (** bound idempotent regions to ~n estimated cycles (extension, §6) *)
  drop_middle_ckpt : int option;
      (** TEST-ONLY sabotage hook for the fault-injection harness
          (lib/verify): delete the n-th (mod count) middle-end checkpoint
          after insertion, deliberately re-opening the WAR it covered so
          the crash-consistency oracle has a real bug to catch.  Ignored
          for [Plain].  Never set this outside tests. *)
  placement : Wario_transforms.Checkpoint_inserter.placement;
      (** checkpoint placement policy for both the middle-end inserter and
          the back end's stack-spill inserter (default [Cost_guided]).
          [Interprocedural] additionally builds the
          {!Wario_analysis.Callgraph} model, runs cost-coupled expansion
          for every instrumented environment, and prices every block at
          its whole-program frequency. *)
  block_profile : Wario_analysis.Costmodel.profile option;
      (** measured per-block entry counts from a PGO pilot run (see
          {!Pgo}); validated against the current label set and ignored
          (with a warning on stderr) when empty or stale.  Only consulted
          under [Cost_guided] and [Interprocedural]. *)
  elide : bool;
      (** run the certifier-validated checkpoint elision pass ({!Elide})
          after the back end (default false; only under [Cost_guided] and
          [Interprocedural]) *)
  motion : bool;
      (** run the certifier-validated checkpoint motion pass ({!Motion})
          after elision (default false; only under [Interprocedural]) *)
}

val default_options : options

(** What became of [options.block_profile] during placement. *)
type profile_status =
  | No_profile  (** none supplied: static cost model *)
  | Applied of int  (** profile used; [n] current labels matched *)
  | Fell_back of string
      (** profile rejected (empty/stale): static cost model, with a
          warning on stderr carrying this reason *)

type middle_stats = {
  wars_found : int;
  middle_ckpts : int;
  lwc : Wario_transforms.Loop_write_clusterer.stats option;
  wc_moves : int;
  expander : Wario_transforms.Expander.stats option;
  placement_exact : int;
      (** functions whose weighted cover was proven optimal *)
  placement_fallback : int;
      (** functions placed by the weighted-greedy fallback *)
  profile_status : profile_status;
  placements : Wario_transforms.Checkpoint_inserter.placement_info list;
      (** per-checkpoint rationale from the inserter ([--explain]) *)
  func_freqs : (string * float) list;
      (** call-graph invocation frequencies (only under [Interprocedural]) *)
}

type compiled = {
  env : environment;
  ir : Wario_ir.Ir.program;  (** IR after all middle-end transformations *)
  mprog : Wario_machine.Isa.mprog;
  image : Wario_emulator.Image.t;
  middle : middle_stats;
  backend : Wario_backend.Backend.stats;
  elision : Elide.stats option;  (** [Some] when [options.elide] ran *)
  motion : Motion.stats option;  (** [Some] when [options.motion] ran *)
  model_cost : float option;
      (** cost-model estimate of dynamic checkpoint executions per run:
          the placement weight of every checkpoint in the final image,
          summed ([None] under [Greedy]).  Comparable across compiles of
          the same source; expansion trials themselves are judged by a
          measured reference run (see {!compile_ir}). *)
  text_bytes : int;
}

val middle_end :
  ?opts:options ->
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  environment ->
  Wario_ir.Ir.program ->
  middle_stats
(** Run just the middle end (mutates the program).  A live [metrics]
    registry (default {!Wario_obs.Metrics.disabled}) records per-pass wall
    time under [middle.<pass>.ms] plus each pass's headline deltas (WARs
    found, checkpoints inserted, stores postponed/moved, inlines).  A live
    [spans] recorder nests one span per pass under a ["middle"] span, with
    solver-effort counters (WARs, checkpoints, branch-and-bound nodes,
    greedy fallbacks) on the inserter span.  Note that under
    [Interprocedural] the middle end alone never expands: cost-coupled
    expansion is driven by trial compilation in {!compile_ir}. *)

val stage_names : string list
(** The five cacheable pipeline stages, in order:
    ["front"; "wir"; "place"; "mach"; "image"]. *)

val stage_keys :
  ?opts:options -> environment -> string -> (string * Cache.Key.t) list
(** Canonical cache keys of each pipeline stage for one
    (source, environment, options) compile, in {!stage_names} order.
    Each stage's key covers its parent stage's key plus exactly the
    option fields that stage consumes, so two compiles share a prefix of
    keys exactly when the corresponding stage artifacts are reusable:
    flipping [placement] or [block_profile] changes keys from ["place"]
    down (the cached transformed WIR is reused), and flipping [elide] or
    [motion] changes only ["image"] (the cached machine program is
    re-linked).  Under [Interprocedural] with a non-[Plain] environment,
    trial expansion compiles and runs whole programs before placement,
    so the ["wir"] key conservatively absorbs every option (and the
    sampled [WARIO_SAVE_ALL] flag) those trials consume. *)

val image_key : ?opts:options -> environment -> string -> Cache.Key.t
(** [stage_keys]' final ("image") key: a canonical fingerprint of the
    complete compile — every option field and the environment reach it
    through the key chain.  Used by the verify corpus as its program
    fingerprint. *)

val compile :
  ?opts:options ->
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  ?cache:Cache.t ->
  environment ->
  string ->
  compiled
(** Compile MiniC source text.  [metrics] additionally captures front-end,
    IR-verify, back-end per-pass and link timings/sizes.  [spans] wraps the
    whole compile in a ["pipeline.compile"] span with per-stage children
    (frontend → middle passes → backend → elide/motion → link), including
    per-recheck certifier spans inside elide/motion.

    [cache] (default: the ambient {!Cache.from_env}, i.e. enabled exactly
    when [WARIO_CACHE_DIR] is set) routes the compile through the keyed
    stage ladder of {!compile_with_report}; with a disabled cache this is
    the classic single-pass pipeline.
    @raise Wario_minic.Minic.Error on front-end errors *)

val compile_with_report :
  ?opts:options ->
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  cache:Cache.t ->
  environment ->
  string ->
  compiled * (string * bool) list
(** Cache-aware compile, additionally reporting per-stage cache outcomes
    as [(stage, hit)] pairs in probe order (deepest reusable stage
    first; stages that never needed probing are absent).  With a
    disabled [cache] the report is empty and the compile is uncached.
    The resulting [compiled] is byte-identical (up to [Marshal]) to an
    uncached compile of the same inputs — enforced by the test suite and
    re-asserted in-process by the cache bench before any number is
    written. *)

val compile_ir :
  ?opts:options ->
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  environment ->
  Wario_ir.Ir.program ->
  compiled
(** Compile an already-lowered IR program (mutates it). *)

val certify : compiled -> Wario_certify.Certify.verdict
(** Statically certify the linked image WAR-free (translation validation
    of the whole pipeline; see lib/certify). *)

val certify_report : compiled -> Wario_certify.Certify.verdict -> string
