(* The typed compilation cache: stage keys + marshalled artifacts over
   the content-addressed blob store (Wario_support.Store).

   Keys are canonical: a stage key is built from an explicit, ordered
   list of (field, value) pairs — the stage name, a format version, the
   parent stage's key, and exactly the option fields that stage consumes
   (Pipeline owns the per-stage field lists).  Two FNV-1a 64-bit passes
   over the canonical string (plain, and domain-separated) give a
   128-bit hex key; the format version is baked into every key so a
   layout change simply misses against old entries instead of
   misreading them.

   Payloads are [Marshal]ed OCaml values.  That is safe here because
   (a) every stage's artifacts are plain data — IR programs, machine
   programs, images, stats records; no closures — and (b) a key
   collision across payload types would require two different canonical
   strings to collide in 128 bits.  Marshalling is compiler-version
   specific, so the OCaml version string participates in the format
   version: a toolchain bump invalidates the cache wholesale rather
   than risking a misparse. *)

module U = Wario_support.Util
module Store = Wario_support.Store
module M = Wario_obs.Metrics
module S = Wario_obs.Span

(* Bump on any change to stage payloads or key derivation. *)
let format_version = "1:" ^ Sys.ocaml_version

module Key = struct
  type t = string

  let of_parts (parts : (string * string) list) : t =
    let buf = Buffer.create 256 in
    Buffer.add_string buf format_version;
    List.iter
      (fun (field, value) ->
        Buffer.add_char buf '\x00';
        Buffer.add_string buf field;
        Buffer.add_char buf '\x01';
        Buffer.add_string buf value)
      parts;
    let canon = Buffer.contents buf in
    Printf.sprintf "%016Lx%016Lx" (U.fnv1a64 canon)
      (U.fnv1a64 (canon ^ "\x02wario-key"))

  let to_hex (k : t) : string = k
end

type t = { store : Store.t option }

let disabled = { store = None }
let enabled t = t.store <> None

let create ?max_bytes (dir : string) : t =
  { store = Some (Store.open_store ?max_bytes dir) }

(* WARIO_CACHE_DIR turns the ambient cache on for every Pipeline.compile
   that does not pass an explicit cache; WARIO_CACHE_MAX_MB bounds it.
   Opened once per (dir, max_mb) value so repeated ambient lookups share
   one handle (and one set of counters) per process. *)
let ambient_handles : (string * int, t) Hashtbl.t = Hashtbl.create 4
let ambient_mutex = Mutex.create ()

let from_env () : t =
  match Sys.getenv_opt "WARIO_CACHE_DIR" with
  | None | Some "" -> disabled
  | Some dir ->
      let max_mb =
        match
          Option.bind (Sys.getenv_opt "WARIO_CACHE_MAX_MB") int_of_string_opt
        with
        | Some mb when mb > 0 -> mb
        | _ -> Store.default_max_bytes / (1024 * 1024)
      in
      Mutex.protect ambient_mutex (fun () ->
          match Hashtbl.find_opt ambient_handles (dir, max_mb) with
          | Some t -> t
          | None ->
              let t = create ~max_bytes:(max_mb * 1024 * 1024) dir in
              Hashtbl.replace ambient_handles (dir, max_mb) t;
              t)

type counters = Store.counters = {
  hits : int;
  misses : int;
  evictions : int;
  puts : int;
}

let counters t =
  match t.store with
  | None -> { hits = 0; misses = 0; evictions = 0; puts = 0 }
  | Some s -> Store.counters s

(* [get]/[put] never raise: a failing cache degrades to recompilation.
   [get] additionally guards the unmarshal — a truncated or
   foreign-format payload surfaces as a miss, and the offending entry
   has already been deleted by the store's self-check or will simply be
   overwritten by the fresh put. *)

let get (t : t) (key : Key.t) : 'a option =
  match t.store with
  | None -> None
  | Some s -> (
      match Store.find s key with
      | None -> None
      | Some payload -> (
          try Some (Marshal.from_string payload 0)
          with Failure _ | Invalid_argument _ -> None))

let put (t : t) ?(stage = "") (key : Key.t) (v : 'a) : unit =
  match t.store with
  | None -> ()
  | Some s -> Store.put s ~meta:stage key (Marshal.to_string v [])

let mem (t : t) (key : Key.t) : bool =
  match t.store with None -> false | Some s -> Store.mem s key

(* Cache observability: per-stage hit/miss counters into the metrics
   registry and the enclosing span, so `iclang stats` and span traces
   can report hit rates per pipeline stage. *)
let note ?(metrics = M.disabled) ?(spans = S.disabled) ~stage hit =
  let outcome = if hit then "hit" else "miss" in
  M.incr metrics (Printf.sprintf "cache.%s.%s" stage outcome);
  S.add_counter spans (Printf.sprintf "cache_%s_%s" stage outcome)
