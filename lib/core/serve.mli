(** The [iclang serve] batch protocol: JSONL compile jobs in, JSONL
    results out (README "Compile service").

    A job line is one JSON object:
    {v
    {"id":"j1","benchmark":"crc","env":"wario","placement":"cost-guided",
     "elide":true}
    {"id":"j2","source":"int main() { return 0; }","env":"ratchet"}
    v}
    Fields: [id] (echoed; defaults to [job-<line index>]), exactly one of
    [benchmark]/[source], and optionally [env], [unroll], [optimize],
    [placement] ([greedy|cost-guided|interprocedural]), [elide], [motion],
    [max_region], [expander_size_limit] — all defaulting to
    {!Pipeline.default_options}.  Unknown fields are errors.

    This module is the pure protocol half — parsing, canonicalization to
    {!Pipeline.stage_keys} image keys, batch deduplication, result
    formatting.  Stream handling and the {!Wario_exec} fan-out live in
    the driver. *)

type job = {
  j_id : string;  (** echoed in the result line *)
  j_program : string;  (** benchmark name, or ["<inline>"] for sources *)
  j_source : string;
  j_env : Pipeline.environment;
  j_opts : Pipeline.options;
}

val job_of_json :
  lookup:(string -> string option) ->
  index:int ->
  Wario_support.Json.t ->
  (job, string) result
(** [lookup] resolves a benchmark name to its source (the driver injects
    the workload corpus); [index] numbers the job for the default id. *)

val job_of_line :
  lookup:(string -> string option) ->
  index:int ->
  string ->
  (job, string) result

val key_of_job : job -> Cache.Key.t
(** The job's canonical identity: {!Pipeline.image_key} of its
    (source, environment, options) triple. *)

type plan = {
  p_keys : Cache.Key.t array;  (** image key of each job, input order *)
  p_canonical : int array;
      (** for each job, the index of the first job with the same key
          (itself when the job is the first) *)
  p_distinct : int list;  (** indices owning distinct keys, input order *)
}

val plan : job list -> plan
(** Dedupe a batch by image key: only [p_distinct] jobs need compiling;
    every other job aliases its [p_canonical] entry's result. *)

val error_line : id:string -> string -> string
(** [{"id":...,"ok":false,"error":...}] for a line that did not parse. *)

val result_line :
  ?stats_only:bool ->
  job:job ->
  key:Cache.Key.t ->
  dedup_of:string option ->
  stages:(string * bool) list ->
  wall_ms:float ->
  Pipeline.compiled ->
  string
(** One result line: the echoed id, program/env/placement, the image key,
    [dedup_of] (the canonical job's id when this one was deduplicated),
    compile stats (sizes, WARs, checkpoint counts, elision/motion deltas,
    model cost), per-stage cache outcomes and wall time.  [stats_only]
    drops the run-varying fields (stages, wall time) so two serve runs
    over the same batch — cached or not — are byte-identical. *)
