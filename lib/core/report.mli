(** Plain-text tables for the benchmark harness, plus paper Table 4. *)

val table : ?title:string -> string list -> string list list -> string
(** Render a header row + data rows with fitted columns. *)

val pct : ?digits:int -> float -> string
val ratio : float -> string

val table4 : unit -> string
(** Paper Table 4: WARio against related intermittent-execution systems. *)

(** Five-number summary of idempotent region sizes (paper Figure 7). *)
type region_summary = {
  rs_p25 : int;
  rs_median : int;
  rs_p75 : int;
  rs_mean : float;
  rs_max : int;
  rs_count : int;
}

val summarize_regions : int list -> region_summary

(** {1 Observability rendering (lib/obs)} *)

val waste_table : Wario_emulator.Emulator.waste -> string
(** One-row table decomposing total cycles into useful / boot / restore /
    re-executed, with percentages. *)

val profile_table : ?top:int -> Wario_obs.Profile.t -> string
(** Per-function profile (self cycles, commit counts/cycles, irqs), top
    [top] rows by self cycles (0 = all, the default). *)

val regions_table : ?top:int -> Wario_obs.Profile.t -> string
(** The [top] (default 10) longest idempotent regions of a trace. *)

(** {1 Verify-campaign coverage rendering (lib/verify)}

    Scalar row type so the core library stays independent of
    [wario_verify]; the campaign engine flattens its case reports into
    these rows. *)

type campaign_row = {
  cr_workload : string;
  cr_env : string;
  cr_schedules : int;  (** schedules exercised *)
  cr_probes : int;  (** adversary bisection probes *)
  cr_boundaries : int;  (** commit boundaries of the reference run *)
  cr_boundaries_cut : int;  (** boundaries with a first cut within ±1 *)
  cr_regions : int;
  cr_regions_cut : int;  (** regions with an interior first cut *)
  cr_boot_cut : bool;  (** some schedule cut inside the boot window *)
  cr_worst_reexec : int;  (** worst re-executed waste the adversary provoked *)
  cr_failures : int;  (** failing schedules (all, not just distinct) *)
}

val campaign_table : campaign_row list -> string
