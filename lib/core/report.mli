(** Plain-text tables for the benchmark harness, plus paper Table 4. *)

val table : ?title:string -> string list -> string list list -> string
(** Render a header row + data rows with fitted columns. *)

val pct : ?digits:int -> float -> string
val ratio : float -> string

val table4 : unit -> string
(** Paper Table 4: WARio against related intermittent-execution systems. *)

(** Five-number summary of idempotent region sizes (paper Figure 7). *)
type region_summary = {
  rs_p25 : int;
  rs_median : int;
  rs_p75 : int;
  rs_mean : float;
  rs_max : int;
  rs_count : int;
}

val summarize_regions : int list -> region_summary

(** {1 Observability rendering (lib/obs)} *)

val waste_table : Wario_emulator.Emulator.waste -> string
(** One-row table decomposing total cycles into useful / boot / restore /
    re-executed, with percentages. *)

val profile_table : ?top:int -> Wario_obs.Profile.t -> string
(** Per-function profile (self cycles, commit counts/cycles, irqs), top
    [top] rows by self cycles (0 = all, the default). *)

val regions_table : ?top:int -> Wario_obs.Profile.t -> string
(** The [top] (default 10) longest idempotent regions of a trace. *)
