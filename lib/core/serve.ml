(* The `iclang serve` batch protocol: (program, options) compile jobs in,
   per-job results out, both as JSONL.

   This module is the pure half of the server — parsing job lines,
   canonicalizing them to pipeline stage keys, deduplicating a batch, and
   formatting result lines.  The orchestration half (reading streams,
   fanning distinct jobs over an Exec pool, threading the cache) lives in
   bin/iclang.ml, because lib/core does not depend on wario_exec or the
   workload corpus: the benchmark table reaches [job_of_line] as an
   injected [lookup] function.

   Determinism contract: results are emitted in input order, one line per
   input line, and with [stats_only] the bytes of a result line depend
   only on the job itself (no wall times, no cache outcomes) — CI
   byte-compares a cached serve run against an uncached one. *)

module J = Wario_support.Json

type job = {
  j_id : string;  (** echoed in the result line *)
  j_program : string;  (** benchmark name, or ["<inline>"] for sources *)
  j_source : string;
  j_env : Pipeline.environment;
  j_opts : Pipeline.options;
}

let placement_of_name = function
  | "greedy" -> Some Wario_transforms.Checkpoint_inserter.Greedy
  | "cost-guided" -> Some Wario_transforms.Checkpoint_inserter.Cost_guided
  | "interprocedural" ->
      Some Wario_transforms.Checkpoint_inserter.Interprocedural
  | _ -> None

let placement_name = function
  | Wario_transforms.Checkpoint_inserter.Greedy -> "greedy"
  | Wario_transforms.Checkpoint_inserter.Cost_guided -> "cost-guided"
  | Wario_transforms.Checkpoint_inserter.Interprocedural -> "interprocedural"

(* Known job fields.  Unknown keys are errors, not ignored: a typo'd
   option silently compiling with defaults would defeat the point of a
   batch front end. *)
let known_fields =
  [
    "id";
    "benchmark";
    "source";
    "env";
    "unroll";
    "optimize";
    "placement";
    "elide";
    "motion";
    "max_region";
    "expander_size_limit";
  ]

let job_of_json ~(lookup : string -> string option) ~(index : int) (j : J.t)
    : (job, string) result =
  match J.obj_fields j with
  | None -> Error "job must be a JSON object"
  | Some fields -> (
      let unknown =
        List.filter (fun (k, _) -> not (List.mem k known_fields)) fields
      in
      match unknown with
      | (k, _) :: _ -> Error (Printf.sprintf "unknown job field %S" k)
      | [] -> (
          let str k = Option.bind (J.member k j) J.to_string in
          let num k = Option.bind (J.member k j) J.to_int in
          let bool_f k default =
            match J.member k j with
            | None -> Ok default
            | Some v -> (
                match J.to_bool v with
                | Some b -> Ok b
                | None -> Error (Printf.sprintf "field %S must be a boolean" k))
          in
          let id =
            match str "id" with
            | Some s -> s
            | None -> Printf.sprintf "job-%d" index
          in
          let source =
            match (str "benchmark", str "source") with
            | Some b, None -> (
                match lookup b with
                | Some src -> Ok (b, src)
                | None -> Error (Printf.sprintf "unknown benchmark %S" b))
            | None, Some src -> Ok ("<inline>", src)
            | Some _, Some _ -> Error "give either benchmark or source, not both"
            | None, None -> Error "job needs a benchmark or a source"
          in
          let env =
            match str "env" with
            | None -> Ok Pipeline.Wario
            | Some name -> (
                match Pipeline.environment_of_name name with
                | Some e -> Ok e
                | None -> Error (Printf.sprintf "unknown environment %S" name))
          in
          let placement =
            match str "placement" with
            | None -> Ok Pipeline.default_options.Pipeline.placement
            | Some name -> (
                match placement_of_name name with
                | Some p -> Ok p
                | None ->
                    Error
                      (Printf.sprintf
                         "unknown placement %S (greedy|cost-guided|interprocedural)"
                         name))
          in
          match (source, env, placement) with
          | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
          | Ok (program, source), Ok env, Ok placement -> (
              let ( let* ) = Result.bind in
              let* optimize = bool_f "optimize" true in
              let* elide = bool_f "elide" false in
              let* motion = bool_f "motion" false in
              let d = Pipeline.default_options in
              let opts =
                {
                  d with
                  Pipeline.unroll_factor =
                    Option.value (num "unroll") ~default:d.Pipeline.unroll_factor;
                  optimize;
                  placement;
                  elide;
                  motion;
                  max_region = num "max_region";
                  expander_size_limit =
                    Option.value
                      (num "expander_size_limit")
                      ~default:d.Pipeline.expander_size_limit;
                }
              in
              match opts.Pipeline.unroll_factor with
              | n when n < 1 -> Error "unroll must be >= 1"
              | _ -> Ok { j_id = id; j_program = program; j_source = source;
                          j_env = env; j_opts = opts })))

let job_of_line ~lookup ~index (line : string) : (job, string) result =
  match J.parse (String.trim line) with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> job_of_json ~lookup ~index j

let key_of_job (job : job) : Cache.Key.t =
  Pipeline.image_key ~opts:job.j_opts job.j_env job.j_source

(* ------------------------------------------------------------------ *)
(* Batch planning: dedupe by image key                                  *)
(* ------------------------------------------------------------------ *)

type plan = {
  p_keys : Cache.Key.t array;  (** image key of each job, input order *)
  p_canonical : int array;
      (** for each job, the index of the first job with the same key
          (itself when the job is the first) *)
  p_distinct : int list;  (** indices owning distinct keys, input order *)
}

let plan (jobs : job list) : plan =
  let jobs = Array.of_list jobs in
  let keys = Array.map key_of_job jobs in
  let first : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let canonical =
    Array.mapi
      (fun i k ->
        match Hashtbl.find_opt first k with
        | Some j -> j
        | None ->
            Hashtbl.add first k i;
            i)
      keys
  in
  let distinct =
    Array.to_list (Array.mapi (fun i c -> (i, c)) canonical)
    |> List.filter_map (fun (i, c) -> if i = c then Some i else None)
  in
  { p_keys = keys; p_canonical = canonical; p_distinct = distinct }

(* ------------------------------------------------------------------ *)
(* Result lines                                                         *)
(* ------------------------------------------------------------------ *)

let fmt_float f =
  (* shortest round-trip representation, no locale surprises *)
  Printf.sprintf "%.17g" f |> fun s ->
  match float_of_string_opt (Printf.sprintf "%.12g" f) with
  | Some g when g = f -> Printf.sprintf "%.12g" f
  | _ -> s

let error_line ~(id : string) (msg : string) : string =
  Printf.sprintf {|{"id":"%s","ok":false,"error":"%s"}|} (J.escape id)
    (J.escape msg)

(** One result line.  Deterministic field order; [stats_only] drops the
    fields that legitimately vary between runs or cache states (wall
    time, per-stage cache outcomes) so two serve runs over the same batch
    — cached or not — produce byte-identical output. *)
let result_line ?(stats_only = false) ~(job : job) ~(key : Cache.Key.t)
    ~(dedup_of : string option) ~(stages : (string * bool) list)
    ~(wall_ms : float) (c : Pipeline.compiled) : string =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add {|{"id":"%s","ok":true,"program":"%s","env":"%s"|} (J.escape job.j_id)
    (J.escape job.j_program)
    (Pipeline.environment_name job.j_env);
  add {|,"placement":"%s"|} (placement_name job.j_opts.Pipeline.placement);
  add {|,"key":"%s"|} (Cache.Key.to_hex key);
  (match dedup_of with
  | Some id -> add {|,"dedup_of":"%s"|} (J.escape id)
  | None -> ());
  add {|,"text_bytes":%d|} c.Pipeline.text_bytes;
  add {|,"data_bytes":%d|} c.Pipeline.image.Wario_emulator.Image.data_bytes;
  add {|,"wars":%d|} c.Pipeline.middle.Pipeline.wars_found;
  add {|,"middle_ckpts":%d|} c.Pipeline.middle.Pipeline.middle_ckpts;
  add {|,"spill_ckpts":%d|} c.Pipeline.backend.Wario_backend.Backend.spill_ckpts;
  (match c.Pipeline.elision with
  | Some e -> add {|,"elided":%d|} e.Elide.elided
  | None -> ());
  (match c.Pipeline.motion with
  | Some m -> add {|,"motion_applied":%d|} m.Motion.applied
  | None -> ());
  (match c.Pipeline.model_cost with
  | Some f -> add {|,"model_cost":%s|} (fmt_float f)
  | None -> ());
  if not stats_only then begin
    add {|,"stages":{|};
    List.iteri
      (fun i (stage, hit) ->
        add {|%s"%s":"%s"|}
          (if i = 0 then "" else ",")
          stage
          (if hit then "hit" else "miss"))
      stages;
    add "}";
    add {|,"wall_ms":%s|} (fmt_float wall_ms)
  end;
  add "}";
  Buffer.contents b
