(* Run-artifact trend reporting and regression gating: the analysis behind
   `iclang stats`.  See stats.mli for the model.

   The parsers are deliberately permissive about fields they do not use
   (BENCH_6 carries motion/inlining detail BENCH_5 lacks; both load here)
   and strict about the ones they do: a malformed dyn_ckpts is an error,
   not a silent zero — a gate that reads garbage as 0 would wave through
   exactly the regressions it exists to catch. *)

module J = Wario_support.Json
module S = Wario_obs.Span

(* ------------------------------------------------------------------ *)
(* BENCH generations                                                    *)
(* ------------------------------------------------------------------ *)

type point = {
  pt_program : string;
  pt_class : string;
  pt_selected : string;
  pt_dyn_ckpts : int;
  pt_cycles : int;
}

type tpoint = {
  tp_program : string;
  tp_ref_ips : float;
  tp_uop_ips : float;
  tp_block_ips : float;
}

type cache_point = {
  cp_cold_s : float;
  cp_warm_s : float;
  cp_speedup : float;
  cp_hits : int;
  cp_misses : int;
  cp_evictions : int;
}

type generation = {
  g_label : string;
  g_kind : string;
  g_small : bool;
  g_points : point list;
  g_emulator_ips : float option;
  g_throughput : tpoint list;
  g_cache : cache_point option;
}

let generation_of_json ~label (doc : J.t) : (generation, string) result =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad (label ^ ": " ^ m))) fmt in
  try
    let kind =
      match Option.bind (J.member "bench" doc) J.to_string with
      | Some k -> k
      | None -> fail "missing \"bench\" field"
    in
    let small =
      Option.value ~default:false
        (Option.bind (J.member "small" doc) J.to_bool)
    in
    let ips =
      Option.bind (J.member "emulator" doc) (fun e ->
          Option.bind (J.member "fast_instr_per_s" e) J.to_float)
    in
    (* emu artefacts (BENCH_7) carry per-engine throughput, not placement
       variants: their "programs" array has no "selected"/"variants" *)
    let throughput =
      if kind <> "emu" then []
      else
        match Option.bind (J.member "programs" doc) J.to_list with
        | None -> fail "emu artefact missing \"programs\" array"
        | Some progs ->
            List.map
              (fun p ->
                let name =
                  match Option.bind (J.member "name" p) J.to_string with
                  | Some s -> s
                  | None -> fail "emu program missing \"name\""
                in
                let eng field =
                  match
                    Option.bind (J.member "continuous" p) (fun c ->
                        Option.bind (J.member field c) J.to_float)
                  with
                  | Some f -> f
                  | None -> fail "emu program %S: continuous missing %S" name field
                in
                {
                  tp_program = name;
                  tp_ref_ips = eng "reference_instr_per_s";
                  tp_uop_ips = eng "uop_instr_per_s";
                  tp_block_ips = eng "block_instr_per_s";
                })
              progs
    in
    (* cache artefacts (BENCH_8) carry one cold/warm compile summary,
       no per-program placement points *)
    let cache_pt =
      if kind <> "cache" then None
      else
        match J.member "cache" doc with
        | None -> fail "cache artefact missing \"cache\" object"
        | Some c ->
            let flt field =
              match Option.bind (J.member field c) J.to_float with
              | Some f -> f
              | None -> fail "cache summary missing %S" field
            in
            let int0 field =
              Option.value ~default:0 (Option.bind (J.member field c) J.to_int)
            in
            Some
              {
                cp_cold_s = flt "cold_s";
                cp_warm_s = flt "warm_s";
                cp_speedup = flt "speedup";
                cp_hits = int0 "hits";
                cp_misses = int0 "misses";
                cp_evictions = int0 "evictions";
              }
    in
    let points =
      match
        (if kind = "emu" || kind = "cache" then None
         else J.member "programs" doc)
      with
      | None -> []
      | Some progs ->
          let progs =
            match J.to_list progs with
            | Some l -> l
            | None -> fail "\"programs\" is not an array"
          in
          List.map
            (fun p ->
              let str name =
                match Option.bind (J.member name p) J.to_string with
                | Some s -> s
                | None -> fail "program missing %S" name
              in
              let name = str "name" in
              let selected = str "selected" in
              let cls =
                Option.value ~default:""
                  (Option.bind (J.member "class" p) J.to_string)
              in
              let variant =
                match
                  Option.bind (J.member "variants" p) (J.member selected)
                with
                | Some v -> v
                | None ->
                    fail "program %S: selected variant %S not in \"variants\""
                      name selected
              in
              let int_of field =
                match Option.bind (J.member field variant) J.to_int with
                | Some n -> n
                | None -> fail "program %S: variant missing %S" name field
              in
              {
                pt_program = name;
                pt_class = cls;
                pt_selected = selected;
                pt_dyn_ckpts = int_of "dyn_ckpts";
                pt_cycles = int_of "cycles";
              })
            progs
    in
    Ok
      {
        g_label = label;
        g_kind = kind;
        g_small = small;
        g_points = points;
        g_emulator_ips = ips;
        g_throughput = throughput;
        g_cache = cache_pt;
      }
  with Bad msg -> Error msg

let load_generation ~label (text : string) : (generation, string) result =
  match J.parse text with
  | Error e -> Error (label ^ ": " ^ e)
  | Ok doc -> generation_of_json ~label doc

(* ------------------------------------------------------------------ *)
(* Trend across generations                                             *)
(* ------------------------------------------------------------------ *)

type trend_row = {
  tr_program : string;
  tr_cells : (string * int * int) option list;
  tr_dyn_delta_pct : float option;
  tr_cycles_delta_pct : float option;
}

(* Only generations that carry programs participate in the trend; a perf
   generation in the middle of the list would otherwise show as a column
   of misses for every program. *)
let placement_gens gens = List.filter (fun g -> g.g_points <> []) gens

let delta_pct a b =
  (* zero baseline: a percentage would be a division by zero *)
  if a = 0 then None
  else Some (100. *. float_of_int (b - a) /. float_of_int a)

let trend (gens : generation list) : trend_row list =
  let gens = placement_gens gens in
  let order = ref [] and seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem seen p.pt_program) then begin
            Hashtbl.add seen p.pt_program ();
            order := p.pt_program :: !order
          end)
        g.g_points)
    gens;
  List.rev_map
    (fun name ->
      let cells =
        List.map
          (fun g ->
            List.find_opt (fun p -> p.pt_program = name) g.g_points
            |> Option.map (fun p ->
                   (p.pt_selected, p.pt_dyn_ckpts, p.pt_cycles)))
          gens
      in
      let present = List.filter_map Fun.id cells in
      let dyn_delta, cyc_delta =
        match present with
        | (_, d0, c0) :: _ :: _ ->
            let _, dn, cn = List.nth present (List.length present - 1) in
            (delta_pct d0 dn, delta_pct c0 cn)
        | _ -> (None, None)
      in
      {
        tr_program = name;
        tr_cells = cells;
        tr_dyn_delta_pct = dyn_delta;
        tr_cycles_delta_pct = cyc_delta;
      })
    !order

let fmt_delta = function
  | None -> "-"
  | Some d -> Printf.sprintf "%+.1f%%" d

(* Throughput generations: emu artefacts only, in input order. *)
let throughput_gens gens = List.filter (fun g -> g.g_throughput <> []) gens

type throughput_row = {
  th_program : string;
  th_cells : tpoint option list;  (** aligned with the emu generations *)
  th_block_delta_pct : float option;
      (** block engine instr/s, oldest -> newest appearance *)
}

let throughput_trend (gens : generation list) : throughput_row list =
  let gens = throughput_gens gens in
  let order = ref [] and seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      List.iter
        (fun t ->
          if not (Hashtbl.mem seen t.tp_program) then begin
            Hashtbl.add seen t.tp_program ();
            order := t.tp_program :: !order
          end)
        g.g_throughput)
    gens;
  List.rev_map
    (fun name ->
      let cells =
        List.map
          (fun g ->
            List.find_opt (fun t -> t.tp_program = name) g.g_throughput)
          gens
      in
      let present = List.filter_map Fun.id cells in
      let delta =
        match present with
        | first :: _ :: _ ->
            let last = List.nth present (List.length present - 1) in
            if first.tp_block_ips <= 0. then None
            else
              Some
                (100.
                *. (last.tp_block_ips -. first.tp_block_ips)
                /. first.tp_block_ips)
        | _ -> None
      in
      { th_program = name; th_cells = cells; th_block_delta_pct = delta })
    !order

let render_trend (gens : generation list) : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun g ->
      match g.g_emulator_ips with
      | Some ips ->
          Buffer.add_string b
            (Printf.sprintf "%s (%s%s): emulator fast path %.2fM instr/s\n"
               g.g_label g.g_kind
               (if g.g_small then ", small" else "")
               (ips /. 1e6))
      | None -> ())
    gens;
  List.iter
    (fun g ->
      match g.g_cache with
      | Some c ->
          Buffer.add_string b
            (Printf.sprintf
               "%s (cache%s): cold %.2fs -> warm %.2fs (%.1fx); %d hit(s), \
                %d miss(es), %d eviction(s)\n"
               g.g_label
               (if g.g_small then ", small" else "")
               c.cp_cold_s c.cp_warm_s c.cp_speedup c.cp_hits c.cp_misses
               c.cp_evictions)
      | None -> ())
    gens;
  let tgens = throughput_gens gens in
  (match throughput_trend gens with
  | [] -> ()
  | rows ->
      let header =
        ("program" :: List.map (fun g -> g.g_label ^ " M/s") tgens)
        @ [ "d-block" ]
      in
      let table_rows =
        List.map
          (fun r ->
            (r.th_program
            :: List.map
                 (function
                   | None -> "-"
                   | Some t ->
                       Printf.sprintf "%.0f/%.0f/%.0f" (t.tp_ref_ips /. 1e6)
                         (t.tp_uop_ips /. 1e6)
                         (t.tp_block_ips /. 1e6))
                 r.th_cells)
            @ [ fmt_delta r.th_block_delta_pct ])
          rows
      in
      Buffer.add_string b
        (Report.table
           ~title:
             "emulator throughput (reference/uop/block M instr/s, \
              continuous power) across emu generations (delta: block \
              engine, oldest -> newest)"
           header table_rows);
      Buffer.add_char b '\n');
  let pgens = placement_gens gens in
  (match trend gens with
  | [] ->
      Buffer.add_string b
        "no placement generations loaded — nothing to trend\n"
  | rows ->
      let header =
        ("program" :: List.map (fun g -> g.g_label ^ " dyn/cyc") pgens)
        @ [ "d-dyn"; "d-cyc" ]
      in
      let table_rows =
        List.map
          (fun r ->
            (r.tr_program
            :: List.map
                 (function
                   | None -> "-"
                   | Some (_, d, c) -> Printf.sprintf "%d/%d" d c)
                 r.tr_cells)
            @ [ fmt_delta r.tr_dyn_delta_pct; fmt_delta r.tr_cycles_delta_pct ])
          rows
      in
      Buffer.add_string b
        (Report.table
           ~title:
             "selected-variant dyn ckpts / cycles across BENCH generations \
              (delta: oldest -> newest)"
           header table_rows);
      if List.length pgens < 2 then
        Buffer.add_string b
          "(single generation: deltas need at least two)\n");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Span statistics                                                      *)
(* ------------------------------------------------------------------ *)

type span_row = {
  sr_path : string;
  sr_dur_ms : float;
  sr_self_ms : float;
  sr_track : int;
}

let top_spans ?(k = 10) (spans : S.span list) : span_row list =
  let rows = ref [] in
  let rec walk path (sp : S.span) =
    let path = path ^ "/" ^ sp.S.sp_name in
    (* self time: what this span spent outside its own-track children
       (other-track children ran concurrently and overlap the parent) *)
    let child_ms =
      List.fold_left
        (fun a (c : S.span) ->
          if c.S.sp_track = sp.S.sp_track then a +. c.S.sp_dur else a)
        0. sp.S.sp_children
    in
    rows :=
      {
        sr_path = path;
        sr_dur_ms = sp.S.sp_dur;
        sr_self_ms = Float.max 0. (sp.S.sp_dur -. child_ms);
        sr_track = sp.S.sp_track;
      }
      :: !rows;
    List.iter (walk path) sp.S.sp_children
  in
  List.iter (walk "") spans;
  let sorted =
    List.sort
      (fun a b ->
        match compare b.sr_dur_ms a.sr_dur_ms with
        | 0 -> compare a.sr_path b.sr_path
        | c -> c)
      !rows
  in
  Wario_support.Util.take k sorted

type worker_row = {
  wk_pool : string;
  wk_worker : int;
  wk_busy_ms : float;
  wk_idle_ms : float;
  wk_items : int;
}

let worker_utilization (spans : S.span list) : worker_row list =
  let tbl : (string * int, float * float * int) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec walk parent_name (sp : S.span) =
    (if sp.S.sp_name = "worker" then
       let attr_f name =
         match List.assoc_opt name sp.S.sp_attrs with
         | Some (S.Float f) -> f
         | Some (S.Int n) -> float_of_int n
         | _ -> 0.
       in
       let worker =
         match List.assoc_opt "worker" sp.S.sp_attrs with
         | Some (S.Int n) -> n
         | _ -> sp.S.sp_track
       in
       let items =
         Option.value ~default:0 (List.assoc_opt "items" sp.S.sp_counters)
       in
       let key = (parent_name, worker) in
       let busy, idle, n =
         Option.value ~default:(0., 0., 0) (Hashtbl.find_opt tbl key)
       in
       Hashtbl.replace tbl key
         (busy +. attr_f "busy_ms", idle +. attr_f "idle_ms", n + items));
    List.iter (walk sp.S.sp_name) sp.S.sp_children
  in
  List.iter (walk "(root)") spans;
  Hashtbl.fold
    (fun (pool, worker) (busy, idle, items) acc ->
      {
        wk_pool = pool;
        wk_worker = worker;
        wk_busy_ms = busy;
        wk_idle_ms = idle;
        wk_items = items;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match compare a.wk_pool b.wk_pool with
         | 0 -> compare a.wk_worker b.wk_worker
         | c -> c)

let render_spans ?(k = 10) (spans : S.span list) : string =
  if spans = [] then "no spans loaded\n"
  else begin
    let b = Buffer.create 1024 in
    let rows =
      List.map
        (fun r ->
          [
            r.sr_path;
            Printf.sprintf "%.3f" r.sr_dur_ms;
            Printf.sprintf "%.3f" r.sr_self_ms;
            string_of_int r.sr_track;
          ])
        (top_spans ~k spans)
    in
    Buffer.add_string b
      (Report.table
         ~title:(Printf.sprintf "top %d spans by duration" k)
         [ "span"; "total ms"; "self ms"; "track" ]
         rows);
    (match worker_utilization spans with
    | [] -> ()
    | workers ->
        let rows =
          List.map
            (fun w ->
              let window = w.wk_busy_ms +. w.wk_idle_ms in
              let pct =
                (* an empty window is 0% busy, not 0/0 *)
                if window <= 0. then 0. else 100. *. w.wk_busy_ms /. window
              in
              [
                w.wk_pool;
                string_of_int w.wk_worker;
                Printf.sprintf "%.3f" w.wk_busy_ms;
                Printf.sprintf "%.3f" w.wk_idle_ms;
                Printf.sprintf "%.1f%%" pct;
                string_of_int w.wk_items;
              ])
            workers
        in
        Buffer.add_char b '\n';
        Buffer.add_string b
          (Report.table ~title:"worker utilization (per pool, per domain)"
             [ "pool"; "worker"; "busy ms"; "idle ms"; "busy %"; "items" ]
             rows));
    Buffer.contents b
  end

(* ------------------------------------------------------------------ *)
(* Regression gate                                                      *)
(* ------------------------------------------------------------------ *)

type budget = {
  b_program : string;
  b_max_dyn_ckpts : int option;
  b_max_cycles : int option;
  b_min_instr_per_s : float option;
  b_max_warm_compile_s : float option;
  b_min_cache_speedup : float option;
}

let budgets_of_json (doc : J.t) : (budget list, string) result =
  let exception Bad of string in
  try
    let entries =
      match Option.bind (J.member "budgets" doc) J.to_list with
      | Some l -> l
      | None -> raise (Bad "budget file missing \"budgets\" array")
    in
    Ok
      (List.map
         (fun e ->
           let program =
             match Option.bind (J.member "program" e) J.to_string with
             | Some s -> s
             | None -> raise (Bad "budget entry missing \"program\"")
           in
           let opt_int field = Option.bind (J.member field e) J.to_int in
           {
             b_program = program;
             b_max_dyn_ckpts = opt_int "max_dyn_ckpts";
             b_max_cycles = opt_int "max_cycles";
             b_min_instr_per_s =
               Option.bind (J.member "min_instr_per_s" e) J.to_float;
             b_max_warm_compile_s =
               Option.bind (J.member "max_warm_compile_s" e) J.to_float;
             b_min_cache_speedup =
               Option.bind (J.member "min_cache_speedup" e) J.to_float;
           })
         entries)
  with Bad msg -> Error msg

type breach = {
  br_program : string;
  br_metric : string;
  br_actual : int option;
  br_limit : int;
}

let gate ~(budgets : budget list) (gens : generation list) : breach list =
  (* each program gates against its newest appearance *)
  let newest name =
    List.fold_left
      (fun acc g ->
        match List.find_opt (fun p -> p.pt_program = name) g.g_points with
        | Some p -> Some p
        | None -> acc)
      None gens
  in
  let newest_throughput name =
    List.fold_left
      (fun acc g ->
        match List.find_opt (fun t -> t.tp_program = name) g.g_throughput with
        | Some t -> Some t
        | None -> acc)
      None gens
  in
  (* cache artefacts carry one batch summary, not per-program points: a
     cache budget gates against the newest cache generation, whatever its
     label *)
  let newest_cache =
    List.fold_left
      (fun acc g -> match g.g_cache with Some c -> Some c | None -> acc)
      None gens
  in
  List.concat_map
    (fun b ->
      let placement_breaches =
        (* a placement budget names a program the placement generations
           must carry; a throughput-only budget does not *)
        if b.b_max_dyn_ckpts = None && b.b_max_cycles = None then []
        else
          match newest b.b_program with
          | None ->
              [
                {
                  br_program = b.b_program;
                  br_metric = "missing";
                  br_actual = None;
                  br_limit = 0;
                };
              ]
          | Some p ->
              let check metric actual = function
                | Some limit when actual > limit ->
                    [
                      {
                        br_program = b.b_program;
                        br_metric = metric;
                        br_actual = Some actual;
                        br_limit = limit;
                      };
                    ]
                | _ -> []
              in
              check "dyn_ckpts" p.pt_dyn_ckpts b.b_max_dyn_ckpts
              @ check "cycles" p.pt_cycles b.b_max_cycles
      in
      let throughput_breaches =
        (* inverted comparison: a floor, not a ceiling — the block engine
           falling under it is the regression *)
        match b.b_min_instr_per_s with
        | None -> []
        | Some floor -> (
            match newest_throughput b.b_program with
            | None ->
                [
                  {
                    br_program = b.b_program;
                    br_metric = "instr_per_s missing";
                    br_actual = None;
                    br_limit = int_of_float floor;
                  };
                ]
            | Some t when t.tp_block_ips < floor ->
                [
                  {
                    br_program = b.b_program;
                    br_metric = "instr_per_s";
                    br_actual = Some (int_of_float t.tp_block_ips);
                    br_limit = int_of_float floor;
                  };
                ]
            | Some _ -> [])
      in
      let cache_breaches =
        (* integer-rendered units: warm compile seconds as ms (ceiling),
           speedup as percent (floor) — keeps the breach record integral *)
        if b.b_max_warm_compile_s = None && b.b_min_cache_speedup = None then
          []
        else
          match newest_cache with
          | None ->
              [
                {
                  br_program = b.b_program;
                  br_metric = "cache missing";
                  br_actual = None;
                  br_limit = 0;
                };
              ]
          | Some c ->
              let ceiling =
                match b.b_max_warm_compile_s with
                | Some limit when c.cp_warm_s > limit ->
                    [
                      {
                        br_program = b.b_program;
                        br_metric = "warm_compile_ms";
                        br_actual = Some (int_of_float (c.cp_warm_s *. 1000.));
                        br_limit = int_of_float (limit *. 1000.);
                      };
                    ]
                | _ -> []
              in
              let floor =
                match b.b_min_cache_speedup with
                | Some limit when c.cp_speedup < limit ->
                    [
                      {
                        br_program = b.b_program;
                        br_metric = "cache_speedup_pct";
                        br_actual = Some (int_of_float (c.cp_speedup *. 100.));
                        br_limit = int_of_float (limit *. 100.);
                      };
                    ]
                | _ -> []
              in
              ceiling @ floor
      in
      placement_breaches @ throughput_breaches @ cache_breaches)
    budgets

let render_breaches (breaches : breach list) : string =
  match breaches with
  | [] -> "gate: all budgets respected\n"
  | _ ->
      let rows =
        List.map
          (fun br ->
            [
              br.br_program;
              br.br_metric;
              (match br.br_actual with
              | None -> "absent from every generation"
              | Some a -> string_of_int a);
              (match br.br_metric with
              | "missing" | "cache missing" -> "-"
              | "instr_per_s missing" | "instr_per_s" | "cache_speedup_pct" ->
                  ">= " ^ string_of_int br.br_limit
              | _ -> "<= " ^ string_of_int br.br_limit);
            ])
          breaches
      in
      Report.table
        ~title:
          (Printf.sprintf "gate: %d budget breach(es)" (List.length breaches))
        [ "program"; "metric"; "actual"; "budget" ]
        rows
