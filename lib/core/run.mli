(** Running compiled images under the paper's power cases (§5.1.4). *)

type outcome = {
  result : Wario_emulator.Emulator.result;
  compiled : Pipeline.compiled;
}

val continuous : ?irq_period:int -> ?verify:bool -> Pipeline.compiled -> outcome

val periodic :
  ?irq_period:int -> ?verify:bool -> on_cycles:int -> Pipeline.compiled -> outcome

val with_trace :
  ?irq_period:int -> ?verify:bool -> trace:int array -> Pipeline.compiled -> outcome

val with_schedule :
  ?irq_period:int -> ?verify:bool -> cuts:int array -> Pipeline.compiled -> outcome
(** Adversarial fault injection: cut power after each scheduled on-duration
    (in active cycles from the corresponding power-on), then continuous. *)

val compile_and_run :
  ?opts:Pipeline.options -> Pipeline.environment -> string -> outcome

val check_no_violations : outcome -> unit
(** @raise Failure describing {e every} WAR violation: total count,
    per-function breakdown, and each offending access *)
