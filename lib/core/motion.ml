(* Certifier-validated checkpoint motion.

   Elision (lib/core/elide) deletes a redundant WAR checkpoint when the
   certifier proves the image stays WAR-free without it.  Motion
   generalises the move set: a checkpoint can also RELOCATE to a cheaper
   block — hoisted out of a loop into a predecessor, or sunk into a
   successor — as long as the certifier still discharges every WAR with
   the barrier at its new position.  The cost model chooses where to try
   (strictly-cheaper blocks only, by the same weight table the back end's
   spill placement uses); the certifier decides what is allowed.

   A move decomposes into the two session primitives:

     insert barrier at dst   — recheck_insertion: sound by monotonicity
                               (a new barrier only removes barrier-free
                               paths, and never breaks pop conversion
                               because checkpoints do not write sp);
     remove barrier at src   — recheck_removal: the real proof burden,
                               a scoped re-sweep of the loads that reach
                               src barrier-free.

   Mechanically the pass mirrors Elide's pc-stable substitution trick,
   with one extension: the destination slot must already EXIST in the
   linked image before the session starts (sessions key cached abstract
   states by pc, so pcs cannot shift mid-session).  So the pass first
   plants a nop anchor ([Mov r0, r0] — identity transfer, not a barrier)
   at every candidate destination, relinks, re-certifies the anchored
   image, and only then opens the session; each move flips its anchor
   nop->Ckpt and its source Ckpt->nop in place.  Rejected moves are
   reverted; anchors no kept move uses are taken back out (their removal
   re-certifies trivially — the image was certified without them).

   Two structural guards keep anchors from tripping obligation O1 (an
   sp-increase must be immediately preceded by a checkpoint): no anchor
   is planted where the next layout instruction is an sp-add, and no
   source whose next layout instruction is an sp-add is proposed (its
   removal could never certify).

   After materialising the surviving moves back into the machine blocks,
   every touched function gets its checkpoint masks recomputed
   (Mliveness.set_ckpt_masks): masks are live-register sets at the OLD
   location, the emulator zeroes unmasked registers on restore, and the
   WAR certifier cannot see that class of bug — skipping this step would
   trade a proved WAR for an unproved crash-consistency hazard. *)

module I = Wario_machine.Isa
module C = Wario_certify.Certify
module E = Wario_emulator
module S = Wario_obs.Span

type kind = Hoist | Sink

type move = {
  mv_func : string;
  mv_kind : kind;
  mv_cause : I.ckpt_cause;
  mv_from : string;
  mv_to : string;
  mv_from_pc : int;
  mv_to_pc : int;
  mv_w_from : float;
  mv_w_to : float;
  mv_applied : bool;
  mv_verdict : string;
}

type stats = {
  proposed : int;
  applied : int;
  hoisted : int;
  sunk : int;
  rejected : int;
  moves : move list;
}

let zero =
  { proposed = 0; applied = 0; hoisted = 0; sunk = 0; rejected = 0; moves = [] }

let nop = I.Mov (0, I.R 0)

let is_war_ckpt = function
  | I.Ckpt ((I.Middle_end_war | I.Back_end_war), _) -> true
  | _ -> false

let is_sp_add = function
  | I.Alu (I.ADD, rd, rn, I.I _) -> rd = I.sp && rn = I.sp
  | _ -> false

let verdict_str = function
  | C.Certified _ -> "certified"
  | C.Rejected (reasons, _) -> (
      match reasons with
      | C.War_pair w :: _ ->
          Printf.sprintf "war-pair: load@%d (%s) -> store@%d (%s): %s"
            w.C.w_load_pc w.C.w_load_func w.C.w_store_pc w.C.w_store_func
            w.C.w_reason
      | C.Obligation_failed { ob_name; ob_pc; _ } :: _ ->
          Printf.sprintf "obligation %s%s" ob_name
            (match ob_pc with
            | Some pc -> Printf.sprintf " at pc %d" pc
            | None -> "")
      | [] -> "rejected")

(* A proposed relocation of one WAR checkpoint, resolved to concrete pcs
   only after the anchored relink. *)
type proposal = {
  p_func : string;
  p_kind : kind;
  p_cause : I.ckpt_cause;
  p_mask : int;
  p_src : string;  (* source block label *)
  p_src_idx : int;  (* index in the PRE-anchor mcode *)
  p_dst : string;  (* destination block label *)
  p_w_src : float;
  p_w_dst : float;
}

type anchor = {
  a_label : string;
  a_idx : int;  (* index in the POST-anchor mcode *)
  mutable a_pc : int;  (* pc in the anchored image *)
  mutable a_used : bool;  (* some applied move keeps this barrier *)
}

let run ~(weights : string -> float) ?(spans = S.disabled) (p : I.mprog) :
    stats =
  (* per-recheck verdict latency, same span name as Elide's *)
  let recheck what pc f =
    S.with_span spans
      ~attrs:[ ("op", S.Str what); ("pc", S.Int pc) ]
      "certify.recheck"
    @@ fun () ->
    let v = f () in
    S.set_attr spans "verdict"
      (S.Str (match v with C.Certified _ -> "certified" | C.Rejected _ -> "rejected"));
    v
  in
  let img0 = E.Image.link p in
  match C.certify img0 with
  | C.Rejected _ -> zero
  | C.Certified _ -> (
      let n0 = E.Image.instr_count img0 in
      (* ---- block extents and label-level CFG of the certified image ---- *)
      let starts0 = E.Image.block_starts img0 in
      let extent = Hashtbl.create 64 in
      let rec exts = function
        | (l, s) :: ((_, s') :: _ as rest) ->
            Hashtbl.replace extent l (s, s' - s);
            exts rest
        | [ (l, s) ] -> Hashtbl.replace extent l (s, n0 - s)
        | [] -> ()
      in
      exts starts0;
      let succs_of = Hashtbl.create 64 and preds_of = Hashtbl.create 64 in
      let add tbl k v =
        let cur = try Hashtbl.find tbl k with Not_found -> [] in
        if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)
      in
      Array.iteri
        (fun pc _ ->
          let l = img0.E.Image.label_of_pc.(pc) in
          List.iter
            (fun q ->
              if q >= 0 && q < n0 then begin
                let l' = img0.E.Image.label_of_pc.(q) in
                let entering =
                  match Hashtbl.find_opt extent l' with
                  | Some (s', _) -> l' <> l || q = s'
                  | None -> false
                in
                if entering then begin
                  add succs_of l l';
                  add preds_of l' l
                end
              end)
            (E.Image.succs img0 pc))
        img0.E.Image.code;
      let func_of_label = Hashtbl.create 64 in
      let block_of_label = Hashtbl.create 64 in
      let func_by_name = Hashtbl.create 16 in
      List.iter
        (fun (mf : I.mfunc) ->
          Hashtbl.replace func_by_name mf.I.mname mf;
          List.iter
            (fun (b : I.mblock) ->
              Hashtbl.replace func_of_label b.I.mlabel mf.I.mname;
              Hashtbl.replace block_of_label b.I.mlabel b)
            mf.I.mblocks)
        p.I.mfuncs;
      (* ---- propose: every WAR checkpoint, best strictly-cheaper
         neighbour block in the same function ---- *)
      let dst_ok kind src dst =
        (not (String.equal dst src))
        && Hashtbl.mem extent dst
        && (match
              ( Hashtbl.find_opt func_of_label src,
                Hashtbl.find_opt func_of_label dst )
            with
           | Some a, Some b -> String.equal a b
           | _ -> false)
        && begin
             (* O1 guard: the instruction that will follow the anchor must
                not be an sp-add (a Sink anchor precedes the block's first
                instruction; a Hoist anchor precedes the trailing branch
                run, or the next block's head when the block falls
                through). *)
             let b = Hashtbl.find block_of_label dst in
             let code = Array.of_list b.I.mcode in
             let len = Array.length code in
             match kind with
             | Sink -> not (len > 0 && is_sp_add code.(0))
             | Hoist ->
                 let rec run_start i =
                   if i > 0 && I.is_branch code.(i - 1) then run_start (i - 1)
                   else i
                 in
                 let idx = run_start len in
                 let s, _ = Hashtbl.find extent dst in
                 let follow_pc = s + idx in
                 not
                   (follow_pc < n0 && is_sp_add img0.E.Image.code.(follow_pc))
           end
      in
      let proposals = ref [] in
      List.iter
        (fun (mf : I.mfunc) ->
          List.iter
            (fun (b : I.mblock) ->
              match Hashtbl.find_opt extent b.I.mlabel with
              | None -> ()
              | Some (s, _) ->
                  List.iteri
                    (fun k ins ->
                      match ins with
                      | I.Ckpt (cause, mask) when is_war_ckpt ins ->
                          let src_pc0 = s + k in
                          (* removal can never certify against O1 *)
                          if
                            not
                              (src_pc0 + 1 < n0
                              && is_sp_add img0.E.Image.code.(src_pc0 + 1))
                          then begin
                            let w_src = weights b.I.mlabel in
                            let neigh kind tbl =
                              List.filter_map
                                (fun d ->
                                  if dst_ok kind b.I.mlabel d then
                                    Some (kind, d, weights d)
                                  else None)
                                (try Hashtbl.find tbl b.I.mlabel
                                 with Not_found -> [])
                            in
                            let cands =
                              neigh Hoist preds_of @ neigh Sink succs_of
                            in
                            let cands =
                              List.filter (fun (_, _, w) -> w < w_src) cands
                            in
                            match
                              List.sort
                                (fun (_, d1, w1) (_, d2, w2) ->
                                  compare (w1, d1) (w2, d2))
                                cands
                            with
                            | (kind, dst, w_dst) :: _ ->
                                proposals :=
                                  {
                                    p_func = mf.I.mname;
                                    p_kind = kind;
                                    p_cause = cause;
                                    p_mask = mask;
                                    p_src = b.I.mlabel;
                                    p_src_idx = k;
                                    p_dst = dst;
                                    p_w_src = w_src;
                                    p_w_dst = w_dst;
                                  }
                                  :: !proposals
                            | [] -> ()
                          end
                      | _ -> ())
                    b.I.mcode)
            mf.I.mblocks)
        p.I.mfuncs;
      let proposals = List.rev !proposals in
      if proposals = [] then zero
      else begin
        (* ---- plant one shared anchor per (dst, position) ---- *)
        let saved_mcode = Hashtbl.create 16 in
        let anchors : (string * kind, anchor) Hashtbl.t = Hashtbl.create 16 in
        let head_planted = Hashtbl.create 16 in
        List.iter
          (fun pr ->
            let key = (pr.p_dst, pr.p_kind) in
            if not (Hashtbl.mem anchors key) then begin
              let b = Hashtbl.find block_of_label pr.p_dst in
              if not (Hashtbl.mem saved_mcode pr.p_dst) then
                Hashtbl.replace saved_mcode pr.p_dst b.I.mcode;
              let code = Array.of_list b.I.mcode in
              let len = Array.length code in
              let idx =
                match pr.p_kind with
                | Sink -> 0
                | Hoist ->
                    (* computed from the CURRENT mcode, so an
                       already-planted Sink anchor is accounted for *)
                    let rec run_start i =
                      if i > 0 && I.is_branch code.(i - 1) then
                        run_start (i - 1)
                      else i
                    in
                    run_start len
              in
              let rec insert i = function
                | rest when i = 0 -> nop :: rest
                | x :: rest -> x :: insert (i - 1) rest
                | [] -> [ nop ]
              in
              b.I.mcode <- insert idx b.I.mcode;
              if pr.p_kind = Sink then begin
                Hashtbl.replace head_planted pr.p_dst ();
                (* a pre-planted Hoist anchor in this block shifts right *)
                Hashtbl.iter
                  (fun (l, k) a ->
                    if String.equal l pr.p_dst && k = Hoist then
                      Hashtbl.replace anchors (l, k)
                        { a with a_idx = a.a_idx + 1 })
                  (Hashtbl.copy anchors)
              end;
              Hashtbl.replace anchors key
                { a_label = pr.p_dst; a_idx = idx; a_pc = -1; a_used = false }
            end)
          proposals;
        let img1 = E.Image.link p in
        let revert_all () =
          Hashtbl.iter
            (fun l mcode ->
              (Hashtbl.find block_of_label l).I.mcode <- mcode)
            saved_mcode
        in
        match C.certify img1 with
        | C.Rejected _ ->
            (* anchors are semantic no-ops, so this indicates an O1 guard
               gap; be safe and stand down *)
            revert_all ();
            zero
        | C.Certified _ ->
            let starts1 = Hashtbl.create 64 in
            List.iter
              (fun (l, s) -> Hashtbl.replace starts1 l s)
              (E.Image.block_starts img1);
            Hashtbl.iter
              (fun _ a -> a.a_pc <- Hashtbl.find starts1 a.a_label + a.a_idx)
              anchors;
            let src_pc_of pr =
              let shift =
                if Hashtbl.mem head_planted pr.p_src then 1 else 0
              in
              Hashtbl.find starts1 pr.p_src + pr.p_src_idx + shift
            in
            let ses = C.Session.create img1 in
            let drop : (int, unit) Hashtbl.t = Hashtbl.create 16 in
            let moves = ref [] in
            let touched = Hashtbl.create 8 in
            List.iter
              (fun pr ->
                let a = Hashtbl.find anchors (pr.p_dst, pr.p_kind) in
                let src_pc = src_pc_of pr in
                let src_ins = img1.E.Image.code.(src_pc) in
                let planted_now =
                  img1.E.Image.code.(a.a_pc) = nop
                  (* physical equality of the constant nop is not
                     guaranteed; structural compare on instrs is fine *)
                in
                if planted_now then
                  img1.E.Image.code.(a.a_pc) <-
                    I.Ckpt (pr.p_cause, pr.p_mask);
                let ins_v =
                  recheck "insertion" a.a_pc (fun () ->
                      C.Session.recheck_insertion ses a.a_pc)
                in
                let applied, verdict =
                  match ins_v with
                  | C.Rejected _ -> (false, verdict_str ins_v)
                  | C.Certified _ -> (
                      img1.E.Image.code.(src_pc) <- nop;
                      match
                        recheck "removal" src_pc (fun () ->
                            C.Session.recheck_removal ses src_pc)
                      with
                      | C.Certified _ -> (true, "certified")
                      | C.Rejected _ as v ->
                          img1.E.Image.code.(src_pc) <- src_ins;
                          (false, verdict_str v))
                in
                if applied then begin
                  a.a_used <- true;
                  Hashtbl.replace drop src_pc ();
                  Hashtbl.replace touched pr.p_func ()
                end
                else if planted_now && not a.a_used then begin
                  (* take the unused barrier back out; its removal returns
                     to an image that certified, so this succeeds unless a
                     later state change intervened (it cannot — rejected
                     moves are fully reverted) *)
                  let back = img1.E.Image.code.(a.a_pc) in
                  img1.E.Image.code.(a.a_pc) <- nop;
                  match
                    recheck "anchor-removal" a.a_pc (fun () ->
                        C.Session.recheck_removal ses a.a_pc)
                  with
                  | C.Certified _ -> ()
                  | C.Rejected _ ->
                      img1.E.Image.code.(a.a_pc) <- back;
                      a.a_used <- true;
                      Hashtbl.replace touched pr.p_func ()
                end;
                moves :=
                  {
                    mv_func = pr.p_func;
                    mv_kind = pr.p_kind;
                    mv_cause = pr.p_cause;
                    mv_from = pr.p_src;
                    mv_to = pr.p_dst;
                    mv_from_pc = src_pc;
                    mv_to_pc = a.a_pc;
                    mv_w_from = pr.p_w_src;
                    mv_w_to = pr.p_w_dst;
                    mv_applied = applied;
                    mv_verdict = verdict;
                  }
                  :: !moves)
              (List.sort (fun a b -> compare (src_pc_of a) (src_pc_of b))
                 proposals);
            (* anchors nobody kept are still nops: drop them *)
            Hashtbl.iter
              (fun _ a ->
                if img1.E.Image.code.(a.a_pc) = nop then
                  Hashtbl.replace drop a.a_pc ())
              anchors;
            (* ---- materialise: rebuild every laid-out block from the
               edited image minus the drop set ---- *)
            let n1 = E.Image.instr_count img1 in
            let starts1_list = E.Image.block_starts img1 in
            let rec ext1 = function
              | (l, s) :: ((_, s') :: _ as rest) ->
                  (l, s, s' - s) :: ext1 rest
              | [ (l, s) ] -> [ (l, s, n1 - s) ]
              | [] -> []
            in
            List.iter
              (fun (l, s, len) ->
                match Hashtbl.find_opt block_of_label l with
                | None -> ()
                | Some b ->
                    let code = ref [] in
                    for pc = s + len - 1 downto s do
                      if not (Hashtbl.mem drop pc) then
                        code := img1.E.Image.code.(pc) :: !code
                    done;
                    b.I.mcode <- !code)
              (ext1 starts1_list);
            (* ---- recompute checkpoint masks on touched functions: the
               moved barriers carry their old live sets, and the emulator
               zeroes unmasked registers on restore ---- *)
            Hashtbl.iter
              (fun fname () ->
                match Hashtbl.find_opt func_by_name fname with
                | Some mf -> Wario_backend.Mliveness.set_ckpt_masks mf
                | None -> ())
              touched;
            let moves = List.rev !moves in
            let count f = List.length (List.filter f moves) in
            {
              proposed = List.length moves;
              applied = count (fun m -> m.mv_applied);
              hoisted = count (fun m -> m.mv_applied && m.mv_kind = Hoist);
              sunk = count (fun m -> m.mv_applied && m.mv_kind = Sink);
              rejected = count (fun m -> not m.mv_applied);
              moves;
            }
      end)
