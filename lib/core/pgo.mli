(** Profile-guided checkpoint placement: compile with the static cost
    model, run one pilot under the emulator (continuous power, per-pc
    execution counting, {!Wario_obs.Profile} attribution), fold the
    measured per-block entry counts into the placement weight function,
    and recompile.  Deterministic: same source and options give the same
    pilot counts and the same final image.

    Because checkpoint placement feeds back into register allocation (and
    thus into back-end spill WARs the weight model cannot predict), the
    loop ends with a measured guard: the greedy-baseline, static-weighted
    and profile-guided binaries each run once under the pilot conditions
    and the one executing the fewest checkpoints is kept, so PGO is never
    worse than the baseline on the pilot input. *)

type variant = Greedy | Static | Profile | Inter

val variant_name : variant -> string

type pilot = {
  profile : Wario_analysis.Costmodel.profile;  (** per-block entry counts *)
  summary : Wario_obs.Profile.t;
      (** per-function / per-region cycle attribution of the pilot run *)
  pilot_cycles : int;
  selected : variant;
      (** which binary the measured guard kept (see {!compile}) *)
  measured : (variant * int) list;
      (** pilot-measured dynamic checkpoint executions per variant *)
}

val collect : ?fuel:int -> Wario_emulator.Image.t -> pilot
(** Run the image once (continuous power, WAR verification off, reference
    path) and return its measured profile.  [selected]/[measured] are
    placeholders until {!compile} fills them. *)

type candidates = {
  greedy_c : Pipeline.compiled;  (** greedy baseline placement *)
  static_c : Pipeline.compiled;  (** static cost model, weighted cover *)
  profile_c : Pipeline.compiled;  (** pilot-measured weights *)
  inter_c : Pipeline.compiled;
      (** interprocedural call-graph model: global weights, cost-coupled
          expansion, and (under [opts.motion]) checkpoint motion; no
          profile *)
  pilot : pilot;
}

val compiled_of : candidates -> variant -> Pipeline.compiled

val compile_candidates :
  ?opts:Pipeline.options ->
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  ?pilot_fuel:int ->
  ?engine:Wario_emulator.Emulator.engine ->
  ?cache:Cache.t ->
  Pipeline.environment ->
  string ->
  candidates
(** The full loop on MiniC source, returning all three binaries — the
    measured guard's choice is [pilot.selected] (placement benchmarks
    reuse the losing candidates too).  [opts.block_profile] is ignored on
    input (the pilot supplies it); [opts.placement] is forced per
    candidate; [opts.elide] is honoured for the cost-guided candidates.
    A live [spans] recorder gets one ["pgo.audition"] span per candidate
    compile (pipeline stages nested inside), a ["pgo.pilot"] span, and one
    ["pgo.measure"] span per measured-guard run with dyn-ckpt/cycle
    counters.  [engine] selects the emulator engine for the measured-guard
    runs (default [Auto] — the block engine; the pilot itself always runs
    the reference interpreter, per-pc counting requires it).  [cache]
    (default: the ambient {!Cache.from_env}) is shared by all four
    candidate compiles: the candidates differ only in placement options,
    so with a live cache the source is parsed, optimized and analyzed
    once — the three intraprocedural candidates replay the cached
    transformed WIR and diverge only from placement down.
    @raise Wario_minic.Minic.Error on front-end errors *)

val compile :
  ?opts:Pipeline.options ->
  ?metrics:Wario_obs.Metrics.t ->
  ?spans:Wario_obs.Span.t ->
  ?pilot_fuel:int ->
  ?engine:Wario_emulator.Emulator.engine ->
  ?cache:Cache.t ->
  Pipeline.environment ->
  string ->
  Pipeline.compiled * pilot
(** {!compile_candidates}, keeping only the measured guard's choice. *)
