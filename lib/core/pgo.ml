(* Profile-guided checkpoint placement: the compile -> pilot -> recompile
   loop behind `iclang pgo`.

   The pilot is one run of the statically-placed binary under continuous
   power on the reference interpreter with per-pc execution counting on and
   the Obs.Profile tracer attached.  Its per-block entry counts become the
   weight function of a second, profile-guided compilation; its
   per-function/per-region cycle attribution is kept for reporting.  Both
   compilations start from the same source, so the label sets agree and the
   whole loop is deterministic (same source + options -> same image).

   Placement interacts with register allocation — moving a middle-end
   checkpoint changes spill decisions and can surface new back-end spill
   WARs the weight model cannot see — so a cheaper cover is not always a
   cheaper binary.  The loop therefore ends with a measured guard: the
   greedy-baseline, static-weighted and profile-guided binaries each run
   once under the pilot conditions, and the one executing the fewest
   checkpoints (ties: fewest cycles, then the more-informed placement)
   is returned.  By construction `iclang pgo` never ships a binary worse
   than the baseline on the pilot input. *)

module A = Wario_analysis
module E = Wario_emulator
module Tr = Wario_obs.Trace
module S = Wario_obs.Span

type variant = Greedy | Static | Profile | Inter

let variant_name = function
  | Greedy -> "greedy"
  | Static -> "static-weighted"
  | Profile -> "profile-guided"
  | Inter -> "interprocedural"

type pilot = {
  profile : A.Costmodel.profile;  (** per-block entry counts *)
  summary : Wario_obs.Profile.t;
      (** per-function / per-region cycle attribution of the pilot run *)
  pilot_cycles : int;
  selected : variant;
      (** which binary the measured guard kept (see [compile]) *)
  measured : (variant * int) list;
      (** pilot-measured dynamic checkpoint executions per variant *)
}

let collect ?fuel (image : E.Image.t) : pilot =
  let ring = Tr.ring () in
  let st =
    E.Emulator.create ?fuel ~supply:E.Power.Continuous ~verify:false
      ~tracer:ring ~count_pcs:true image
  in
  while not (E.Emulator.halted st) do
    ignore (E.Emulator.step st)
  done;
  let profile =
    match E.Emulator.block_counts st with
    | Some p -> p
    | None -> assert false (* created with count_pcs:true *)
  in
  {
    profile;
    summary = Wario_obs.Profile.of_events (Tr.events ring);
    pilot_cycles = E.Emulator.cycles st;
    selected = Static;
    measured = [];
  }

type candidates = {
  greedy_c : Pipeline.compiled;
  static_c : Pipeline.compiled;
  profile_c : Pipeline.compiled;
  inter_c : Pipeline.compiled;
  pilot : pilot;
}

let compiled_of (cs : candidates) = function
  | Greedy -> cs.greedy_c
  | Static -> cs.static_c
  | Profile -> cs.profile_c
  | Inter -> cs.inter_c

(** The full loop, returning all three binaries (the measured guard's
    choice is [pilot.selected]).  [opts.block_profile] is ignored on
    input (the pilot supplies it); [opts.placement] is forced per
    candidate.  [pilot_fuel] bounds the pilot run. *)
let compile_candidates ?(opts = Pipeline.default_options) ?metrics
    ?(spans = S.disabled) ?pilot_fuel ?engine ?cache
    (env : Pipeline.environment) (source : string) : candidates =
  (* One cache handle (ambient by default) shared by all four candidate
     compiles: they differ only in placement options, so the front-end
     and — for the three non-interprocedural candidates — the whole
     middle end up to placement are parsed/optimized/analyzed once and
     replayed from the cache thereafter. *)
  let cache =
    match cache with Some c -> c | None -> Cache.from_env ()
  in
  let static_opts =
    {
      opts with
      Pipeline.block_profile = None;
      placement = Wario_transforms.Checkpoint_inserter.Cost_guided;
    }
  in
  (* per-variant audition cost: each candidate compile gets its own span
     (with the full pipeline-stage tree nested inside) *)
  let audition v f =
    S.with_span spans
      ~attrs:[ ("variant", S.Str (variant_name v)) ]
      "pgo.audition" f
  in
  let static_c =
    audition Static (fun () ->
        Pipeline.compile ~opts:static_opts ~spans ~cache env source)
  in
  let pilot =
    S.with_span spans "pgo.pilot" (fun () ->
        let p = collect ?fuel:pilot_fuel static_c.Pipeline.image in
        S.add_counter ~by:p.pilot_cycles spans "cycles";
        p)
  in
  let profile_c =
    audition Profile (fun () ->
        Pipeline.compile
          ~opts:{ static_opts with Pipeline.block_profile = Some pilot.profile }
          ?metrics ~spans ~cache env source)
  in
  let greedy_c =
    audition Greedy (fun () ->
        Pipeline.compile
          ~opts:
            {
              static_opts with
              Pipeline.placement = Wario_transforms.Checkpoint_inserter.Greedy;
            }
          ~spans ~cache env source)
  in
  (* The interprocedural candidate is a pure static win: call-graph
     weights, cost-coupled expansion and (when [opts.motion] is set)
     certifier-validated checkpoint motion, no profile. *)
  let inter_c =
    audition Inter (fun () ->
        Pipeline.compile
          ~opts:
            {
              static_opts with
              Pipeline.placement =
                Wario_transforms.Checkpoint_inserter.Interprocedural;
            }
          ~spans ~cache env source)
  in
  let measure v (c : Pipeline.compiled) =
    S.with_span spans
      ~attrs:[ ("variant", S.Str (variant_name v)) ]
      "pgo.measure"
    @@ fun () ->
    let r =
      E.Emulator.run ?fuel:pilot_fuel ~supply:E.Power.Continuous
        ~verify:false ?engine c.Pipeline.image
    in
    S.add_counter ~by:r.E.Emulator.checkpoints_total spans "dyn_ckpts";
    S.add_counter ~by:r.E.Emulator.cycles spans "cycles";
    (r.E.Emulator.checkpoints_total, r.E.Emulator.cycles)
  in
  (* preference order breaks exact ties toward the more-informed placement *)
  let candidates =
    [
      (Profile, profile_c);
      (Inter, inter_c);
      (Static, static_c);
      (Greedy, greedy_c);
    ]
  in
  let scored =
    List.map (fun (v, c) -> (v, c, measure v c)) candidates
  in
  let best_v, _, _ =
    List.fold_left
      (fun (bv, bc, bs) (v, c, s) -> if s < bs then (v, c, s) else (bv, bc, bs))
      (match scored with x :: _ -> x | [] -> assert false)
      scored
  in
  {
    greedy_c;
    static_c;
    profile_c;
    inter_c;
    pilot =
      {
        pilot with
        selected = best_v;
        measured = List.map (fun (v, _, (k, _)) -> (v, k)) scored;
      };
  }

(** [compile env source]: {!compile_candidates}, keeping only the
    measured guard's choice. *)
let compile ?opts ?metrics ?spans ?pilot_fuel ?engine ?cache
    (env : Pipeline.environment) (source : string) : Pipeline.compiled * pilot
    =
  let cs =
    compile_candidates ?opts ?metrics ?spans ?pilot_fuel ?engine ?cache env
      source
  in
  (compiled_of cs cs.pilot.selected, cs.pilot)
