(** Static idempotence certifier: translation validation of WAR-freedom
    over the linked TM2 image.

    Independently of the compiler passes, reconstructs the machine-level
    CFG from the {!Wario_emulator.Image}, abstract-interprets every
    function over the {!Absdom} value domain (sp-relative offsets,
    register copies, base+offset NVM addresses), and judges every
    barrier-free load-to-store pair for address disjointness — the same
    WAR definition the middle end's [Pdg.wars] uses, applied to the final
    binary.  The result is either a certificate (all pairs discharged,
    with per-rule statistics and the structural obligations checked) or a
    rejection with concrete barrier-free path witnesses. *)

type obligation = { ob_name : string; ob_sites : int }

type stats = {
  s_functions : int;
  s_instrs : int;
  s_loads : int;
  s_stores : int;
  s_barriers : int;
  s_pairs : int;  (** barrier-free load->store pairs judged *)
  s_rules : (string * int) list;  (** disjointness rule -> times used *)
  s_obligations : obligation list;
}

type pair_witness = {
  w_load_pc : int;
  w_load_func : string;
  w_store_pc : int;
  w_store_func : string;
  w_path : int list;  (** barrier-free pc trace, load first, store last *)
  w_reason : string;
}

type reject_reason =
  | War_pair of pair_witness
  | Obligation_failed of { ob_name : string; ob_pc : int option; ob_msg : string }

type verdict = Certified of stats | Rejected of reject_reason list * stats

val certify : Wario_emulator.Image.t -> verdict
(** Prove every idempotent region of the image WAR-free, or produce
    witnesses.  Only instrumented builds can certify: the uninstrumented
    baseline fails the pop-conversion obligation by construction. *)

(** Incremental re-certification for search loops that repeatedly remove
    one checkpoint from an already-certified image and re-validate (the
    checkpoint elision pass, {!Wario.Elide}).  The session caches the
    abstract interpretation of every function keyed by pc, so edits must
    keep pcs stable: overwrite the checkpoint in the image's code array
    with [Mov (r0, R r0)] — the certifier models [Ckpt] as a state
    no-op whose only effect is barrierhood, and that [Mov] has the same
    identity transfer, so the cached states stay exact — then call
    [recheck_removal] on that pc.  Reverting a rejected removal (writing
    the [Ckpt] back) needs no session maintenance for the same reason. *)
module Session : sig
  type t

  val create : Wario_emulator.Image.t -> t
  (** Full abstract interpretation of every function, plus the escape
      sweep and the reverse walk relation; the pair sweep is deferred. *)

  val recheck_removal : t -> int -> verdict
  (** Re-validate after the barrier at [pc] was substituted away.  Every
      barrier-free path the removal adds passes through [pc], so only
      loads reaching [pc] barrier-free (by reverse BFS) are re-swept, and
      the one barrier-dependent structural obligation (pop conversion at
      [pc+1]) is re-checked; all other pairs and obligations keep their
      verdicts.  The verdict's [stats] are zeroed — this answers
      "does the image still certify?", not the full census. *)

  val recheck_insertion : t -> int -> verdict
  (** Validate a barrier newly substituted IN at [pc].  Insertion is
      certification-monotone: a new barrier only removes barrier-free
      paths (no pair verdict can flip to overlap) and cannot violate pop
      conversion (O1 wants an sp-increase {e preceded} by a checkpoint,
      and a checkpoint never writes sp), while the abstract states are
      unchanged (Ckpt and the Mov it replaced both have the identity
      transfer).  So this only checks that [pc] really holds a barrier,
      and rejects on API misuse.  Checkpoint {e motion} = one
      [recheck_insertion] at the new site + one {!recheck_removal} at the
      old site, in that order. *)
end

val pp_witness : Wario_emulator.Image.t -> pair_witness -> string
(** Render a witness as an assembly trace via [Isa]'s printer. *)

val report : Wario_emulator.Image.t -> verdict -> string
(** Human-readable certificate or rejection report. *)
