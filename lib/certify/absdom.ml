(* Abstract value domain for the machine-level WAR certifier.

   Two layers, mirroring the middle end's [Affine] and [Alias] lattices at
   TM2 level:

   - [expr]: an affine form  const + sum coeff*base  over the symbolic bases
     {address of global g, the function's entry-time sp}.  Only values the
     analysis can pin down exactly live here: materialised constants,
     [AdrData] results, sp arithmetic.  Loads and incoming parameters are
     *not* given fresh symbols — two opaque symbols would otherwise cancel
     in a difference and "prove" disjointness of addresses we know nothing
     about.

   - [prov]: provenance, the machine analogue of [Alias.aval] — a set of
     (object, byte-offset option) targets plus a stack flag ("somewhere in
     the current function's frame") and an unknown flag ("any escaped
     object").  Every [expr] degrades to a [prov]; joins of unequal exprs
     land here.

   Precision argument: the middle-end checkpoint inserter cut every pair its
   [Alias] analysis could not prove disjoint, so any load/store pair still
   sharing a region was proven disjoint by base+offset reasoning over
   globals/slots with whole-program escape.  The domain above can re-prove
   exactly those facts on the machine code, so a healthy build certifies. *)

module I = Wario_machine.Isa

type base =
  | Glob of string  (** address of data symbol *)
  | Sp  (** the analysed function's sp at entry *)

module Bmap = Map.Make (struct
  type t = base

  let compare = compare
end)

type expr = { terms : int Bmap.t; const : int }

let const n = { terms = Bmap.empty; const = n }

let of_base b = { terms = Bmap.singleton b 1; const = 0 }

let add_expr e1 e2 =
  {
    terms =
      Bmap.union
        (fun _ a b ->
          let s = a + b in
          if s = 0 then None else Some s)
        e1.terms e2.terms;
    const = e1.const + e2.const;
  }

let neg_expr e = { terms = Bmap.map (fun c -> -c) e.terms; const = -e.const }

let add_const e k = { e with const = e.const + k }

let mul_const e k =
  if k = 0 then const 0
  else { terms = Bmap.map (fun c -> c * k) e.terms; const = e.const * k }

let is_const e = if Bmap.is_empty e.terms then Some e.const else None

let equal_expr e1 e2 = e1.const = e2.const && Bmap.equal ( = ) e1.terms e2.terms

(** What an exact expression denotes as an address. *)
type place =
  | P_glob of string * int  (** global + byte offset *)
  | P_stack of int  (** byte offset relative to the entry-time sp *)
  | P_abs of int  (** absolute constant *)
  | P_messy  (** multi-base arithmetic *)

let place_of e =
  match Bmap.bindings e.terms with
  | [] -> P_abs e.const
  | [ (Glob g, 1) ] -> P_glob (g, e.const)
  | [ (Sp, 1) ] -> P_stack e.const
  | _ -> P_messy

let string_of_expr e =
  let terms =
    Bmap.bindings e.terms
    |> List.map (fun (b, c) ->
           let name = match b with Glob g -> "&" ^ g | Sp -> "sp0" in
           if c = 1 then name else Printf.sprintf "%d*%s" c name)
  in
  let parts = terms @ if e.const <> 0 || terms = [] then [ string_of_int e.const ] else [] in
  String.concat "+" parts

(* ------------------------------------------------------------------ *)
(* Provenance                                                           *)
(* ------------------------------------------------------------------ *)

(** A provenance target: a whole object, optionally narrowed to a byte
    offset within it.  Slots are identified by IR slot id *within the
    function under analysis*; cross-function comparisons treat frames of
    distinct functions as disjoint. *)
type tgt = T_glob of string | T_slot of int

module Tset = Set.Make (struct
  type t = tgt * int option

  let compare = compare
end)

type prov = {
  targets : Tset.t;
  stack : bool;  (** may point anywhere into the current frame *)
  unknown : bool;  (** may point to any escaped object *)
}

let bot_prov = { targets = Tset.empty; stack = false; unknown = false }

let unknown_prov = { targets = Tset.empty; stack = false; unknown = true }

let is_bot_prov p = Tset.is_empty p.targets && (not p.stack) && not p.unknown

(* Widening bound: beyond this many (target, offset) pairs the offsets are
   blurred to whole objects, keeping fixpoints finite even for pointer
   induction variables (p = p + 4 in a loop). *)
let max_targets = 32

let blur_offsets p =
  {
    p with
    targets = Tset.map (fun (t, _) -> (t, None)) p.targets;
  }

let norm_prov p =
  if Tset.cardinal p.targets > max_targets then blur_offsets p else p

let join_prov p q =
  norm_prov
    {
      targets = Tset.union p.targets q.targets;
      stack = p.stack || q.stack;
      unknown = p.unknown || q.unknown;
    }

let shift_prov p k =
  if k = 0 then p
  else
    {
      p with
      targets = Tset.map (fun (t, o) -> (t, Option.map (( + ) k) o)) p.targets;
    }

(* ------------------------------------------------------------------ *)
(* Abstract values                                                      *)
(* ------------------------------------------------------------------ *)

type aval = Exact of expr | Ptr of prov

let unknown = Ptr unknown_prov

let bot = Ptr bot_prov

(** Degrade an exact expression to provenance.  [slot_of_off] maps an
    entry-sp-relative byte offset to the IR slot containing it (id, offset
    within slot); offsets in the frame but outside every slot (spill and
    saved-register cells) yield the bare [stack] flag. *)
let prov_of_expr ~(slot_of_off : int -> (int * int) option) e : prov =
  match place_of e with
  | P_glob (g, k) ->
      { targets = Tset.singleton (T_glob g, Some k); stack = false; unknown = false }
  | P_stack o -> (
      match slot_of_off o with
      | Some (s, k) ->
          { targets = Tset.singleton (T_slot s, Some k); stack = false; unknown = false }
      | None -> { bot_prov with stack = true })
  | P_abs _ -> bot_prov (* a plain integer is not a pointer *)
  | P_messy ->
      (* collect whatever bases appear, with offsets lost *)
      Bmap.fold
        (fun b _ acc ->
          match b with
          | Glob g -> { acc with targets = Tset.add (T_glob g, None) acc.targets }
          | Sp -> { acc with stack = true })
        e.terms bot_prov

let prov_of ~slot_of_off = function
  | Exact e -> prov_of_expr ~slot_of_off e
  | Ptr p -> p

let join_aval ~slot_of_off a b =
  match (a, b) with
  | Exact e1, Exact e2 when equal_expr e1 e2 -> a
  | _ ->
      let p = join_prov (prov_of ~slot_of_off a) (prov_of ~slot_of_off b) in
      Ptr p

let equal_aval a b =
  match (a, b) with
  | Exact e1, Exact e2 -> equal_expr e1 e2
  | Ptr p, Ptr q -> p.stack = q.stack && p.unknown = q.unknown && Tset.equal p.targets q.targets
  | _ -> false

(** Pointer addition: exact+exact stays exact; adding a known constant to a
    provenance shifts its offsets (the [Alias] Add rule); anything else
    unions the provenances with offsets blurred. *)
let av_add ~slot_of_off a b =
  match (a, b) with
  | Exact e1, Exact e2 -> Exact (add_expr e1 e2)
  | Ptr p, Exact e | Exact e, Ptr p -> (
      match is_const e with
      | Some k -> Ptr (shift_prov p k)
      | None ->
          Ptr (join_prov (blur_offsets p) (blur_offsets (prov_of_expr ~slot_of_off e))))
  | Ptr p, Ptr q -> Ptr (join_prov (blur_offsets p) (blur_offsets q))

(** Pointer subtraction, [a - b]: the subtrahend's provenance is dropped
    (the [Alias] Sub rule — under the C model a pointer difference or
    [ptr - int] can only denote [a]'s object). *)
let av_sub ~slot_of_off a b =
  match (a, b) with
  | Exact e1, Exact e2 -> Exact (add_expr e1 (neg_expr e2))
  | _, Exact e -> (
      let p = prov_of ~slot_of_off a in
      match is_const e with
      | Some k -> Ptr (shift_prov p (-k))
      | None -> Ptr (blur_offsets p))
  | _, Ptr _ -> Ptr (blur_offsets (prov_of ~slot_of_off a))

(** Catch-all for arithmetic that destroys offset structure but keeps the
    operands' objects reachable (mul, shifts, masks over pointers...). *)
let av_blur ~slot_of_off a b =
  Ptr
    (join_prov
       (blur_offsets (prov_of ~slot_of_off a))
       (blur_offsets (prov_of ~slot_of_off b)))

let string_of_aval = function
  | Exact e -> "=" ^ string_of_expr e
  | Ptr p ->
      if is_bot_prov p then "int"
      else
        let ts =
          Tset.elements p.targets
          |> List.map (fun (t, o) ->
                 let name = match t with T_glob g -> g | T_slot s -> Printf.sprintf "$%d" s in
                 match o with Some k -> Printf.sprintf "%s+%d" name k | None -> name)
        in
        let flags =
          (if p.stack then [ "frame" ] else []) @ if p.unknown then [ "?" ] else []
        in
        "{" ^ String.concat "," (ts @ flags) ^ "}"
