(* Static idempotence certifier: translation validation of WAR-freedom over
   the linked TM2 image (paper §5.1.1 made static; correctness condition
   from Surbatovich et al.: no WAR on non-volatile memory inside any
   idempotent region).

   The certifier is independent of the compiler passes whose output it
   checks: it reconstructs the machine-level CFG from [Image], runs a
   context-insensitive interprocedural abstract interpretation per function
   (domain in [Absdom]), and then, for every load, walks the barrier-free
   machine CFG forward — through calls and returns, carrying an sp
   translation — judging every reachable store for address disjointness.
   The WAR definition matches the middle end's [Pdg.wars] exactly: a
   may-alias load/store pair with a barrier-free load-to-store path.

   Verdict: either a certificate (every pair discharged, with the rule used
   and the structural obligations checked) or a rejection carrying concrete
   path witnesses from the offending load to the store.

   Stated assumptions (printed in the certificate):
   - A1  the stack never grows into the data section (no stack overflow);
   - A2  pointer arithmetic stays within the provenance of its base object
         (the same C-model assumption the middle-end [Alias] makes).

   Structural obligations (checked, not assumed):
   - O1  sp is statically tracked: every sp write is a push, a frame
         [sub], or a pop-converted [add] immediately preceded by a
         checkpoint (the Idempotent Stack Pop Converter discipline that
         also protects against ISR pushes below sp);
   - O2  the only frame addresses ever computed ([add rd, sp, #k]) point
         into the IR slot area — spill and saved-register cells are
         machine-private, so store-to-load forwarding over them is sound;
   - O3  the checkpoint double buffer lies below the data section. *)

module I = Wario_machine.Isa
module Img = Wario_emulator.Image
module Util = Wario_support.Util
module D = Absdom

(* ------------------------------------------------------------------ *)
(* Results                                                              *)
(* ------------------------------------------------------------------ *)

type obligation = { ob_name : string; ob_sites : int }

type stats = {
  s_functions : int;
  s_instrs : int;
  s_loads : int;
  s_stores : int;
  s_barriers : int;
  s_pairs : int;  (** barrier-free load->store pairs judged *)
  s_rules : (string * int) list;  (** disjointness rule -> times used *)
  s_obligations : obligation list;
}

type pair_witness = {
  w_load_pc : int;
  w_load_func : string;
  w_store_pc : int;
  w_store_func : string;
  w_path : int list;  (** barrier-free pc trace, load first, store last *)
  w_reason : string;
}

type reject_reason =
  | War_pair of pair_witness
  | Obligation_failed of { ob_name : string; ob_pc : int option; ob_msg : string }

type verdict = Certified of stats | Rejected of reject_reason list * stats

(* ------------------------------------------------------------------ *)
(* Per-function context                                                 *)
(* ------------------------------------------------------------------ *)

(* All frame geometry below is in bytes relative to the *entry-time* sp of
   the function (before the prolog push), negative offsets growing down:

       [caller ...]                          offset >= 0
       [saved regs + lr]                     [-push_bytes, 0)
       [IR slot area]
       [spill slots]                         frame_lo = -(push_bytes+frame) *)
type fctx = {
  fname : string;
  lo : int;
  hi : int;  (** pc range [lo, hi] inclusive *)
  frame_lo : int;
  slot_ranges : (int * int * int) list;  (** slot id, rel-entry offset, size *)
  spill_range : int * int;  (** rel-entry [lo, hi) *)
  saved_range : int * int;
  params : int;
  returns : bool;
  has_meta : bool;
}

let build_fctxs (img : Img.t) : fctx list * (int -> fctx) =
  let n = Img.instr_count img in
  let ranges = ref [] in
  let cur = ref None in
  for pc = 0 to n - 1 do
    let f = img.func_of_pc.(pc) in
    match !cur with
    | Some (g, lo) when g = f -> ignore lo
    | Some (g, lo) ->
        ranges := (g, lo, pc - 1) :: !ranges;
        cur := Some (f, pc)
    | None -> cur := Some (f, pc)
  done;
  (match !cur with Some (g, lo) -> ranges := (g, lo, n - 1) :: !ranges | None -> ());
  let ctxs =
    List.rev_map
      (fun (f, lo, hi) ->
        match Img.frame_meta_of img f with
        | Some m ->
            let push_bytes = 4 * List.length m.I.fm_saved in
            let frame_lo = -(push_bytes + m.I.fm_frame_bytes) in
            {
              fname = f;
              lo;
              hi;
              frame_lo;
              slot_ranges =
                List.map
                  (fun (id, off, sz) -> (id, frame_lo + off, sz))
                  m.I.fm_slots;
              spill_range = (frame_lo, frame_lo + m.I.fm_spill_bytes);
              saved_range = (-push_bytes, 0);
              params = m.I.fm_params;
              returns = m.I.fm_returns;
              has_meta = true;
            }
        | None ->
            {
              fname = f;
              lo;
              hi;
              frame_lo = 0;
              slot_ranges = [];
              spill_range = (0, 0);
              saved_range = (0, 0);
              params = 4;
              returns = true;
              has_meta = false;
            })
      !ranges
  in
  let by_pc = Array.make (max n 1) (List.hd ctxs) in
  List.iter (fun c -> for pc = c.lo to c.hi do by_pc.(pc) <- c done) ctxs;
  (ctxs, fun pc -> by_pc.(pc))

let slot_of_off ctx o =
  List.find_map
    (fun (id, rel, sz) -> if o >= rel && o < rel + sz then Some (id, o - rel) else None)
    ctx.slot_ranges

let in_range (lo, hi) o n = o >= lo && o + n <= hi

let in_cell_area ctx o n = in_range ctx.spill_range o n || in_range ctx.saved_range o n

(* ------------------------------------------------------------------ *)
(* Abstract interpretation                                              *)
(* ------------------------------------------------------------------ *)

type st = { regs : D.aval array; cells : D.aval Util.Int_map.t }

let entry_state () =
  let regs = Array.make 16 D.unknown in
  regs.(I.sp) <- D.Exact (D.of_base D.Sp);
  { regs; cells = Util.Int_map.empty }

let join_st ~slot_of_off a b =
  let regs = Array.init 16 (fun i -> D.join_aval ~slot_of_off a.regs.(i) b.regs.(i)) in
  let cells =
    Util.Int_map.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y -> Some (D.join_aval ~slot_of_off x y)
        | _ -> None)
      a.cells b.cells
  in
  { regs; cells }

let equal_st a b =
  (try
     Array.iter2 (fun x y -> if not (D.equal_aval x y) then raise Exit) a.regs b.regs;
     true
   with Exit -> false)
  && Util.Int_map.equal D.equal_aval a.cells b.cells

let eval_op2 st = function
  | I.R r -> st.regs.(r)
  | I.I k -> D.Exact (D.const (Int32.to_int k))

(** Entry-sp-relative byte offset, if the value is an exact stack address. *)
let stack_off = function
  | D.Exact e -> ( match D.place_of e with D.P_stack o -> Some o | _ -> None)
  | _ -> None

let set_reg st r v =
  let regs = Array.copy st.regs in
  regs.(r) <- v;
  { st with regs }

(** Effect of a store through [addr] on the tracked stack cells. *)
let store_cells ~so ctx st addr data bytes =
  match stack_off addr with
  | Some o ->
      if bytes = 4 && o mod 4 = 0 && in_cell_area ctx o 4 then
        { st with cells = Util.Int_map.add o data st.cells }
      else
        (* sub-word or non-cell stack store: kill overlapped cells *)
        {
          st with
          cells =
            Util.Int_map.filter
              (fun co _ -> co + 4 <= o || co >= o + bytes)
              st.cells;
        }
  | None ->
      let p = D.prov_of ~slot_of_off:so addr in
      (* A store that may target the frame through an untracked pointer
         invalidates every forwarded cell (assumption A2 keeps slot-based
         pointers inside their slot, so those cannot reach the cells). *)
      if p.D.stack || p.D.unknown then { st with cells = Util.Int_map.empty }
      else st

let transfer (ctx : fctx) (img : Img.t) (pc : int) (st : st) : st =
  let so = slot_of_off ctx in
  match img.code.(pc) with
  | I.Alu (op, rd, rn, o2) ->
      let a = st.regs.(rn) and b = eval_op2 st o2 in
      let v =
        match op with
        | I.ADD -> D.av_add ~slot_of_off:so a b
        | I.SUB -> D.av_sub ~slot_of_off:so a b
        | I.RSB -> D.av_sub ~slot_of_off:so b a
        | I.MUL -> (
            match (a, b) with
            | D.Exact e1, D.Exact e2 -> (
                match (D.is_const e1, D.is_const e2) with
                | _, Some k -> D.Exact (D.mul_const e1 k)
                | Some k, _ -> D.Exact (D.mul_const e2 k)
                | None, None -> D.av_blur ~slot_of_off:so a b)
            | _ -> D.av_blur ~slot_of_off:so a b)
        | I.LSL -> (
            match (a, o2) with
            | D.Exact e, I.I k when Int32.to_int k >= 0 && Int32.to_int k < 31 ->
                D.Exact (D.mul_const e (1 lsl Int32.to_int k))
            | _ -> D.av_blur ~slot_of_off:so a b)
        | _ -> D.av_blur ~slot_of_off:so a b
      in
      set_reg st rd v
  | I.Mov (rd, o2) -> set_reg st rd (eval_op2 st o2)
  | I.Movw32 (rd, v) -> set_reg st rd (D.Exact (D.const (Int32.to_int v)))
  | I.Movc (_, rd, o2) ->
      set_reg st rd (D.join_aval ~slot_of_off:so st.regs.(rd) (eval_op2 st o2))
  | I.AdrData (rd, s, off) ->
      set_reg st rd (D.Exact (D.add_const (D.of_base (D.Glob s)) (Int32.to_int off)))
  | I.Ldr (w, rd, rn, off) ->
      let addr =
        D.av_add ~slot_of_off:so st.regs.(rn) (D.Exact (D.const (Int32.to_int off)))
      in
      let v =
        match stack_off addr with
        | Some o when I.bytes_of_width w = 4 && o mod 4 = 0 -> (
            match Util.Int_map.find_opt o st.cells with
            | Some v -> v
            | None -> D.unknown)
        | _ -> D.unknown
      in
      set_reg st rd v
  | I.LdrR (_, rd, _, _) -> set_reg st rd D.unknown
  | I.Str (w, rd, rn, off) ->
      let addr =
        D.av_add ~slot_of_off:so st.regs.(rn) (D.Exact (D.const (Int32.to_int off)))
      in
      store_cells ~so ctx st addr st.regs.(rd) (I.bytes_of_width w)
  | I.StrR (w, rd, rn, rm) ->
      let addr = D.av_add ~slot_of_off:so st.regs.(rn) st.regs.(rm) in
      store_cells ~so ctx st addr st.regs.(rd) (I.bytes_of_width w)
  | I.Push rs -> (
      let n = List.length rs in
      match stack_off st.regs.(I.sp) with
      | Some c ->
          let cells = ref st.cells in
          List.iteri
            (fun i r ->
              let o = c - (4 * n) + (4 * i) in
              if in_cell_area ctx o 4 then cells := Util.Int_map.add o st.regs.(r) !cells)
            rs;
          let st = { st with cells = !cells } in
          set_reg st I.sp (D.Exact (D.add_const (D.of_base D.Sp) (c - (4 * n))))
      | None ->
          (* sp lost: flagged by obligation O1; stay conservative *)
          let st = { st with cells = Util.Int_map.empty } in
          set_reg st I.sp D.unknown)
  | I.Bl _ ->
      (* scratch registers and lr are clobbered by the callee; callee-saved
         registers and sp survive; tracked cells at or above the current sp
         are out of the callee's reach. *)
      let regs = Array.copy st.regs in
      List.iter (fun r -> regs.(r) <- D.unknown) [ 0; 1; 2; 3; 11; 12; I.lr ];
      let cells =
        match stack_off st.regs.(I.sp) with
        | Some c -> Util.Int_map.filter (fun o _ -> o >= c) st.cells
        | None -> Util.Int_map.empty
      in
      { regs; cells }
  | I.Cmp _ | I.B _ | I.Bc _ | I.Bx_lr | I.Ckpt _ | I.Cpsid | I.Cpsie | I.Svc _ -> st
  | I.FrameAddr (rd, _) -> set_reg st rd (D.Ptr { D.bot_prov with D.stack = true })
  | I.SpillLd (rd, _) -> set_reg st rd D.unknown
  | I.SpillSt _ -> { st with cells = Util.Int_map.empty }

(** Context-insensitive fixpoint over one function's pc range. *)
let analyse_function (img : Img.t) (ctx : fctx) (inp : st option array) : unit =
  let so = slot_of_off ctx in
  inp.(ctx.lo) <- Some (entry_state ());
  let work = Queue.create () in
  Queue.add ctx.lo work;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    match inp.(pc) with
    | None -> ()
    | Some st ->
        let out = transfer ctx img pc st in
        List.iter
          (fun q ->
            if q >= ctx.lo && q <= ctx.hi then
              match inp.(q) with
              | None ->
                  inp.(q) <- Some out;
                  Queue.add q work
              | Some old ->
                  let j = join_st ~slot_of_off:so old out in
                  if not (equal_st j old) then (
                    inp.(q) <- Some j;
                    Queue.add q work))
          (Img.succs img pc)
  done

(* ------------------------------------------------------------------ *)
(* Escape analysis (post-fixpoint sweep, mirrors [Alias]'s sources)      *)
(* ------------------------------------------------------------------ *)

type esc = {
  mutable e_globs : Util.Str_set.t;
  mutable e_slots : (string * int) list;
  mutable e_frames : Util.Str_set.t;  (** imprecise frame pointer escaped *)
}

let mark_escape esc fname (p : D.prov) =
  D.Tset.iter
    (fun (t, _) ->
      match t with
      | D.T_glob g -> esc.e_globs <- Util.Str_set.add g esc.e_globs
      | D.T_slot s ->
          if not (List.mem (fname, s) esc.e_slots) then
            esc.e_slots <- (fname, s) :: esc.e_slots)
    p.D.targets;
  if p.D.stack then esc.e_frames <- Util.Str_set.add fname esc.e_frames

let sweep_escapes (img : Img.t) (ctx_of : int -> fctx) (inp : st option array) : esc =
  let esc = { e_globs = Util.Str_set.empty; e_slots = []; e_frames = Util.Str_set.empty } in
  Array.iteri
    (fun pc ins ->
      match inp.(pc) with
      | None -> ()
      | Some st -> (
          let ctx = ctx_of pc in
          let so = slot_of_off ctx in
          let pv r = D.prov_of ~slot_of_off:so st.regs.(r) in
          match ins with
          | I.Bl _ ->
              (* argument registers escape into the callee *)
              let callee = ctx_of img.Img.target.(pc) in
              for r = 0 to min 3 (callee.params - 1) do
                mark_escape esc ctx.fname (pv r)
              done
          | I.Str (_, rd, rn, off) ->
              (* stored data escapes, except into the machine-private spill
                 and saved-register cells (no IR-level store happens there) *)
              let addr =
                D.av_add ~slot_of_off:so st.regs.(rn)
                  (D.Exact (D.const (Int32.to_int off)))
              in
              let private_cell =
                match stack_off addr with
                | Some o -> in_cell_area ctx o 1
                | None -> false
              in
              if not private_cell then mark_escape esc ctx.fname (pv rd)
          | I.StrR (_, rd, _, _) -> mark_escape esc ctx.fname (pv rd)
          | I.Bx_lr -> if ctx.returns then mark_escape esc ctx.fname (pv 0)
          | _ -> ()))
    img.Img.code;
  esc

(* ------------------------------------------------------------------ *)
(* Structural obligations                                               *)
(* ------------------------------------------------------------------ *)

let is_barrier = function I.Ckpt _ -> true | I.Svc 0 -> true | _ -> false

let check_obligations (img : Img.t) (ctx_of : int -> fctx) (inp : st option array) :
    reject_reason list * obligation list =
  let fails = ref [] in
  let fail name pc msg =
    fails := Obligation_failed { ob_name = name; ob_pc = pc; ob_msg = msg } :: !fails
  in
  let n_o1 = ref 0 and n_o2 = ref 0 in
  Array.iteri
    (fun pc ins ->
      let ctx = ctx_of pc in
      (* O1: sp writes are structurally analysable, and every sp increase
         (a pop) sits immediately after a checkpoint (pop conversion) *)
      (match ins with
      | I.Alu (I.SUB, rd, rn, I.I _) when rd = I.sp ->
          incr n_o1;
          if rn <> I.sp then fail "sp-discipline" (Some pc) "sub sp from non-sp source"
      | I.Alu (I.ADD, rd, rn, I.I _) when rd = I.sp ->
          incr n_o1;
          if rn <> I.sp then fail "sp-discipline" (Some pc) "add sp from non-sp source"
          else if not (pc > ctx.lo && is_barrier img.Img.code.(pc - 1)) then
            fail "sp-discipline" (Some pc)
              "stack-pointer increase not immediately preceded by a checkpoint \
               (pop conversion)"
      | I.Push _ -> incr n_o1
      | ins -> (
          match I.writes ins with
          | Some rd when rd = I.sp ->
              fail "sp-discipline" (Some pc) "untracked write to sp"
          | _ -> ()));
      (* O1b: sp must remain an exact entry-relative offset wherever its
         value matters (pushes, sp adjustments, calls) *)
      (match ins with
      | I.Push _ | I.Bl _ | I.Alu (_, 13, _, _) -> (
          match inp.(pc) with
          | Some st when stack_off st.regs.(I.sp) = None ->
              fail "sp-discipline" (Some pc) "sp not statically tracked here"
          | _ -> ())
      | _ -> ());
      (* O2: computed frame addresses stay inside the IR slot area *)
      match ins with
      | I.Alu (I.ADD, rd, rn, op2) when rd <> I.sp && rn = I.sp -> (
          incr n_o2;
          match op2 with
          | I.I k ->
              let off = ctx.frame_lo + Int32.to_int k in
              if
                not
                  (List.exists
                     (fun (_, rel, sz) -> off >= rel && off < rel + sz)
                     ctx.slot_ranges)
              then
                fail "frame-address" (Some pc)
                  (Printf.sprintf
                     "frame address sp+%ld does not point into the slot area" k)
          | I.R _ -> fail "frame-address" (Some pc) "register-indexed frame address")
      | _ -> ())
    img.Img.code;
  if Img.globals_base < Img.ckpt_base + 0x100 then
    fail "layout" None "checkpoint buffer overlaps the data section";
  ( List.rev !fails,
    [
      { ob_name = "sp-discipline (O1)"; ob_sites = !n_o1 };
      { ob_name = "frame-address (O2)"; ob_sites = !n_o2 };
      { ob_name = "ckpt-buffer layout (O3)"; ob_sites = 1 };
    ] )

(* ------------------------------------------------------------------ *)
(* Pair judgment                                                        *)
(* ------------------------------------------------------------------ *)

(** One side of a pair, normalised: either an exact place in the *load*
    function's entry-sp coordinates, or a provenance relative to [func]. *)
type side = SE of D.place | SP of string * D.prov

let normalise ~(ctx : fctx) (v : D.aval) : side =
  match v with
  | D.Exact e -> (
      match D.place_of e with
      | D.P_messy -> SP (ctx.fname, D.prov_of_expr ~slot_of_off:(slot_of_off ctx) e)
      | p -> SE p)
  | D.Ptr p -> if D.is_bot_prov p then SP (ctx.fname, D.unknown_prov) else SP (ctx.fname, p)

type judgment = { j_overlap : bool; j_rule : string }

let ok rule = { j_overlap = false; j_rule = rule }
let bad reason = { j_overlap = true; j_rule = reason }

let judge (img : Img.t) (ctx_by_name : string -> fctx) (esc : esc)
    ~(ctxl : fctx) ~(crossed_return : bool) (sl : side) (nl : int) (ss : side)
    (ns : int) : judgment =
  let sym g = List.assoc_opt g img.Img.symbols in
  let sym_size g = Option.value ~default:1 (List.assoc_opt g img.Img.symbol_sizes) in
  (* absolute data interval of an exact non-stack place *)
  let abs_of = function
    | D.P_abs a -> Some a
    | D.P_glob (g, k) -> Option.map (fun a -> a + k) (sym g)
    | _ -> None
  in
  let ivl_overlap (a, n) (b, m) = a < b + m && b < a + n in
  (* absolute intervals a glob-target may occupy *)
  let glob_tgt_ivl g off n =
    match sym g with
    | None -> None
    | Some a -> (
        match off with Some k -> Some (a + k, n) | None -> Some (a, sym_size g))
  in
  let prov_globs p =
    D.Tset.elements p.D.targets
    |> List.filter_map (function D.T_glob g, o -> Some (g, o) | _ -> None)
  in
  let prov_slots p =
    D.Tset.elements p.D.targets
    |> List.filter_map (function D.T_slot s, o -> Some (s, o) | _ -> None)
  in
  (* rel-entry intervals of the escaped slots of [f] *)
  let escaped_slot_ivls (f : fctx) =
    List.filter_map
      (fun (g, s) ->
        if g = f.fname then
          List.find_map
            (fun (id, rel, sz) -> if id = s then Some (rel, sz) else None)
            f.slot_ranges
        else None)
      esc.e_slots
    @ if Util.Str_set.mem f.fname esc.e_frames then [ (f.frame_lo, -f.frame_lo) ] else []
  in
  let has_escaped_target (f : string) (p : D.prov) =
    List.exists (fun (g, _) -> Util.Str_set.mem g esc.e_globs) (prov_globs p)
    || List.exists (fun (s, _) -> List.mem (f, s) esc.e_slots) (prov_slots p)
    || (p.D.stack
       && ((not (escaped_slot_ivls (ctx_by_name f) = []))
          || Util.Str_set.mem f esc.e_frames))
  in
  (* does the absolute data interval reach any escaped global? *)
  let ivl_reaches_escaped ivl =
    Util.Str_set.exists
      (fun g ->
        match glob_tgt_ivl g None 1 with
        | Some gi -> ivl_overlap ivl gi
        | None -> false)
      esc.e_globs
  in
  (* [pe]: an exact place (always in the load function's coordinates) of
     width [ne]; [p]: a provenance relative to [pf] of width [np]. *)
  let exact_vs_prov pe ne pf p np = (
      match abs_of pe with
      | Some a ->
          (* a data address: only glob provenance or escape can reach it *)
          let ivl = (a, ne) in
          if p.D.unknown && ivl_reaches_escaped ivl then
            bad "may alias an escaped object"
          else if
            List.exists
              (fun (g, o) ->
                match glob_tgt_ivl g o np with
                | Some gi -> ivl_overlap ivl gi
                | None -> false)
              (prov_globs p)
          then bad "overlapping global provenance"
          else if p.D.unknown then ok "not-escaped"
          else if prov_globs p <> [] then ok "distinct-objects"
          else ok "stack-vs-data"
      | None -> (
          match pe with
          | D.P_stack o ->
              let own = ctxl in
              let pe_ivl = (o, ne) in
              let frame_based =
                prov_slots p <> [] || p.D.stack
              in
              if crossed_return && (frame_based || p.D.unknown) then
                bad "frame reasoning unsound across a return on this path"
              else if
                (* provenance of the same function's frame *)
                pf = own.fname
                && (List.exists
                      (fun (s, off) ->
                        match
                          List.find_map
                            (fun (id, rel, sz) ->
                              if id = s then Some (rel, sz) else None)
                            own.slot_ranges
                        with
                        | None -> true (* unknown slot: conservative *)
                        | Some (rel, sz) ->
                            let si =
                              match off with
                              | Some k -> (rel + k, np)
                              | None -> (rel, sz)
                            in
                            ivl_overlap pe_ivl si)
                      (prov_slots p)
                   || (p.D.stack && ivl_overlap pe_ivl (own.frame_lo, -own.frame_lo)))
              then bad "overlapping frame provenance"
              else if
                pf <> own.fname && frame_based
                && o < own.frame_lo
                (* below our frame lives the callees' stack *)
              then bad "may reach a callee frame"
              else if
                p.D.unknown
                &&
                if o >= own.frame_lo && o < 0 then
                  List.exists (fun ivl -> ivl_overlap pe_ivl ivl)
                    (escaped_slot_ivls own)
                else true (* outside own frame: anything escaped *)
              then bad "may alias an escaped object"
              else if p.D.unknown then ok "frame-private"
              else if frame_based then
                if pf = own.fname then ok "distinct-slots" else ok "distinct-frames"
              else ok "stack-vs-data"
          | _ -> bad "unresolved exact address"))
  in
  match (sl, ss) with
  (* -- both exact (store side already in load coordinates) --------- *)
  | SE pa, SE pb -> (
      match (abs_of pa, abs_of pb) with
      | Some a, Some b ->
          if ivl_overlap (a, nl) (b, ns) then bad "overlapping data intervals"
          else ok "exact-interval"
      | _ -> (
          match (pa, pb) with
          | D.P_stack o1, D.P_stack o2 ->
              if ivl_overlap (o1, nl) (o2, ns) then bad "overlapping stack intervals"
              else ok "stack-interval"
          | _ -> ok "stack-vs-data"))
  (* -- exact vs provenance ---------------------------------------- *)
  | SE pe, SP (pf, p) -> exact_vs_prov pe nl pf p ns
  | SP (pf, p), SE pe -> exact_vs_prov pe ns pf p nl
  (* -- both provenance -------------------------------------------- *)
  | SP (f1, p1), SP (f2, p2) ->
      if p1.D.unknown && p2.D.unknown then bad "two untracked pointers"
      else if p1.D.unknown && has_escaped_target f2 p2 then
        bad "may alias an escaped object"
      else if p2.D.unknown && has_escaped_target f1 p1 then
        bad "may alias an escaped object"
      else if
        List.exists
          (fun (g1, o1) ->
            List.exists
              (fun (g2, o2) ->
                g1 = g2
                &&
                match (o1, o2) with
                | Some k1, Some k2 -> ivl_overlap (k1, nl) (k2, ns)
                | _ -> true)
              (prov_globs p2))
          (prov_globs p1)
      then bad "overlapping global provenance"
      else if
        crossed_return
        && (prov_slots p1 <> [] || p1.D.stack)
        && (prov_slots p2 <> [] || p2.D.stack)
      then bad "frame reasoning unsound across a return on this path"
      else if
        f1 = f2
        && (List.exists
              (fun (s1, o1) ->
                List.exists
                  (fun (s2, o2) ->
                    s1 = s2
                    &&
                    match (o1, o2) with
                    | Some k1, Some k2 -> ivl_overlap (k1, nl) (k2, ns)
                    | _ -> true)
                  (prov_slots p2))
              (prov_slots p1)
           || (p1.D.stack && (p2.D.stack || prov_slots p2 <> []))
           || (p2.D.stack && prov_slots p1 <> []))
      then bad "overlapping frame provenance"
      else if p1.D.unknown || p2.D.unknown then ok "not-escaped"
      else if prov_slots p1 <> [] || prov_slots p2 <> [] then
        if f1 = f2 then ok "distinct-slots" else ok "distinct-frames"
      else ok "distinct-objects"

(* ------------------------------------------------------------------ *)
(* Barrier-free region walk                                             *)
(* ------------------------------------------------------------------ *)

(** Per-visited-pc walk state: sp translation [t] such that
    Sp(func(pc)) = Sp(load func) + t, whether any return was crossed on
    some path here, and the BFS parent for witness extraction. *)
type visit = { mutable v_t : int option; mutable v_cr : bool; v_parent : int }

let merge_t a b = match (a, b) with Some x, Some y when x = y -> a | _ -> None

(** sp offset (rel entry) at [pc], if tracked. *)
let sp_at (inp : st option array) pc =
  match inp.(pc) with None -> None | Some st -> stack_off st.regs.(I.sp)

let is_store = function I.Str _ | I.StrR _ | I.Push _ -> true | _ -> false

let is_load = function I.Ldr _ | I.LdrR _ -> true | _ -> false

(** Walk the barrier-free CFG forward from the load at [pc_l]; call [judge]
    on every store encountered (again when its walk state weakens).
    Returns the visit table for witness extraction. *)
let walk_region (img : Img.t) (ctx_of : int -> fctx) (inp : st option array)
    ~(pc_l : int) ~(on_store : int -> int option -> bool -> (int, visit) Hashtbl.t -> unit) :
    unit =
  let visits : (int, visit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push parent q t cr =
    match Hashtbl.find_opt visits q with
    | None ->
        Hashtbl.replace visits q { v_t = t; v_cr = cr; v_parent = parent };
        Queue.add q queue;
        if is_store img.Img.code.(q) then on_store q t cr visits
    | Some v ->
        let t' = merge_t v.v_t t and cr' = v.v_cr || cr in
        if t' <> v.v_t || cr' <> v.v_cr then (
          v.v_t <- t';
          v.v_cr <- cr';
          Queue.add q queue;
          if is_store img.Img.code.(q) then on_store q t' cr' visits)
  in
  (* seed with the load's successors (translation 0: same frame) *)
  List.iter (fun q -> push pc_l q (Some 0) false) (Img.succs img pc_l);
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    let v = Hashtbl.find visits q in
    let t = v.v_t and cr = v.v_cr in
    if not (is_barrier img.Img.code.(q)) then
      match img.Img.code.(q) with
      | I.Bl _ ->
          (* into the callee: Sp(callee) = current sp at the call *)
          let t' =
            match (t, sp_at inp q) with
            | Some t, Some s -> Some (t + s)
            | _ -> None
          in
          push q img.Img.target.(q) t' cr
      | I.Bx_lr ->
          (* back to every return site of this function (context-free) *)
          let f = (ctx_of q).fname in
          List.iter
            (fun r ->
              let t' =
                match (t, sp_at inp (r - 1)) with
                | Some t, Some s -> Some (t - s)
                | _ -> None
              in
              push q r t' true)
            (Img.return_sites img f)
      | _ -> List.iter (fun s -> push q s t cr) (Img.succs img q)
  done

let witness_path visits ~pc_l ~pc_s =
  let rec go acc pc =
    if pc = pc_l then pc :: acc
    else
      match Hashtbl.find_opt visits pc with
      | Some v when v.v_parent <> pc -> go (pc :: acc) v.v_parent
      | _ -> pc :: acc
  in
  go [] pc_s

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

(** Address and width of the access performed by [pc], in the coordinates
    of its own function, from the analysed entry state. *)
let access_of (img : Img.t) (ctx : fctx) (inp : st option array) pc :
    (D.aval * int) option =
  let so = slot_of_off ctx in
  let st =
    match inp.(pc) with Some st -> st | None -> entry_state ()
    (* unreachable-in-analysis pc: conservative arbitrary state *)
  in
  let c k = D.Exact (D.const (Int32.to_int k)) in
  match img.Img.code.(pc) with
  | I.Ldr (w, _, rn, off) | I.Str (w, _, rn, off) ->
      Some (D.av_add ~slot_of_off:so st.regs.(rn) (c off), I.bytes_of_width w)
  | I.LdrR (w, _, rn, rm) | I.StrR (w, _, rn, rm) ->
      Some (D.av_add ~slot_of_off:so st.regs.(rn) st.regs.(rm), I.bytes_of_width w)
  | I.Push rs -> (
      let n = 4 * List.length rs in
      match stack_off st.regs.(I.sp) with
      | Some c -> Some (D.Exact (D.add_const (D.of_base D.Sp) (c - n)), n)
      | None -> Some (D.Ptr { D.unknown_prov with D.stack = true }, n))
  | _ -> None

(** Rebase a store-side address from its own function's coordinates into
    the load function's, given the walk's sp translation. *)
let rebase ~(ctxs : fctx) (t : int option) (v : D.aval) : side =
  match v with
  | D.Exact e -> (
      match D.place_of e with
      | D.P_stack _ | D.P_messy when Absdom.Bmap.mem D.Sp e.D.terms -> (
          match t with
          | Some d ->
              let coeff = Absdom.Bmap.find D.Sp e.D.terms in
              normalise ~ctx:ctxs (D.Exact (D.add_const e (coeff * d)))
          | None ->
              SP (ctxs.fname, D.prov_of_expr ~slot_of_off:(slot_of_off ctxs) e))
      | _ -> normalise ~ctx:ctxs v)
  | _ -> normalise ~ctx:ctxs v

let max_witnesses = 50

(** Judge every barrier-free pair whose load is [pc_l]: walk the region,
    and per store event call [on_judged pc_s jo visits] — [jo] is [None]
    when the store's access is untracked (counted but not judged). *)
let sweep_load (img : Img.t) (ctx_of : int -> fctx)
    (ctx_by_name : string -> fctx) (esc : esc) (inp : st option array)
    ~on_judged (pc_l : int) : unit =
  let ctxl = ctx_of pc_l in
  match access_of img ctxl inp pc_l with
  | None -> ()
  | Some (al, nl) ->
      let sl = normalise ~ctx:ctxl al in
      walk_region img ctx_of inp ~pc_l ~on_store:(fun pc_s t cr visits ->
          let ctxs_ = ctx_of pc_s in
          match access_of img ctxs_ inp pc_s with
          | None -> on_judged pc_s None visits
          | Some (as_, ns) ->
              let ss = rebase ~ctxs:ctxs_ t as_ in
              let j =
                judge img ctx_by_name esc ~ctxl ~crossed_return:cr sl nl ss ns
              in
              on_judged pc_s (Some j) visits)

(* The judging tail of [certify]: escape sweep, structural obligations,
   and the load->store pair sweep, over an already-completed abstract
   interpretation [inp]. *)
let judge_image (img : Img.t) (ctxs : fctx list)
    (ctx_of : int -> fctx) (inp : st option array) : verdict =
  let n = Img.instr_count img in
  let ctx_by_name f = List.find (fun c -> c.fname = f) ctxs in
  let esc = sweep_escapes img ctx_of inp in
  let ob_fails, obligations = check_obligations img ctx_of inp in
  let meta_fails =
    List.filter_map
      (fun c ->
        if c.has_meta then None
        else
          Some
            (Obligation_failed
               {
                 ob_name = "frame-metadata";
                 ob_pc = Some c.lo;
                 ob_msg = "no frame metadata for function " ^ c.fname;
               }))
      ctxs
  in
  let rules : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let count_rule r = Hashtbl.replace rules r (1 + Option.value ~default:0 (Hashtbl.find_opt rules r)) in
  let pairs = ref 0 in
  let witnesses = ref [] in
  let reported : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let loads = ref 0 and stores = ref 0 and barriers = ref 0 in
  Array.iteri
    (fun _ ins ->
      if is_load ins then incr loads;
      if is_store ins then incr stores;
      if is_barrier ins then incr barriers)
    img.Img.code;
  for pc_l = 0 to n - 1 do
    if is_load img.Img.code.(pc_l) then
      sweep_load img ctx_of ctx_by_name esc inp pc_l
        ~on_judged:(fun pc_s jo visits ->
          incr pairs;
          match jo with
          | None -> ()
          | Some j ->
              if j.j_overlap then begin
                if
                  (not (Hashtbl.mem reported (pc_l, pc_s)))
                  && List.length !witnesses < max_witnesses
                then begin
                  Hashtbl.replace reported (pc_l, pc_s) ();
                  witnesses :=
                    {
                      w_load_pc = pc_l;
                      w_load_func = (ctx_of pc_l).fname;
                      w_store_pc = pc_s;
                      w_store_func = (ctx_of pc_s).fname;
                      w_path = witness_path visits ~pc_l ~pc_s;
                      w_reason = j.j_rule;
                    }
                    :: !witnesses
                end
              end
              else count_rule j.j_rule)
  done;
  let stats =
    {
      s_functions = List.length ctxs;
      s_instrs = n;
      s_loads = !loads;
      s_stores = !stores;
      s_barriers = !barriers;
      s_pairs = !pairs;
      s_rules =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) rules []
        |> List.sort compare;
      s_obligations = obligations;
    }
  in
  let rejects =
    meta_fails @ ob_fails @ List.rev_map (fun w -> War_pair w) !witnesses
  in
  if rejects = [] then Certified stats else Rejected (rejects, stats)

let certify (img : Img.t) : verdict =
  let n = Img.instr_count img in
  let ctxs, ctx_of = build_fctxs img in
  let inp : st option array = Array.make (max n 1) None in
  List.iter (fun c -> analyse_function img c inp) ctxs;
  judge_image img ctxs ctx_of inp

(* ------------------------------------------------------------------ *)
(* Incremental re-certification session                                 *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type certify_session = {
    ses_img : Img.t;
    ses_ctxs : fctx list;
    ses_ctx_of : int -> fctx;
    ses_inp : st option array;
    ses_esc : esc;
    ses_preds : int list array;
        (* reverse edges of [walk_region]'s walk relation: p is in
           [ses_preds.(q)] iff the walk at p can push q.  Built from the
           branch structure only, which Ckpt<->Mov substitutions never
           change, so it stays valid for the whole session. *)
  }

  type t = certify_session

  let create (img : Img.t) : t =
    let n = Img.instr_count img in
    let ctxs, ctx_of = build_fctxs img in
    let inp : st option array = Array.make (max n 1) None in
    List.iter (fun c -> analyse_function img c inp) ctxs;
    let preds = Array.make (max n 1) [] in
    Array.iteri
      (fun q ins ->
        let outs =
          match ins with
          | I.Bl _ -> [ img.Img.target.(q) ]
          | I.Bx_lr -> Img.return_sites img (ctx_of q).fname
          | _ -> Img.succs img q
        in
        List.iter
          (fun p -> if p >= 0 && p < n then preds.(p) <- q :: preds.(p))
          outs)
      img.Img.code;
    {
      ses_img = img;
      ses_ctxs = ctxs;
      ses_ctx_of = ctx_of;
      ses_inp = inp;
      (* the escape sweep reads only the cached states and the call/store/
         return instructions, none of which a Ckpt<->Mov substitution
         touches: compute it once *)
      ses_esc = sweep_escapes img ctx_of inp;
      ses_preds = preds;
    }

  (* Pair-free stats: [recheck_removal] verdicts answer one question
     (does the image still certify?), not the full census. *)
  let null_stats =
    {
      s_functions = 0;
      s_instrs = 0;
      s_loads = 0;
      s_stores = 0;
      s_barriers = 0;
      s_pairs = 0;
      s_rules = [];
      s_obligations = [];
    }

  let recheck_removal (s : t) (pc : int) : verdict =
    let img = s.ses_img in
    let n = Img.instr_count img in
    (* The one barrier-dependent structural obligation: a stack-pointer
       increase must sit immediately after a checkpoint (pop conversion).
       The removed barrier may have been exactly that checkpoint. *)
    let pop_broken =
      pc + 1 < n
      &&
      match img.Img.code.(pc + 1) with
      | I.Alu (I.ADD, rd, rn, I.I _) -> rd = I.sp && rn = I.sp
      | _ -> false
    in
    if pop_broken then
      Rejected
        ( [
            Obligation_failed
              {
                ob_name = "sp-discipline";
                ob_pc = Some (pc + 1);
                ob_msg =
                  "stack-pointer increase not immediately preceded by a \
                   checkpoint (pop conversion)";
              };
          ],
          null_stats )
    else begin
      (* Un-barriering [pc] only adds barrier-free paths, and every added
         path passes through [pc]; the abstract states are untouched (the
         [Mov (r0, R r0)] substitute has the identity transfer, like
         [Ckpt]), so every previously judged pair keeps its verdict.  The
         loads whose pair sets can have grown — or whose walk states can
         have weakened — are exactly those reaching [pc] barrier-free:
         find them by reverse BFS and re-sweep only them. *)
      let seen = Hashtbl.create 64 in
      let cands = ref [] in
      let queue = Queue.create () in
      Queue.add pc queue;
      Hashtbl.replace seen pc ();
      while not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        List.iter
          (fun q ->
            if not (Hashtbl.mem seen q) then begin
              Hashtbl.replace seen q ();
              if is_load img.Img.code.(q) then cands := q :: !cands;
              if not (is_barrier img.Img.code.(q)) then Queue.add q queue
            end)
          s.ses_preds.(p)
      done;
      let ctx_by_name f = List.find (fun c -> c.fname = f) s.ses_ctxs in
      let bad = ref [] in
      List.iter
        (fun pc_l ->
          if !bad = [] then
            sweep_load img s.ses_ctx_of ctx_by_name s.ses_esc s.ses_inp pc_l
              ~on_judged:(fun pc_s jo visits ->
                match jo with
                | Some j when j.j_overlap && !bad = [] ->
                    bad :=
                      [
                        War_pair
                          {
                            w_load_pc = pc_l;
                            w_load_func = (s.ses_ctx_of pc_l).fname;
                            w_store_pc = pc_s;
                            w_store_func = (s.ses_ctx_of pc_s).fname;
                            w_path = witness_path visits ~pc_l ~pc_s;
                            w_reason = j.j_rule;
                          };
                      ]
                | _ -> ()))
        !cands;
      if !bad = [] then Certified null_stats else Rejected (!bad, null_stats)
    end

  (* Adding a barrier is certification-monotone: every barrier-free path
     in the new image is a barrier-free path of the old one (the new Ckpt
     only removes paths from the walk), so no pair verdict can flip to
     overlap, and pop conversion cannot break either — O1 requires an
     sp-increase to be PRECEDED by a checkpoint, and a new checkpoint
     never writes sp.  The abstract states are untouched (Ckpt has the
     identity transfer, exactly like the Mov it replaced).  So insertion
     needs only the structural sanity check that the claimed pc really is
     a barrier now; the expensive re-sweep is reserved for removals. *)
  let recheck_insertion (s : t) (pc : int) : verdict =
    let img = s.ses_img in
    let n = Img.instr_count img in
    if pc < 0 || pc >= n || not (is_barrier img.Img.code.(pc)) then
      Rejected
        ( [
            Obligation_failed
              {
                ob_name = "insertion-site";
                ob_pc = Some pc;
                ob_msg = "claimed insertion pc does not hold a barrier";
              };
          ],
          null_stats )
    else Certified null_stats
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let pp_pc (img : Img.t) pc =
  Printf.sprintf "%4d  %-12s %s" pc
    img.Img.func_of_pc.(pc)
    (I.string_of_instr img.Img.code.(pc))

let pp_witness (img : Img.t) (w : pair_witness) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "WAR witness: load at pc %d (%s) -> store at pc %d (%s): %s\n"
    w.w_load_pc w.w_load_func w.w_store_pc w.w_store_func w.w_reason;
  Printf.bprintf b "  barrier-free path:\n";
  List.iter (fun pc -> Printf.bprintf b "    %s\n" (pp_pc img pc)) w.w_path;
  Buffer.contents b

let pp_reject (img : Img.t) = function
  | War_pair w -> pp_witness img w
  | Obligation_failed { ob_name; ob_pc; ob_msg } -> (
      match ob_pc with
      | Some pc ->
          Printf.sprintf "obligation %s failed at pc %d (%s): %s\n" ob_name pc
            (I.string_of_instr img.Img.code.(pc))
            ob_msg
      | None -> Printf.sprintf "obligation %s failed: %s\n" ob_name ob_msg)

let pp_stats (s : stats) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "  %d functions, %d instructions, %d loads, %d stores, %d barriers\n"
    s.s_functions s.s_instrs s.s_loads s.s_stores s.s_barriers;
  Printf.bprintf b "  %d barrier-free load->store pairs judged\n" s.s_pairs;
  if s.s_rules <> [] then begin
    Printf.bprintf b "  disjointness rules used:\n";
    List.iter (fun (r, c) -> Printf.bprintf b "    %-24s %d\n" r c) s.s_rules
  end;
  Printf.bprintf b "  obligations checked:\n";
  List.iter
    (fun o -> Printf.bprintf b "    %-24s %d sites\n" o.ob_name o.ob_sites)
    s.s_obligations;
  Printf.bprintf b
    "  assumptions: A1 no stack overflow; A2 in-bounds pointer arithmetic\n";
  Buffer.contents b

let report (img : Img.t) (v : verdict) : string =
  match v with
  | Certified s ->
      "CERTIFIED: every idempotent region of the image is WAR-free\n" ^ pp_stats s
  | Rejected (rs, s) ->
      Printf.sprintf "REJECTED: %d problem(s) found\n" (List.length rs)
      ^ String.concat "" (List.map (pp_reject img) rs)
      ^ pp_stats s
