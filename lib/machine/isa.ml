(* TM2: a Thumb-2-like virtual ISA for the ARM Cortex-M class target
   (paper §4.1).  Sixteen registers (r13=sp, r14=lr, r15=pc), NZCV flags set
   by [Cmp], conditional execution via [Bc]/[Movc] (modelling IT blocks), and
   a checkpoint instruction standing for the `bl __wario_checkpoint` thunk.

   The same instruction type serves two stages: instruction selection
   produces it over *virtual* registers (arbitrary ints >= 16 plus pseudo
   frame operations); register allocation and frame lowering rewrite it to
   physical registers (0..15) and sp-relative accesses.  [Image]/[Emulator]
   only accept the physical form. *)

type mreg = int

let r0 = 0
let sp = 13
let lr = 14
let pc = 15

(** First virtual register id; isel numbers virtual registers from here. *)
let first_vreg = 16

type width = W8 | W16 | W32 | S8 | S16

let bytes_of_width = function W8 | S8 -> 1 | W16 | S16 -> 2 | W32 -> 4

type cond = EQ | NE | LT | LE | GT | GE | LO | LS | HI | HS | AL

type aluop =
  | ADD | SUB | RSB | MUL | SDIV | UDIV | AND | ORR | EOR | LSL | LSR | ASR

type operand2 = R of mreg | I of int32

type ckpt_cause = Middle_end_war | Back_end_war | Function_entry | Function_exit

let string_of_cause = function
  | Middle_end_war -> "middle-end WAR"
  | Back_end_war -> "back-end WAR"
  | Function_entry -> "function entry"
  | Function_exit -> "function exit"

type instr =
  (* data processing *)
  | Alu of aluop * mreg * mreg * operand2  (** rd = rn OP op2 *)
  | Mov of mreg * operand2
  | Movw32 of mreg * int32  (** movw+movt constant materialisation *)
  | Movc of cond * mreg * operand2  (** IT <c>; mov<c> *)
  | Cmp of mreg * operand2  (** sets NZCV *)
  (* memory *)
  | Ldr of width * mreg * mreg * int32  (** rd = mem[rn + imm] *)
  | LdrR of width * mreg * mreg * mreg  (** rd = mem[rn + rm] *)
  | Str of width * mreg * mreg * int32  (** mem[rn + imm] = rd *)
  | StrR of width * mreg * mreg * mreg
  | AdrData of mreg * string * int32  (** rd = &symbol + off (movw/movt) *)
  | Push of mreg list  (** descending store multiple; low-to-high order *)
  (* control *)
  | B of string
  | Bc of cond * string
  | Bl of string  (** call; writes lr *)
  | Bx_lr  (** return *)
  (* intermittent-computing support *)
  | Ckpt of ckpt_cause * int  (** checkpoint; bit i of the mask = save ri *)
  | Cpsid  (** disable interrupts *)
  | Cpsie  (** enable interrupts *)
  | Svc of int  (** 0: print r0; 1: halt with status r0 *)
  (* pseudos eliminated by frame lowering (virtual stage only) *)
  | FrameAddr of mreg * int  (** rd = sp + offset_of(IR slot id) *)
  | SpillLd of mreg * int  (** rd = spill slot n *)
  | SpillSt of mreg * int  (** spill slot n = rd *)

(** A machine basic block; control may fall through to the next block in
    layout order. *)
type mblock = { mlabel : string; mutable mcode : instr list }

(** Frame layout facts recorded by frame lowering and carried through the
    [Image] into the static certifier (lib/certify).  All offsets are byte
    offsets relative to the *body-time* stack pointer (after the prolog's
    push and allocation). *)
type frame_meta = {
  fm_frame_bytes : int;  (** the prolog's [sub sp] amount (spill + slot area) *)
  fm_spill_bytes : int;  (** register-allocator spills live in [0, fm_spill_bytes) *)
  fm_slots : (int * int * int) list;  (** IR slot id, offset, size *)
  fm_saved : mreg list;
      (** push list, lowest address first; saved registers (and lr) occupy
          [fm_frame_bytes, fm_frame_bytes + 4*|fm_saved|) *)
  fm_params : int;  (** parameter count (r0..r{n-1} are live at entry) *)
  fm_returns : bool;  (** r0 carries a value back to the caller *)
}

type mfunc = {
  mname : string;
  mutable mblocks : mblock list;
  mutable frame_words : int;  (** spill + slot area, in words (after RA) *)
  mutable mframe : frame_meta option;  (** set by frame lowering *)
}

(** Initialised data image of a global symbol. *)
type data = {
  dname : string;
  dsize : int;
  dalign : int;
  dinit : (int * int * int32) list;  (** (offset, byte width, value) *)
}

type mprog = { mfuncs : mfunc list; mdata : data list }

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let is_branch = function
  | B _ | Bc _ | Bx_lr -> true
  | _ -> false

(** Registers read by an instruction (physical stage). *)
let reads = function
  | Alu (_, _, rn, R rm) -> [ rn; rm ]
  | Alu (_, _, rn, I _) -> [ rn ]
  | Mov (_, R rm) -> [ rm ]
  (* conditional move: the old value survives when the condition fails *)
  | Movc (_, rd, R rm) -> [ rd; rm ]
  | Movc (_, rd, I _) -> [ rd ]
  | Mov (_, I _) | Movw32 _ | AdrData _ -> []
  | Cmp (rn, R rm) -> [ rn; rm ]
  | Cmp (rn, I _) -> [ rn ]
  | Ldr (_, _, rn, _) -> [ rn ]
  | LdrR (_, _, rn, rm) -> [ rn; rm ]
  | Str (_, rd, rn, _) -> [ rd; rn ]
  | StrR (_, rd, rn, rm) -> [ rd; rn; rm ]
  | Push rs -> sp :: rs
  | B _ | Bc _ -> []
  | Bl _ -> []
  | Bx_lr -> [ lr ]
  | Ckpt _ -> [ sp ]
  | Cpsid | Cpsie -> []
  | Svc _ -> [ r0 ]
  | FrameAddr _ -> [ sp ]
  | SpillLd _ -> [ sp ]
  | SpillSt (rd, _) -> [ rd; sp ]

(** Register written, if any.  [Movc] conditionally writes: treated as a
    write for liveness (may) and as a read-modify-write for safety. *)
let writes = function
  | Alu (_, rd, _, _) | Mov (rd, _) | Movw32 (rd, _) | Movc (_, rd, _)
  | Ldr (_, rd, _, _) | LdrR (_, rd, _, _) | AdrData (rd, _, _)
  | FrameAddr (rd, _) | SpillLd (rd, _) ->
      Some rd
  | Push _ -> Some sp
  | Bl _ -> Some lr
  | Cmp _ | Str _ | StrR _ | B _ | Bc _ | Bx_lr | Ckpt _ | Cpsid | Cpsie
  | Svc _ | SpillSt _ ->
      None

(* ------------------------------------------------------------------ *)
(* Pretty printing (assembly listing)                                   *)
(* ------------------------------------------------------------------ *)

let string_of_width = function
  | W8 -> "b" | W16 -> "h" | W32 -> "" | S8 -> "sb" | S16 -> "sh"

let string_of_cond = function
  | EQ -> "eq" | NE -> "ne" | LT -> "lt" | LE -> "le" | GT -> "gt"
  | GE -> "ge" | LO -> "lo" | LS -> "ls" | HI -> "hi" | HS -> "hs" | AL -> ""

let string_of_aluop = function
  | ADD -> "add" | SUB -> "sub" | RSB -> "rsb" | MUL -> "mul"
  | SDIV -> "sdiv" | UDIV -> "udiv" | AND -> "and" | ORR -> "orr"
  | EOR -> "eor" | LSL -> "lsl" | LSR -> "lsr" | ASR -> "asr"

let string_of_reg r =
  if r = sp then "sp"
  else if r = lr then "lr"
  else if r = pc then "pc"
  else if r < first_vreg then Printf.sprintf "r%d" r
  else Printf.sprintf "v%d" r

let string_of_op2 = function
  | R r -> string_of_reg r
  | I i -> Printf.sprintf "#%ld" i

let string_of_instr = function
  | Alu (op, rd, rn, o) ->
      Printf.sprintf "%s %s, %s, %s" (string_of_aluop op) (string_of_reg rd)
        (string_of_reg rn) (string_of_op2 o)
  | Mov (rd, o) -> Printf.sprintf "mov %s, %s" (string_of_reg rd) (string_of_op2 o)
  | Movw32 (rd, v) -> Printf.sprintf "movw32 %s, #%ld" (string_of_reg rd) v
  | Movc (c, rd, o) ->
      Printf.sprintf "it %s; mov%s %s, %s" (string_of_cond c) (string_of_cond c)
        (string_of_reg rd) (string_of_op2 o)
  | Cmp (rn, o) -> Printf.sprintf "cmp %s, %s" (string_of_reg rn) (string_of_op2 o)
  | Ldr (w, rd, rn, off) ->
      Printf.sprintf "ldr%s %s, [%s, #%ld]" (string_of_width w)
        (string_of_reg rd) (string_of_reg rn) off
  | LdrR (w, rd, rn, rm) ->
      Printf.sprintf "ldr%s %s, [%s, %s]" (string_of_width w) (string_of_reg rd)
        (string_of_reg rn) (string_of_reg rm)
  | Str (w, rd, rn, off) ->
      Printf.sprintf "str%s %s, [%s, #%ld]" (string_of_width w)
        (string_of_reg rd) (string_of_reg rn) off
  | StrR (w, rd, rn, rm) ->
      Printf.sprintf "str%s %s, [%s, %s]" (string_of_width w) (string_of_reg rd)
        (string_of_reg rn) (string_of_reg rm)
  | AdrData (rd, s, off) ->
      Printf.sprintf "adr %s, %s+%ld" (string_of_reg rd) s off
  | Push rs ->
      Printf.sprintf "push {%s}" (String.concat ", " (List.map string_of_reg rs))
  | B l -> "b " ^ l
  | Bc (c, l) -> Printf.sprintf "b%s %s" (string_of_cond c) l
  | Bl f -> "bl " ^ f
  | Bx_lr -> "bx lr"
  | Ckpt (cause, mask) ->
      Printf.sprintf "ckpt #%s, mask=0x%x" (string_of_cause cause) mask
  | Cpsid -> "cpsid i"
  | Cpsie -> "cpsie i"
  | Svc n -> Printf.sprintf "svc #%d" n
  | FrameAddr (rd, s) -> Printf.sprintf "frameaddr %s, $%d" (string_of_reg rd) s
  | SpillLd (rd, n) -> Printf.sprintf "spill_ld %s, !%d" (string_of_reg rd) n
  | SpillSt (rd, n) -> Printf.sprintf "spill_st %s, !%d" (string_of_reg rd) n

let pp_mfunc fmt (f : mfunc) =
  Format.fprintf fmt "%s: (frame %d words)@." f.mname f.frame_words;
  List.iter
    (fun b ->
      Format.fprintf fmt "%s:@." b.mlabel;
      List.iter (fun i -> Format.fprintf fmt "    %s@." (string_of_instr i)) b.mcode)
    f.mblocks
