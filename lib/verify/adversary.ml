(* Boundary-bisecting adversarial cut search.

   Checkpoint-placement correctness and cost are dominated by worst-case
   power-failure timing: the most expensive place to lose power is one
   cycle before a commit becomes durable (the whole region replays), and
   the most *dangerous* place is inside the commit itself.  Uniform random
   schedules rarely land there; this module goes straight at it.

   Seeded from the continuous reference run's commit geometry
   (Schedule.reference_of_result), each idempotent region is probed with
   single-cut schedules and bisected for the exact active cycle at which
   its commit becomes durable: the largest cut offset whose measured
   re-executed waste still accounts for (almost) all work since the region
   opened.  Every probe is also run through the differential oracle, so a
   cut that provokes divergence — not just waste — is reported as such.

   The search is deterministic (pure bisection, no randomness) and costs
   O(log region-size) oracle runs per region. *)

module P = Wario.Pipeline
module E = Wario_emulator

type worst = {
  a_region : int;  (** region index; the tail (halt-terminated) region last *)
  a_window : int * int;
      (** [(lo, hi)]: the golden-cycle window searched — cuts in [(lo, hi]]
          land inside this region *)
  a_cut : int;  (** worst single-cut offset found *)
  a_reexec : int;  (** re-executed cycles that cut provokes *)
  a_divergence : Oracle.divergence option;
      (** a probe that diverged, if any — the real counterexample *)
  a_probes : int;  (** oracle runs spent on this region *)
}

(* Atomic spends (a multi-cycle instruction, a checkpoint commit) burn the
   remaining budget without retiring, so the measured loss can trail the
   cut offset by up to one atomic action.  64 cycles comfortably covers
   the largest commit. *)
let atomic_slack = 64

type probe_state = {
  golden : Oracle.golden;
  compiled : P.compiled;
  mutable probes : int;
  mutable best_cut : int;
  mutable best_reexec : int;
  mutable diverged : (int * Oracle.divergence) option;
}

(* Probe one single-cut schedule; remember the max-waste and any diverging
   cut.  Returns the observed re-executed cycles (0 when the supply made
   no progress, which a single finite cut cannot actually cause). *)
let probe st cut : int =
  st.probes <- st.probes + 1;
  let result, verdict = Oracle.run_schedule st.golden st.compiled [| cut |] in
  let reexec =
    match result with
    | Some r -> r.E.Emulator.waste.E.Emulator.w_reexec
    | None -> 0
  in
  if reexec > st.best_reexec then begin
    st.best_reexec <- reexec;
    st.best_cut <- cut
  end;
  (match (verdict, st.diverged) with
  | Error d, None -> st.diverged <- Some (cut, d)
  | _ -> ());
  reexec

let bisect_region golden compiled ~region ~lo ~hi : worst =
  let st =
    {
      golden;
      compiled;
      probes = 0;
      best_cut = hi;
      best_reexec = -1;
      diverged = None;
    }
  in
  (* [pre c]: the cut at [c] still discards the whole region — its
     measured loss accounts for all work since the region opened (up to
     one atomic action).  False once the commit is durable. *)
  let pre c = probe st c >= c - lo - atomic_slack in
  (* the adversarial neighbourhood first: just before, at, just after *)
  if hi - 1 > lo then ignore (pre (hi - 1));
  ignore (pre hi);
  let post_ok = pre (hi + 1) in
  if (not post_ok) && hi - lo > 2 then begin
    (* the flip is inside (lo, hi+1]: bisect for the largest still-
       discarding cut, pinning the durability cycle exactly *)
    let l = ref (lo + 1) and r = ref (hi + 1) in
    while !r - !l > 1 do
      let m = !l + ((!r - !l) / 2) in
      if pre m then l := m else r := m
    done
  end;
  {
    a_region = region;
    a_window = (lo, hi);
    a_cut =
      (match st.diverged with Some (cut, _) -> cut | None -> st.best_cut);
    a_reexec = max 0 st.best_reexec;
    a_divergence = Option.map snd st.diverged;
    a_probes = st.probes;
  }

let search ?max_regions (golden : Oracle.golden) (compiled : P.compiled) :
    worst list =
  let ref_ = Schedule.reference_of_result golden.Oracle.g_result in
  let boundaries = ref_.Schedule.boundaries in
  let n = Array.length boundaries in
  let region_windows =
    List.init n (fun i ->
        let lo = if i = 0 then E.Emulator.boot_cycles else boundaries.(i - 1) in
        (i, lo, boundaries.(i)))
  in
  (* the tail region commits nothing — it ends at the halt — but a cut
     inside it still forces a full replay of the tail *)
  let tail =
    let lo = if n = 0 then E.Emulator.boot_cycles else boundaries.(n - 1) in
    let hi = ref_.Schedule.total_cycles - 1 in
    if hi > lo + 1 then [ (n, lo, hi) ] else []
  in
  let windows =
    List.filter (fun (_, lo, hi) -> hi > lo) (region_windows @ tail)
  in
  let windows =
    (* under a probe cap, spend the bisections where the adversary bites:
       the widest regions lose the most work to a worst-case cut.  Ties
       break on region index, and the kept set is re-sorted into region
       order, so the capped search stays deterministic. *)
    match max_regions with
    | Some k when List.length windows > max 1 k ->
        let width (_, lo, hi) = hi - lo in
        List.sort
          (fun (i, _, _) (j, _, _) -> compare (i : int) j)
          (Wario_support.Util.take (max 1 k)
             (List.sort
                (fun ((i, _, _) as a) ((j, _, _) as b) ->
                  match compare (width b) (width a) with
                  | 0 -> compare (i : int) j
                  | c -> c)
                windows))
    | _ -> windows
  in
  List.map
    (fun (region, lo, hi) -> bisect_region golden compiled ~region ~lo ~hi)
    windows

let schedules (ws : worst list) : int array list =
  List.map (fun w -> [| w.a_cut |]) ws

let total_probes (ws : worst list) : int =
  List.fold_left (fun acc w -> acc + w.a_probes) 0 ws
