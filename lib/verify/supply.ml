(* Harvester-style power-supply models for the verification campaign.

   The sweep's splitmix64 schedules (Schedule.random_schedules) explore cut
   *positions*; they say nothing about the temporal texture of a real
   energy-harvesting source.  This module closes that gap: every model
   synthesizes a finite sequence of on-durations — an RF-style bursty
   profile, an indoor-solar profile, a two-state Markov (bursty) process,
   or a replayed trace file — scaled so the periods actually land inside
   the program under test, and reproducible byte-for-byte from an [int64]
   seed.

   Composition with the existing injection machinery is by construction:
   [supply] wraps the durations in [Power.Schedule], so power stays on once
   the synthesized window is exhausted and every injected run terminates —
   exactly the contract the crash-consistency oracle already relies on.
   (To model a *depleting* source instead, feed [durations] to
   [Power.Trace_once].) *)

module E = Wario_emulator

type model =
  | Rf  (** bursty RF-harvester profile (many short periods, rare long) *)
  | Solar  (** steadier indoor-solar profile (long, slowly varying) *)
  | Markov of int
      (** two-state bursty process; the payload is the percent chance of
          switching from the short-burst state to the long-window state
          after each period (the long state falls back with 50%) *)
  | File of string  (** on-durations replayed from a trace file *)

let name = function
  | Rf -> "rf"
  | Solar -> "solar"
  | Markov p -> Printf.sprintf "markov:%d" p
  | File path -> "file:" ^ path

let of_name (s : string) : (model, string) result =
  match String.split_on_char ':' s with
  | [ "rf" ] -> Ok Rf
  | [ "solar" ] -> Ok Solar
  | [ "markov" ] -> Ok (Markov 10)
  | [ "markov"; p ] -> (
      match int_of_string_opt p with
      | Some p when p >= 0 && p <= 100 -> Ok (Markov p)
      | _ -> Error (Printf.sprintf "markov: bad percentage %S" p))
  | "file" :: rest when rest <> [] ->
      (* the path may itself contain ':' *)
      Ok (File (String.concat ":" rest))
  | _ ->
      Error
        (Printf.sprintf
           "unknown supply model %S (rf | solar | markov[:PCT] | file:PATH)" s)

let builtin = [ Rf; Solar; Markov 10; Markov 40 ]

(* ------------------------------------------------------------------ *)
(* Trace files                                                          *)
(* ------------------------------------------------------------------ *)

(* One on-duration (in cycles) per line; blank lines and '#' comments are
   skipped.  This is the interchange format for measured harvester
   recordings (e.g. Mementos-style traces reduced to on-durations). *)

let load_file (path : string) : (int array, string) result =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let out = ref [] and lineno = ref 0 and err = ref None in
      (try
         while !err = None do
           let line = input_line ic in
           incr lineno;
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           let line = String.trim line in
           if line <> "" then
             match int_of_string_opt line with
             | Some d when d > 0 -> out := d :: !out
             | Some d ->
                 err :=
                   Some
                     (Printf.sprintf "%s:%d: non-positive on-duration %d" path
                        !lineno d)
             | None ->
                 err :=
                   Some
                     (Printf.sprintf "%s:%d: not an integer: %S" path !lineno
                        line)
         done
       with End_of_file -> ());
      close_in ic;
      (match !err with
      | Some e -> Error e
      | None -> (
          match !out with
          | [] -> Error (path ^ ": empty trace")
          | ds -> Ok (Array.of_list (List.rev ds))))

let save_file (path : string) (durations : int array) : unit =
  let oc = open_out path in
  output_string oc "# on-durations in active cycles, one per line\n";
  Array.iter (fun d -> Printf.fprintf oc "%d\n" d) durations;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Synthesis                                                            *)
(* ------------------------------------------------------------------ *)

(* Hard cap on synthesized periods: a pathological (mean_on, total) pair
   must not allocate without bound.  Past the cap the schedule simply
   ends — under [Power.Schedule] that means continuous power, so the run
   still terminates. *)
let max_periods = 16_384

(* Rescale a raw profile so its mean on-duration becomes [mean_on] (every
   period stays >= 1): harvester recordings are measured in real cycles of
   real benchmarks, while the program under test may be a thousand-cycle
   micro — only the *shape* of the distribution transfers. *)
let scale_to ~mean_on (raw : int array) : int array =
  let n = Array.length raw in
  let sum = Array.fold_left ( + ) 0 raw in
  let m = max 1 (sum / max 1 n) in
  Array.map (fun d -> max 1 (d * mean_on / m)) raw

(* Periods drawn from [next] until the cumulative on-time exceeds [total]
   (so the window spans the whole golden run) or the cap is hit. *)
let cover ~total (next : unit -> int) : int array =
  let out = ref [] and sum = ref 0 and k = ref 0 in
  while !sum <= total && !k < max_periods do
    let d = max 1 (next ()) in
    out := d :: !out;
    sum := !sum + d;
    incr k
  done;
  Array.of_list (List.rev !out)

let wrap_profile ~total (profile : int array) : int array =
  let n = Array.length profile in
  let i = ref 0 in
  cover ~total (fun () ->
      let d = profile.(!i mod n) in
      incr i;
      d)

(* Derive a 30-bit Lcg seed for the synthetic trace generators from the
   model's 64-bit seed, through the splitmix stream so that nearby seeds
   do not produce nearby profiles. *)
let lcg_seed (seed : int64) : int =
  Int64.to_int (Schedule.next_int64 (Schedule.of_seed seed)) land 0x3fffffff

let markov_durations ~p_long g ~mean_on ~total : int array =
  (* Two states sized around [mean_on]: short bursts a quarter of the
     target mean, long windows four times it — the RF regime's "device
     near the reader" alternation as a Markov chain. *)
  let on_short = max 1 (mean_on / 4) and on_long = max 2 (mean_on * 4) in
  let long = ref false in
  cover ~total (fun () ->
      let d =
        if !long then (on_long / 2) + 1 + Schedule.int g ~bound:on_long
        else 1 + Schedule.int g ~bound:(2 * on_short)
      in
      (if !long then begin
         if Schedule.int g ~bound:100 < 50 then long := false
       end
       else if Schedule.int g ~bound:100 < p_long then long := true);
      d)

let durations (model : model) ~seed ~mean_on ~total : int array =
  if mean_on < 1 then
    invalid_arg (Printf.sprintf "Supply.durations: mean_on %d < 1" mean_on);
  if total < 0 then
    invalid_arg (Printf.sprintf "Supply.durations: negative total %d" total);
  match model with
  | Rf ->
      wrap_profile ~total
        (scale_to ~mean_on (E.Traces.rf_trace ~seed:(lcg_seed seed) ~n:1024 ()))
  | Solar ->
      wrap_profile ~total
        (scale_to ~mean_on
           (E.Traces.solar_trace ~seed:(lcg_seed seed) ~n:512 ()))
  | Markov p_long ->
      markov_durations ~p_long (Schedule.of_seed seed) ~mean_on ~total
  | File path -> (
      match load_file path with
      | Error e -> invalid_arg ("Supply.durations: " ^ e)
      | Ok raw -> wrap_profile ~total (scale_to ~mean_on raw))

let supply (model : model) ~seed ~mean_on ~total : E.Power.supply =
  E.Power.Schedule (durations model ~seed ~mean_on ~total)
