(* Crash-consistency oracle (paper §5.1.1, automated).

   WARio's correctness claim is idempotence: replaying from the last
   committed checkpoint after a power failure must yield the same final
   state as continuous execution.  The oracle checks this differentially:
   the continuous run of the same compiled image is the golden reference,
   and an injected run diverges if any of

   - the console output differs (including double-emitted values),
   - the exit code differs,
   - the digest of final non-volatile memory differs (checkpoint double
     buffer excluded: its sequence numbers legitimately depend on how
     often power failed),
   - the WAR verifier flagged a violation, or
   - the supply admits no forward progress

   holds.  Runs are driven through the emulator's stepping API so the
   final memory image is observable. *)

module P = Wario.Pipeline
module E = Wario_emulator

type golden = {
  g_output : int32 list;
  g_exit : int32;
  g_digest : int64;
  g_result : E.Emulator.result;
}

type divergence =
  | Output_mismatch of { got : int32 list; want : int32 list }
  | Double_output of { got : int32 list; want : int32 list }
      (** the golden output re-emitted in part: committed output replayed *)
  | Exit_mismatch of { got : int32; want : int32 }
  | Memory_mismatch of { got : int64; want : int64 }
  | War_violations of E.Emulator.violation list
  | No_progress of string

(* Driven through [run_batch] so an [engine] selection reaches the
   emulator; oracle instances keep the WAR verifier on, which makes every
   engine fall back to the instrumented reference path — the selection is
   still threaded end to end so campaign reports can be asserted
   byte-identical across engines (the CI smoke). *)
let run_to_halt ?engine emu =
  while not (E.Emulator.halted emu) do
    ignore (E.Emulator.run_batch ?engine emu 4096)
  done

let golden ?engine (c : P.compiled) : golden =
  let emu = E.Emulator.create c.P.image in
  run_to_halt ?engine emu;
  let r = E.Emulator.result emu in
  {
    g_output = r.E.Emulator.output;
    g_exit = r.E.Emulator.exit_code;
    g_digest = E.Emulator.nv_digest emu;
    g_result = r;
  }

(* Violations of the golden run itself: a broken checkpoint schedule shows
   up even without any injected failure. *)
let golden_violations (g : golden) = g.g_result.E.Emulator.violations

(* [want] embedded as a subsequence of a strictly longer [got]: some
   committed output was emitted again during replay. *)
let is_double_emission ~want ~got =
  let rec sub w g =
    match (w, g) with
    | [], _ -> true
    | _, [] -> false
    | x :: w', y :: g' -> if x = y then sub w' g' else sub w g'
  in
  List.length got > List.length want && sub want got

(* Inject an arbitrary supply and return both the verdict and (when the
   run terminated) the full emulator result: the adversarial cut search
   maximizes [result.waste.w_reexec] across probes, so the measurement and
   the differential check must come from the same run. *)
let run_supply ?engine (g : golden) (c : P.compiled) (supply : E.Power.supply)
    : E.Emulator.result option * (unit, divergence) result =
  match
    let emu = E.Emulator.create ~supply c.P.image in
    run_to_halt ?engine emu;
    (E.Emulator.result emu, E.Emulator.nv_digest emu)
  with
  | exception E.Emulator.No_forward_progress s -> (None, Error (No_progress s))
  | r, digest ->
      let verdict =
        if r.E.Emulator.violations <> [] then
          Error (War_violations r.E.Emulator.violations)
        else if r.E.Emulator.output <> g.g_output then
          if is_double_emission ~want:g.g_output ~got:r.E.Emulator.output then
            Error
              (Double_output { got = r.E.Emulator.output; want = g.g_output })
          else
            Error
              (Output_mismatch { got = r.E.Emulator.output; want = g.g_output })
        else if not (Int32.equal r.E.Emulator.exit_code g.g_exit) then
          Error
            (Exit_mismatch { got = r.E.Emulator.exit_code; want = g.g_exit })
        else if not (Int64.equal digest g.g_digest) then
          Error (Memory_mismatch { got = digest; want = g.g_digest })
        else Ok ()
      in
      (Some r, verdict)

let run_schedule ?engine (g : golden) (c : P.compiled) (cuts : int array) =
  run_supply ?engine g c (E.Power.Schedule cuts)

let check_schedule ?engine (g : golden) (c : P.compiled) (cuts : int array) :
    (unit, divergence) result =
  snd (run_schedule ?engine g c cuts)

let pp_outputs vs =
  "[" ^ String.concat "," (List.map Int32.to_string vs) ^ "]"

let string_of_divergence = function
  | Output_mismatch { got; want } ->
      Printf.sprintf "output mismatch: got %s, want %s" (pp_outputs got)
        (pp_outputs want)
  | Double_output { got; want } ->
      Printf.sprintf "double-emitted output: got %s, want %s" (pp_outputs got)
        (pp_outputs want)
  | Exit_mismatch { got; want } ->
      Printf.sprintf "exit code mismatch: got %ld, want %ld" got want
  | Memory_mismatch { got; want } ->
      Printf.sprintf "non-volatile memory digest mismatch: got %Lx, want %Lx"
        got want
  | War_violations vs ->
      Printf.sprintf "%d WAR violation(s); first: %s at 0x%x in %s"
        (List.length vs)
        (List.hd vs).E.Emulator.v_instr (List.hd vs).E.Emulator.v_addr
        (List.hd vs).E.Emulator.v_func
  | No_progress s -> Printf.sprintf "no forward progress under %s" s
