(** Crash-consistency oracle: differential checking of injected-failure
    runs against the continuous run of the same compiled image (the
    automation of the paper's §5.1.1 output-equivalence argument). *)

type golden = {
  g_output : int32 list;
  g_exit : int32;
  g_digest : int64;  (** non-volatile memory digest, checkpoint area excluded *)
  g_result : Wario_emulator.Emulator.result;
}

type divergence =
  | Output_mismatch of { got : int32 list; want : int32 list }
  | Double_output of { got : int32 list; want : int32 list }
      (** the golden output embedded in a longer one: committed output was
          emitted again during replay *)
  | Exit_mismatch of { got : int32; want : int32 }
  | Memory_mismatch of { got : int64; want : int64 }
  | War_violations of Wario_emulator.Emulator.violation list
  | No_progress of string

val golden :
  ?engine:Wario_emulator.Emulator.engine -> Wario.Pipeline.compiled -> golden
(** Continuous-power reference run (via the stepping API, so the final
    memory digest is captured).  [engine] (default [Auto]) is threaded to
    {!Wario_emulator.Emulator.run_batch}; oracle instances keep the WAR
    verifier on, so every engine resolves to the instrumented reference
    path and the verdicts are engine-independent by construction. *)

val golden_violations :
  golden -> Wario_emulator.Emulator.violation list
(** WAR violations of the reference run itself — a broken checkpoint
    schedule is caught even before any failure is injected. *)

val is_double_emission : want:int32 list -> got:int32 list -> bool
(** [want] embedded as a subsequence of a strictly longer [got]: committed
    output re-emitted during replay.  Exposed for the test suite. *)

val check_schedule :
  ?engine:Wario_emulator.Emulator.engine ->
  golden ->
  Wario.Pipeline.compiled ->
  int array ->
  (unit, divergence) result
(** Run [c]'s image with power cut after each scheduled on-duration and
    compare output, exit code, final memory digest and WAR-verifier
    verdict against the golden run. *)

val run_schedule :
  ?engine:Wario_emulator.Emulator.engine ->
  golden ->
  Wario.Pipeline.compiled ->
  int array ->
  Wario_emulator.Emulator.result option * (unit, divergence) result
(** Like {!check_schedule} but also returns the injected run's full result
    record ([None] when the supply admitted no forward progress) — the
    adversarial cut search reads [waste.w_reexec] from the same run it
    judges. *)

val run_supply :
  ?engine:Wario_emulator.Emulator.engine ->
  golden ->
  Wario.Pipeline.compiled ->
  Wario_emulator.Power.supply ->
  Wario_emulator.Emulator.result option * (unit, divergence) result
(** {!run_schedule} generalized to any supply (trace-driven and stochastic
    models included). *)

val string_of_divergence : divergence -> string
