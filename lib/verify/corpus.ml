(* The persisted regression corpus.

   Every counterexample the campaign finds and shrinks is worth keeping:
   replaying it is the cheapest possible regression test for the whole
   pipeline+verifier stack.  A corpus is a directory of S-expression entry
   files, one entry per file:

     (entry (expect fail) (supply markov:10) (found-by campaign)
            (program-hash 1a2b3c4d5e6f7788)
            (repro (workload byte_ops) (env wario) (unroll 8)
                   (drop-ckpt 1) (cuts 413) (seed 1)))

   [expect] gives the entry its polarity:
   - [fail]: the verifier must STILL flag this replay — these are detector
     regression tests (e.g. sabotaged builds the harness must keep
     catching);
   - [pass]: the replay must stay green — these are fixed bugs that must
     not come back.

   [program-hash] fingerprints what the reproducer was recorded against
   (environment, pipeline options, workload source); a mismatch at replay
   time marks the entry STALE in the report (the program changed — the
   entry may no longer mean what it did) without deciding the gate by
   itself.

   Files are content-addressed (FNV-1a of the canonical entry text), so
   re-adding an identical counterexample is a no-op: the campaign can dump
   every shrunk failure it sees and the corpus stays deduplicated. *)

module P = Wario.Pipeline
module U = Wario_support.Util

type expect = Must_fail | Must_pass

type entry = {
  e_repro : Repro.t;
  e_expect : expect;
  e_supply : string option;  (** Supply.name of the generator that found it *)
  e_found_by : string option;  (** e.g. ["campaign"], ["adversary"] *)
  e_program_hash : string option;
      (** fingerprint of (env, options, source) at recording time: 32 hex
          chars (the pipeline's canonical image-stage cache key), or a
          legacy ≤16-hex FNV digest on entries recorded before the cache
          existed *)
}

(* ------------------------------------------------------------------ *)
(* Program fingerprint                                                  *)
(* ------------------------------------------------------------------ *)

(* The fingerprint is the pipeline's own image-stage cache key: a
   canonical hash of the replay's inputs — source text, environment and
   EVERY option field, chained through the per-stage key derivation the
   compile cache uses (Pipeline.stage_keys).  One fingerprint scheme for
   the whole repo: whatever would make the cache recompile also marks a
   corpus entry stale.  Stable across runs (FNV over canonical bytes);
   the cache format version participates, so a payload-format bump
   retires old fingerprints to STALE instead of silently matching. *)
let program_hash (r : Repro.t) : string option =
  match Repro.source_of_workload r.Repro.workload with
  | Error _ -> None
  | Ok source ->
      let opts = Repro.options_of r in
      Some (Wario.Cache.Key.to_hex (P.image_key ~opts r.Repro.env source))

(* The pre-cache digest (entries recorded before the stage-key scheme):
   FNV over environment, source and the three option fields a reproducer
   carried back then.  Kept only to judge staleness of legacy entries. *)
let legacy_program_hash (r : Repro.t) : int64 option =
  match Repro.source_of_workload r.Repro.workload with
  | Error _ -> None
  | Ok source ->
      let opts = Repro.options_of r in
      let canon =
        String.concat "\x00"
          [
            P.environment_name r.Repro.env;
            source;
            string_of_int opts.P.unroll_factor;
            (match opts.P.max_region with
            | None -> "-"
            | Some m -> string_of_int m);
            (match opts.P.drop_middle_ckpt with
            | None -> "-"
            | Some n -> string_of_int n);
          ]
      in
      Some (U.fnv1a64 canon)

let is_legacy_hash (h : string) = String.length h <> 32

let make ?supply ?found_by ~(expect : expect) (repro : Repro.t) : entry =
  {
    e_repro = repro;
    e_expect = expect;
    e_supply = supply;
    e_found_by = found_by;
    e_program_hash = program_hash repro;
  }

(* ------------------------------------------------------------------ *)
(* Printing / parsing                                                   *)
(* ------------------------------------------------------------------ *)

let to_string (e : entry) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "(entry";
  Buffer.add_string buf
    (Printf.sprintf " (expect %s)"
       (match e.e_expect with Must_fail -> "fail" | Must_pass -> "pass"));
  (match e.e_supply with
  | None -> ()
  | Some s -> Buffer.add_string buf (Printf.sprintf " (supply %s)" s));
  (match e.e_found_by with
  | None -> ()
  | Some s -> Buffer.add_string buf (Printf.sprintf " (found-by %s)" s));
  (match e.e_program_hash with
  | None -> ()
  | Some h -> Buffer.add_string buf (Printf.sprintf " (program-hash %s)" h));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Repro.to_string e.e_repro);
  Buffer.add_char buf ')';
  Buffer.contents buf

let of_string (s : string) : (entry, string) result =
  match Repro.parse s with
  | Error e -> Error e
  | Ok (Repro.List (Repro.Atom "entry" :: fields)) -> (
      let expect = ref None
      and supply = ref None
      and found_by = ref None
      and hash = ref None
      and repro = ref None
      and err = ref None in
      let fail msg = if !err = None then err := Some msg in
      List.iter
        (function
          | Repro.List [ Repro.Atom "expect"; Repro.Atom "fail" ] ->
              expect := Some Must_fail
          | Repro.List [ Repro.Atom "expect"; Repro.Atom "pass" ] ->
              expect := Some Must_pass
          | Repro.List [ Repro.Atom "expect"; x ] ->
              fail ("expect: want fail|pass, got " ^ Repro.sexp_to_string x)
          | Repro.List [ Repro.Atom "supply"; Repro.Atom s ] ->
              supply := Some s
          | Repro.List [ Repro.Atom "found-by"; Repro.Atom s ] ->
              found_by := Some s
          | Repro.List [ Repro.Atom "program-hash"; Repro.Atom h ] ->
              let hex_ok =
                h <> ""
                && String.for_all
                     (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
                     h
              in
              if not hex_ok then
                fail ("program-hash: not a hex digest: " ^ h)
              else begin
                if is_legacy_hash h then
                  Printf.eprintf
                    "corpus: deprecated legacy program-hash %s (re-save the \
                     entry to upgrade it to the 32-hex stage-key format)\n%!"
                    h;
                hash := Some h
              end
          | Repro.List (Repro.Atom "repro" :: _) as sx -> (
              match Repro.of_sexp sx with
              | Ok r -> repro := Some r
              | Error e -> fail ("repro: " ^ e))
          | Repro.List (Repro.Atom f :: _) -> fail ("unknown field " ^ f)
          | sx -> fail ("malformed field " ^ Repro.sexp_to_string sx))
        fields;
      match (!err, !expect, !repro) with
      | Some e, _, _ -> Error e
      | None, None, _ -> Error "missing field expect"
      | None, _, None -> Error "missing field repro"
      | None, Some expect, Some repro ->
          Ok
            {
              e_repro = repro;
              e_expect = expect;
              e_supply = !supply;
              e_found_by = !found_by;
              e_program_hash = !hash;
            })
  | Ok _ -> Error "expected (entry ...)"

(* ------------------------------------------------------------------ *)
(* Directory persistence                                                *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

let filename (e : entry) : string =
  (* content-addressed: identical entries collide on purpose *)
  Printf.sprintf "%s-%s-%08Lx.repro"
    (sanitize e.e_repro.Repro.workload)
    (sanitize (P.environment_name e.e_repro.Repro.env))
    (Int64.logand (U.fnv1a64 (to_string e)) 0xffffffffL)

let save ~(dir : string) (e : entry) : [ `Added of string | `Exists of string ]
    =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  if Sys.file_exists path then `Exists path
  else begin
    let oc = open_out path in
    output_string oc (to_string e);
    output_char oc '\n';
    close_out oc;
    `Added path
  end

let load_dir (dir : string) :
    (string * entry) list * (string * string) list =
  match Sys.readdir dir with
  | exception Sys_error e -> ([], [ (dir, e) ])
  | names ->
      let names =
        List.filter
          (fun n -> Filename.check_suffix n ".repro")
          (Array.to_list names)
        |> List.sort compare
      in
      List.fold_left
        (fun (oks, errs) name ->
          let path = Filename.concat dir name in
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let body = really_input_string ic n in
          close_in ic;
          match of_string (String.trim body) with
          | Ok e -> (oks @ [ (path, e) ], errs)
          | Error msg -> (oks, errs @ [ (path, msg) ]))
        ([], []) names

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_ok : bool;  (** expectation upheld *)
  v_stale : bool;  (** program hash no longer matches the workload *)
  v_message : string;
}

let replay (e : entry) : verdict =
  let stale =
    match e.e_program_hash with
    | None -> false
    | Some recorded when is_legacy_hash recorded -> (
        (* legacy entry: judge staleness by the scheme it was recorded
           under, so pre-cache corpora keep replaying as non-stale *)
        match legacy_program_hash e.e_repro with
        | Some now -> recorded <> Printf.sprintf "%Lx" now
        | None -> false)
    | Some recorded -> (
        match program_hash e.e_repro with
        | Some now -> recorded <> now
        | None -> false)
  in
  let ok, message =
    match (Harness.replay e.e_repro, e.e_expect) with
    | Ok (), Must_pass -> (true, "replay green, as expected")
    | Error d, Must_fail -> (true, "still caught: " ^ d)
    | Ok (), Must_fail ->
        (false, "expected the verifier to flag this replay, but it passed")
    | Error d, Must_pass -> (false, "regressed: " ^ d)
  in
  {
    v_ok = ok;
    v_stale = stale;
    v_message =
      (if stale then message ^ " [STALE: program changed since recording]"
       else message);
  }
