(** Boundary-bisecting adversarial cut search: for every idempotent region
    of the continuous reference run, bisect (with single-cut oracle
    probes) for the worst-case power-failure cycle — the largest cut
    offset that still discards the whole region, i.e. the exact cycle at
    which the region's commit becomes durable.  Probes that provoke a
    differential divergence are surfaced as counterexamples.
    Deterministic: pure bisection over the commit geometry, no
    randomness. *)

type worst = {
  a_region : int;  (** region index; the tail (halt-terminated) region last *)
  a_window : int * int;
      (** [(lo, hi)]: cuts in [(lo, hi]] land inside this region (golden
          active-cycle offsets) *)
  a_cut : int;  (** worst single-cut offset found *)
  a_reexec : int;  (** re-executed cycles that cut provokes *)
  a_divergence : Oracle.divergence option;
      (** a probe that diverged, if any — the real counterexample *)
  a_probes : int;  (** oracle runs spent on this region *)
}

val atomic_slack : int
(** Measured loss may trail the cut offset by one atomic spend (largest:
    a checkpoint commit); the bisection predicate allows this slack. *)

val search :
  ?max_regions:int -> Oracle.golden -> Wario.Pipeline.compiled -> worst list
(** One {!worst} per region with a non-empty cut window, in region order
    (boot-to-first-commit first, the halt-terminated tail last).  Costs
    O(log region-size) oracle runs per region.  [max_regions] caps the
    search to the widest regions (where a worst-case cut loses the most
    work) — dense-commit environments checkpoint every few cycles, and
    bisecting tens of thousands of tiny regions buys nothing; the capped
    selection is deterministic (width-descending, index tie-break). *)

val schedules : worst list -> int array list
(** The worst cuts as single-cut injection schedules. *)

val total_probes : worst list -> int
