(* One-line S-expression reproducers for failing injection schedules.

     (repro (workload rmw_loop) (env wario) (unroll 8) (cuts 413 879)
            (seed 42))

   Every field needed to replay deterministically is carried: the workload
   name (a micro program or a paper benchmark), the software environment,
   the pipeline options that shape the checkpoint schedule (unroll factor,
   optional region bound, optional test-only sabotage) and the cut
   schedule itself.  [seed] is bookkeeping: the sweep seed that found the
   failure. *)

module P = Wario.Pipeline

type t = {
  workload : string;
  env : P.environment;
  unroll : int;
  max_region : int option;
  drop_ckpt : int option;  (** test-only sabotage replay (see Pipeline) *)
  cuts : int array;
  seed : int64 option;  (** sweep seed that found the failure *)
}

let make ?(unroll = P.default_options.P.unroll_factor) ?max_region ?drop_ckpt
    ?seed ~workload ~env cuts =
  { workload; env; unroll; max_region; drop_ckpt; cuts; seed }

let options_of (r : t) : P.options =
  {
    P.default_options with
    P.unroll_factor = r.unroll;
    max_region = r.max_region;
    drop_middle_ckpt = r.drop_ckpt;
  }

let source_of_workload (name : string) : (string, string) result =
  match
    List.find_opt (fun (m : Wario_workloads.Micro.t) -> m.name = name)
      Wario_workloads.Micro.all
  with
  | Some m -> Ok m.Wario_workloads.Micro.source
  | None -> (
      match
        List.find_opt
          (fun (b : Wario_workloads.Programs.benchmark) -> b.name = name)
          Wario_workloads.Programs.all
      with
      | Some b -> Ok b.Wario_workloads.Programs.source
      | None -> Error (Printf.sprintf "unknown workload %s" name))

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)
(* ------------------------------------------------------------------ *)

let to_string (r : t) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "(repro";
  Buffer.add_string buf (Printf.sprintf " (workload %s)" r.workload);
  Buffer.add_string buf
    (Printf.sprintf " (env %s)" (P.environment_name r.env));
  Buffer.add_string buf (Printf.sprintf " (unroll %d)" r.unroll);
  (match r.max_region with
  | None -> ()
  | Some m -> Buffer.add_string buf (Printf.sprintf " (max-region %d)" m));
  (match r.drop_ckpt with
  | None -> ()
  | Some n -> Buffer.add_string buf (Printf.sprintf " (drop-ckpt %d)" n));
  Buffer.add_string buf " (cuts";
  Array.iter (fun c -> Buffer.add_string buf (Printf.sprintf " %d" c)) r.cuts;
  Buffer.add_string buf ")";
  (match r.seed with
  | None -> ()
  | Some s -> Buffer.add_string buf (Printf.sprintf " (seed %Ld)" s));
  Buffer.add_string buf ")";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (a minimal S-expression reader; no external deps)            *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let tokenize (s : string) : string list =
  let toks = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | '(' | ')' ->
          flush ();
          toks := String.make 1 ch :: !toks
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !toks

let parse_sexp (s : string) : sexp =
  let rec one = function
    | [] -> raise (Parse_error "unexpected end of input")
    | "(" :: rest ->
        let items, rest = many rest in
        (List items, rest)
    | ")" :: _ -> raise (Parse_error "unexpected )")
    | a :: rest -> (Atom a, rest)
  and many = function
    | ")" :: rest -> ([], rest)
    | [] -> raise (Parse_error "unbalanced parentheses")
    | toks ->
        let x, rest = one toks in
        let xs, rest = many rest in
        (x :: xs, rest)
  in
  match one (tokenize s) with
  | x, [] -> x
  | _, t :: _ -> raise (Parse_error ("trailing input at " ^ t))

let int_of_atom ctx = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some i -> i
      | None -> raise (Parse_error (ctx ^ ": not an integer: " ^ a)))
  | List _ -> raise (Parse_error (ctx ^ ": expected an integer"))

let parse (s : string) : (sexp, string) result =
  match parse_sexp s with
  | sx -> Ok sx
  | exception Parse_error msg -> Error msg

let rec sexp_to_string = function
  | Atom a -> a
  | List items -> "(" ^ String.concat " " (List.map sexp_to_string items) ^ ")"

let of_sexp (sx : sexp) : (t, string) result =
  try
    match sx with
    | List (Atom "repro" :: fields) ->
        let workload = ref None and env = ref None in
        let unroll = ref P.default_options.P.unroll_factor in
        let max_region = ref None and drop_ckpt = ref None in
        let cuts = ref [||] and seed = ref None in
        List.iter
          (function
            | List [ Atom "workload"; Atom w ] -> workload := Some w
            | List [ Atom "env"; Atom e ] -> (
                match P.environment_of_name e with
                | Some v -> env := Some v
                | None -> raise (Parse_error ("unknown environment " ^ e)))
            | List [ Atom "unroll"; v ] -> unroll := int_of_atom "unroll" v
            | List [ Atom "max-region"; v ] ->
                max_region := Some (int_of_atom "max-region" v)
            | List [ Atom "drop-ckpt"; v ] ->
                drop_ckpt := Some (int_of_atom "drop-ckpt" v)
            | List (Atom "cuts" :: vs) ->
                cuts :=
                  Array.of_list (List.map (int_of_atom "cuts") vs)
            | List [ Atom "seed"; Atom v ] -> (
                match Int64.of_string_opt v with
                | Some s -> seed := Some s
                | None -> raise (Parse_error ("seed: not an integer: " ^ v)))
            | List (Atom f :: _) -> raise (Parse_error ("unknown field " ^ f))
            | _ -> raise (Parse_error "malformed field"))
          fields;
        let require name = function
          | Some v -> v
          | None -> raise (Parse_error ("missing field " ^ name))
        in
        Ok
          {
            workload = require "workload" !workload;
            env = require "env" !env;
            unroll = !unroll;
            max_region = !max_region;
            drop_ckpt = !drop_ckpt;
            cuts = !cuts;
            seed = !seed;
          }
    | _ -> Error "expected (repro ...)"
  with Parse_error msg -> Error msg

let of_string (s : string) : (t, string) result =
  match parse s with Error e -> Error e | Ok sx -> of_sexp sx
