(** The persisted regression corpus: a directory of S-expression entries,
    each a shrunk reproducer plus metadata (expectation polarity, the
    supply model that found it, a program fingerprint).  Content-addressed
    file names keep the corpus deduplicated; [iclang verify --corpus DIR]
    replays every entry deterministically and CI gates on the result. *)

type expect =
  | Must_fail
      (** the verifier must still flag this replay (detector regression
          test — e.g. a sabotaged build the harness must keep catching) *)
  | Must_pass  (** a fixed bug that must stay fixed: replay must be green *)

type entry = {
  e_repro : Repro.t;
  e_expect : expect;
  e_supply : string option;  (** {!Supply.name} of the generator, if any *)
  e_found_by : string option;  (** e.g. ["campaign"], ["adversary"] *)
  e_program_hash : string option;
      (** fingerprint of (env, options, source) at recording time: 32 hex
          chars — the pipeline's canonical image-stage cache key
          ({!Wario.Pipeline.image_key}) — or a legacy ≤16-hex FNV digest
          on entries recorded before the compile cache existed (parsed
          with a deprecation warning; staleness is judged under the
          scheme the entry was recorded with) *)
}

val program_hash : Repro.t -> string option
(** The canonical fingerprint of the replay's compile:
    {!Wario.Pipeline.image_key} over the workload source, environment and
    the reproducer's options — the same hash that addresses the compile
    cache, so whatever would make the cache recompile also marks the
    entry stale.  [None] for an unknown workload.  Stable across runs. *)

val make : ?supply:string -> ?found_by:string -> expect:expect -> Repro.t -> entry
(** Build an entry, computing {!program_hash}. *)

val to_string : entry -> string
(** One line, parseable by {!of_string}. *)

val of_string : string -> (entry, string) result

val filename : entry -> string
(** Content-addressed file name ([workload-env-xxxxxxxx.repro]): identical
    entries collide on purpose. *)

val save : dir:string -> entry -> [ `Added of string | `Exists of string ]
(** Write the entry into [dir] (created if missing); [`Exists] means an
    identical entry was already present. *)

val load_dir : string -> (string * entry) list * (string * string) list
(** All [*.repro] files of a directory in sorted order: parsed entries
    with their paths, and [(path, error)] for files that did not parse
    (the replay gate treats those as failures). *)

type verdict = {
  v_ok : bool;  (** expectation upheld *)
  v_stale : bool;  (** program hash no longer matches the workload *)
  v_message : string;
}

val replay : entry -> verdict
(** Recompile exactly as recorded ({!Harness.replay}) and judge the
    outcome against the entry's expectation.  A stale program fingerprint
    is reported in the verdict but does not by itself decide it. *)
