(** Harvester-style power-supply models for the verification campaign:
    seeded synthesizers (RF-bursty, indoor-solar, two-state Markov) and
    replayed trace files, all reduced to finite on-duration sequences that
    compose with {!Wario_emulator.Power.Schedule} (power stays on once the
    window is exhausted, so every injected run terminates). *)

type model =
  | Rf  (** bursty RF-harvester profile (many short periods, rare long) *)
  | Solar  (** steadier indoor-solar profile (long, slowly varying) *)
  | Markov of int
      (** two-state bursty process; payload = percent chance of switching
          from the short-burst to the long-window state after each period
          (the long state falls back with 50%) *)
  | File of string  (** on-durations replayed from a trace file *)

val name : model -> string
(** Compact, space- and paren-free token (["rf"], ["markov:40"],
    ["file:PATH"]) — safe to embed in reproducer S-expressions. *)

val of_name : string -> (model, string) result
(** Inverse of {!name}; also accepts bare ["markov"] (= [markov:10]). *)

val builtin : model list
(** The models every campaign mixes in: [Rf; Solar; Markov 10; Markov 40]. *)

val durations : model -> seed:int64 -> mean_on:int -> total:int -> int array
(** Synthesize on-durations whose cumulative on-time exceeds [total]
    active cycles (capped at 16384 periods), with the profile rescaled so
    its mean on-duration is [mean_on] — harvester recordings are measured
    against real benchmarks, so only the distribution {e shape} transfers
    to a smaller program.  Byte-for-byte reproducible: equal
    [(model, seed, mean_on, total)] always yields an identical array, and
    every duration is >= 1 (accepted by {!Wario_emulator.Power.create}).
    @raise Invalid_argument if [mean_on < 1], [total < 0], or a [File]
    model's trace cannot be loaded. *)

val supply : model -> seed:int64 -> mean_on:int -> total:int -> Wario_emulator.Power.supply
(** [Power.Schedule (durations ...)]: the model as an injectable supply. *)

val load_file : string -> (int array, string) result
(** Parse a trace file: one positive on-duration (cycles) per line, blank
    lines and [#] comments skipped.  Errors carry file:line positions. *)

val save_file : string -> int array -> unit

val max_periods : int
(** Synthesis cap per schedule (16384): past it the schedule ends and
    power is continuous, so pathological parameters cannot hang or
    allocate without bound. *)
