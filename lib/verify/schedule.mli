(** Adversarial power-cut schedule generation for the fault-injection
    harness.  A schedule is the array of on-durations given to
    {!Wario_emulator.Power.Schedule}. *)

(** {1 Splittable PRNG (splitmix64)} *)

type gen

val of_seed : int64 -> gen
(** Deterministic: the same seed always reproduces the same schedules. *)

val split : gen -> gen
(** An independent child generator; drawing from it never perturbs the
    parent's stream (schedules stay reproducible per case). *)

val next_int64 : gen -> int64
val int : gen -> bound:int -> int
(** Uniform in [\[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)

(** {1 Reference-run geometry} *)

type reference = {
  total_cycles : int;  (** active cycles of the continuous run *)
  boundaries : int array;
      (** absolute active-cycle offset of every checkpoint commit *)
}

val reference_of_result : Wario_emulator.Emulator.result -> reference
(** Commit offsets of a {e continuous} run (boot + cumulative region
    sizes; the tail region ends at the halt and is not a commit). *)

(** {1 Schedules} *)

val exhaustive : reference -> int array list
(** One single-cut schedule at every commit offset −1 / +0 / +1: power
    dies just before, exactly at, and just after every checkpoint commit. *)

val random_schedule : gen -> reference -> int array
(** 1–4 cuts mixing boot-phase deaths, ±8-cycle jitter around a random
    commit, and uniform positions over the whole run. *)

val random_schedules : gen -> reference -> n:int -> int array list
