(** One-line S-expression reproducers for failing injection schedules,
    e.g. [(repro (workload rmw_loop) (env wario) (unroll 8) (cuts 413 879))].
    Replayable via [iclang verify --repro] or {!Harness.replay}. *)

type t = {
  workload : string;  (** micro-program or benchmark name *)
  env : Wario.Pipeline.environment;
  unroll : int;
  max_region : int option;
  drop_ckpt : int option;
      (** replays the test-only sabotage hook (see {!Wario.Pipeline.options}) *)
  cuts : int array;  (** the injection schedule *)
  seed : int64 option;  (** sweep seed that found the failure (bookkeeping) *)
}

val make :
  ?unroll:int ->
  ?max_region:int ->
  ?drop_ckpt:int ->
  ?seed:int64 ->
  workload:string ->
  env:Wario.Pipeline.environment ->
  int array ->
  t

val options_of : t -> Wario.Pipeline.options
(** Pipeline options reconstructing the exact compile of the failure. *)

val source_of_workload : string -> (string, string) result
(** Resolve a workload name against the micro programs, then the paper
    benchmarks. *)

val to_string : t -> string
(** One line, parseable by {!of_string}. *)

val of_string : string -> (t, string) result

(** {1 S-expression plumbing}

    The minimal S-expression reader behind {!of_string}, shared with the
    regression-corpus entry format ({!Corpus}), which embeds a reproducer
    inside a larger expression. *)

type sexp = Atom of string | List of sexp list

val parse : string -> (sexp, string) result
val sexp_to_string : sexp -> string

val of_sexp : sexp -> (t, string) result
(** Parse an already-read [(repro ...)] expression. *)
