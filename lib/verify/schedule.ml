(* Adversarial power-cut schedule generation.

   A schedule is a finite array of on-durations handed to
   [Power.Schedule]: cut k happens after schedule.(k) active cycles from
   the k-th power-on, and power is continuous once the schedule is
   exhausted, so every injected run terminates.

   Two generation modes (ISSUE: the adversarial power scheduler):
   - exhaustive: one single-cut schedule at every checkpoint-commit offset
     of the continuous reference run, plus/minus one cycle — the exact
     points where a commit is half done or a region has just opened;
   - random: a seeded splittable PRNG (splitmix64, reproducible from a
     printed seed) that mixes boot-phase cuts, near-boundary jitter and
     uniform cuts over the whole run. *)

module E = Wario_emulator

(* ------------------------------------------------------------------ *)
(* Splittable PRNG (splitmix64)                                         *)
(* ------------------------------------------------------------------ *)

type gen = { mutable s : int64 }

let of_seed seed = { s = seed }

let next_int64 g =
  g.s <- Int64.add g.s 0x9e3779b97f4a7c15L;
  let z = g.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A generator seeded from [g]'s stream but advanced independently:
   drawing from the split never perturbs numbers drawn from [g]. *)
let split g = { s = next_int64 g }

let int g ~bound =
  if bound <= 0 then invalid_arg "Schedule.int: non-positive bound";
  Int64.to_int (next_int64 g) land max_int mod bound

(* ------------------------------------------------------------------ *)
(* Reference-run geometry                                               *)
(* ------------------------------------------------------------------ *)

type reference = {
  total_cycles : int;  (** active cycles of the continuous run *)
  boundaries : int array;
      (** absolute active-cycle offset of every checkpoint commit *)
}

(* Commit offsets of a continuous run: boot plus the cumulative region
   sizes.  The final region ends at the halt, not at a commit, so it is
   dropped. *)
let reference_of_result (r : E.Emulator.result) : reference =
  let rec go acc cum = function
    | [] | [ _ ] -> List.rev acc
    | s :: rest ->
        let cum = cum + s in
        go (cum :: acc) cum rest
  in
  {
    total_cycles = r.E.Emulator.cycles;
    boundaries =
      Array.of_list (go [] E.Emulator.boot_cycles r.E.Emulator.region_sizes);
  }

(* ------------------------------------------------------------------ *)
(* Schedules                                                            *)
(* ------------------------------------------------------------------ *)

let exhaustive (ref_ : reference) : int array list =
  Array.to_list ref_.boundaries
  |> List.concat_map (fun b ->
         List.filter_map
           (fun d -> if b + d > 0 then Some [| b + d |] else None)
           [ -1; 0; 1 ])

let random_cut g (ref_ : reference) =
  let nb = Array.length ref_.boundaries in
  match int g ~bound:8 with
  | 0 ->
      (* die during boot or checkpoint restore *)
      1 + int g ~bound:(E.Emulator.boot_cycles + 64)
  | (1 | 2 | 3) when nb > 0 ->
      (* jitter around a commit: the adversarial neighbourhood *)
      let b = ref_.boundaries.(int g ~bound:nb) in
      max 1 (b - 8 + int g ~bound:17)
  | _ ->
      (* anywhere in the run (plus slack past the end) *)
      E.Emulator.boot_cycles + 1 + int g ~bound:(max 1 ref_.total_cycles)

let random_schedule g (ref_ : reference) : int array =
  let k = 1 + int g ~bound:4 in
  Array.init k (fun _ -> random_cut g ref_)

let random_schedules g (ref_ : reference) ~n : int array list =
  List.init n (fun _ -> random_schedule g ref_)
