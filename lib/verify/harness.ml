(* The fault-injection sweep: workloads × environments × schedules.

   For each (workload, environment) case:
   1. compile and take the continuous golden run (Oracle.golden); a WAR
      violation already present there is reported as a zero-cut failure —
      a broken checkpoint schedule needs no injected power failure;
   2. build the schedule set: the exhaustive boundary ±1 single cuts when
      the program is small enough, topped up with seeded random schedules
      until [schedules_per_case] is reached;
   3. run the oracle on every schedule; each divergence is shrunk to a
      minimal cut set (Shrink.ddmin) and rendered as a one-line
      reproducer (Repro.to_string) replayable by [iclang verify --repro]. *)

module P = Wario.Pipeline
module Exec = Wario_exec.Exec

type failure = {
  f_schedule : int array;  (** as found *)
  f_shrunk : int array;  (** after ddmin *)
  f_divergence : Oracle.divergence;  (** of the shrunk schedule *)
  f_repro : Repro.t;
}

type case_report = {
  c_workload : string;
  c_env : P.environment;
  c_schedules : int;  (** schedules actually exercised *)
  c_failures : failure list;
}

type config = {
  envs : P.environment list;
  workloads : (string * string) list;  (** (name, MiniC source) *)
  schedules_per_case : int;
  exhaustive_limit : int;
      (** use the exhaustive boundary ±1 set only when it is at most this
          many schedules; otherwise rely on the seeded random generator *)
  max_failures_per_case : int;  (** stop a case after this many failures *)
  seed : int64;
  opts : P.options;
  jobs : int;
      (** domains for the schedule fan-out (1 = sequential, 0 = auto) *)
  engine : Wario_emulator.Emulator.engine;
      (** emulator engine for every oracle run (default [Auto]; verdicts
          are engine-independent — the oracle keeps the WAR verifier on) *)
}

let instrumented_environments =
  List.filter (fun e -> e <> P.Plain) P.all_environments

let default_config =
  {
    envs = instrumented_environments;
    workloads =
      List.map
        (fun (m : Wario_workloads.Micro.t) ->
          (m.Wario_workloads.Micro.name, m.Wario_workloads.Micro.source))
        Wario_workloads.Micro.all;
    schedules_per_case = 200;
    exhaustive_limit = 600;
    max_failures_per_case = 3;
    seed = 1L;
    opts = P.default_options;
    jobs = 1;
    engine = Wario_emulator.Emulator.Auto;
  }

(* Per-case generator: derived from the sweep seed and the case identity,
   so any single case replays identically without re-running the sweep. *)
let case_gen config ~workload ~env =
  Schedule.of_seed
    (Int64.logxor config.seed
       (Int64.of_int (Hashtbl.hash (workload, P.environment_name env))))

let repro_of config ~workload ~env cuts =
  Repro.make ~unroll:config.opts.P.unroll_factor
    ?max_region:config.opts.P.max_region
    ?drop_ckpt:config.opts.P.drop_middle_ckpt ~seed:config.seed ~workload ~env
    cuts

let run_case ?(log = fun _ -> ()) config ~(workload : string * string)
    ~(env : P.environment) : case_report =
  let name, source = workload in
  let c = P.compile ~opts:config.opts env source in
  let g = Oracle.golden ~engine:config.engine c in
  match Oracle.golden_violations g with
  | _ :: _ as vs ->
      (* the schedule is broken before any failure is injected *)
      log
        (Printf.sprintf "%s × %s: golden run already violates (%d)\n  repro: %s"
           name (P.environment_name env) (List.length vs)
           (Repro.to_string (repro_of config ~workload:name ~env [||])));
      {
        c_workload = name;
        c_env = env;
        c_schedules = 0;
        c_failures =
          [
            {
              f_schedule = [||];
              f_shrunk = [||];
              f_divergence = Oracle.War_violations vs;
              f_repro = repro_of config ~workload:name ~env [||];
            };
          ];
      }
  | [] ->
      let ref_ = Schedule.reference_of_result g.Oracle.g_result in
      let ex = Schedule.exhaustive ref_ in
      let ex = if List.length ex <= config.exhaustive_limit then ex else [] in
      let gen = case_gen config ~workload:name ~env in
      let n_random = max 0 (config.schedules_per_case - List.length ex) in
      let schedules = ex @ Schedule.random_schedules gen ref_ ~n:n_random in
      let still_fails cuts =
        Result.is_error (Oracle.check_schedule ~engine:config.engine g c cuts)
      in
      (* The oracle fan-out runs schedules in fixed-size chunks:
         [Exec.map] evaluates a whole chunk (on [config.jobs] domains —
         each [check_schedule] builds its own emulator; [g]/[c] are only
         read), then the verdicts are consumed sequentially, in input
         order, in the calling domain.  Shrinking, logging and the
         failure cap therefore see schedules in exactly the sequential
         order, and the chunk size is fixed (not derived from [jobs]), so
         reports are byte-identical for every [jobs] value. *)
      let chunk_size = 32 in
      let rec chunks = function
        | [] -> []
        | l ->
            let rec take n acc = function
              | rest when n = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> take (n - 1) (x :: acc) rest
            in
            let c, rest = take chunk_size [] l in
            c :: chunks rest
      in
      let tried = ref 0 and failures = ref [] in
      (try
         List.iter
           (fun chunk ->
             let verdicts =
               Exec.map ~jobs:config.jobs
                 (fun cuts ->
                   (cuts, Oracle.check_schedule ~engine:config.engine g c cuts))
                 chunk
             in
             List.iter
               (fun (cuts, verdict) ->
                 incr tried;
                 match verdict with
                 | Ok () -> ()
                 | Error _ ->
                     let shrunk = Shrink.ddmin ~still_fails cuts in
                     let divergence =
                       match
                         Oracle.check_schedule ~engine:config.engine g c shrunk
                       with
                       | Error d -> d
                       | Ok () ->
                           (* cannot happen: ddmin preserves failure *)
                           assert false
                     in
                     let f =
                       {
                         f_schedule = cuts;
                         f_shrunk = shrunk;
                         f_divergence = divergence;
                         f_repro = repro_of config ~workload:name ~env shrunk;
                       }
                     in
                     log
                       (Printf.sprintf "%s × %s: FAILED — %s\n  repro: %s" name
                          (P.environment_name env)
                          (Oracle.string_of_divergence divergence)
                          (Repro.to_string f.f_repro));
                     failures := f :: !failures;
                     if
                       List.length !failures >= config.max_failures_per_case
                     then raise Exit)
               verdicts)
           (chunks schedules)
       with Exit -> ());
      {
        c_workload = name;
        c_env = env;
        c_schedules = !tried;
        c_failures = List.rev !failures;
      }

(* Static pre-check: run the idempotence certifier (lib/certify) on each
   case's build before injecting any power failure.  A certified image
   cannot trip the dynamic WAR verifier, so a rejection pinpoints a pipeline
   bug — with a concrete load→store witness — without spending a single
   schedule. *)
type precheck = {
  p_workload : string;
  p_env : P.environment;
  p_report : string;  (** rendered rejection (witness paths included) *)
}

let static_precheck ?(log = fun _ -> ()) (config : config) : precheck list =
  List.concat_map
    (fun (name, source) ->
      List.filter_map
        (fun env ->
          let c = P.compile ~opts:config.opts env source in
          match P.certify c with
          | Wario_certify.Certify.Certified _ -> None
          | Wario_certify.Certify.Rejected _ as v ->
              let report = P.certify_report c v in
              log
                (Printf.sprintf "%s × %s: static certifier REJECTED\n%s" name
                   (P.environment_name env) report);
              Some { p_workload = name; p_env = env; p_report = report })
        config.envs)
    config.workloads

let sweep ?(log = fun _ -> ()) (config : config) : case_report list =
  List.concat_map
    (fun workload ->
      List.map
        (fun env ->
          let r = run_case ~log config ~workload ~env in
          log
            (Printf.sprintf "%s × %s: %d schedules, %s" r.c_workload
               (P.environment_name env) r.c_schedules
               (match r.c_failures with
               | [] -> "ok"
               | fs -> Printf.sprintf "%d FAILURE(S)" (List.length fs)));
          r)
        config.envs)
    config.workloads

let total_failures (reports : case_report list) : int =
  List.fold_left (fun acc r -> acc + List.length r.c_failures) 0 reports

(* Replay a reproducer: recompile exactly as recorded and re-run the
   oracle on the recorded cut schedule. *)
let replay (r : Repro.t) : (unit, string) result =
  match Repro.source_of_workload r.Repro.workload with
  | Error e -> Error e
  | Ok source -> (
      let c = P.compile ~opts:(Repro.options_of r) r.Repro.env source in
      let g = Oracle.golden c in
      match Oracle.golden_violations g with
      | _ :: _ as vs ->
          Error
            (Oracle.string_of_divergence (Oracle.War_violations vs)
            ^ " (in the golden run, before any injection)")
      | [] -> (
          match Oracle.check_schedule g c r.Repro.cuts with
          | Ok () -> Ok ()
          | Error d -> Error (Oracle.string_of_divergence d)))
