(** The fleet-scale adversarial power campaign: a budgeted, coverage-
    accounted schedule search per (workload, environment) case, mixing the
    exhaustive boundary ±1 set, the {!Adversary} bisection, harvester-style
    {!Supply} models and seeded random fill.  The plan is generated up
    front from the seed and consumed in input order, so a campaign is
    schedule-for-schedule deterministic for any [jobs] value.  CLI entry:
    [iclang verify --campaign]. *)

(** {1 Coverage}

    Two kinds of evidence are charged.  Each schedule's {e first} cut:
    before the first power failure the injected run is cycle-for-cycle the
    golden run, so a first cut at offset [c] lands at golden-timeline
    cycle [c] exactly.  And every {e observed} power failure: the emulator
    logs [(commits, lost_work)] per failure
    ({!Wario_emulator.Emulator.result.failure_sites}), and since execution
    always resumes at the last committed checkpoint,
    [boundary(commits) + lost_work] locates the failure on the golden
    timeline — multi-cut sweep and supply schedules thereby cover
    thousands of boundary windows per run. *)

type coverage = {
  cov_boundaries : int;  (** commit boundaries of the reference run *)
  cov_boundaries_cut : int;  (** boundaries with a cut landed in [b−1, b+1] *)
  cov_regions : int;  (** idempotent regions, halt-terminated tail included *)
  cov_regions_cut : int;  (** regions with a cut landed strictly inside *)
  cov_boot_cut : bool;  (** some cut landed in the boot window *)
}

val boundary_pct : coverage -> float
(** Percentage of commit boundaries cut within ±1; 100 when the program
    has no checkpoints (vacuously covered). *)

val region_pct : coverage -> float

val coverage_of_plan :
  Schedule.reference -> int array list -> coverage
(** The first-cut component only: a pure function of the plan against the
    reference geometry — independent of execution interleaving (and
    therefore of [jobs]).  The campaign's reported coverage additionally
    charges observed failure sites; this is its lower bound. *)

val sweep_plan : Schedule.reference -> int array list
(** Multi-cut sweep schedules for dense-commit geometries: one power
    period per commit boundary, each budgeted [boot + spacing] so it
    resumes at boundary k−1, retires the commit at boundary k, and dies
    on the very next spend — the observed failure site lands exactly on
    the boundary (a power budget buys [budget − boot] work cycles
    exactly; checkpoint-restore replay advances the clock without
    consuming budget).  One schedule covers up to 4096 boundaries; chunk
    openers cold-start with budget = the boundary offset, running
    golden-identically to their first commit. *)

(** {1 Campaign} *)

type failure = {
  k_schedule : int array;  (** as found *)
  k_shrunk : int array;  (** after two-phase {!Shrink.ddmin} *)
  k_divergence : Oracle.divergence;  (** of the shrunk schedule *)
  k_repro : Repro.t;
  k_source : string;
      (** ["exhaustive"], ["sweep"], ["mop-up"], ["adversary"], ["random"],
          ["golden"] or a {!Supply.name} *)
}

type case_report = {
  k_workload : string;
  k_env : Wario.Pipeline.environment;
  k_schedules : int;  (** schedules exercised *)
  k_probes : int;  (** adversary bisection probes (oracle runs) on top *)
  k_coverage : coverage;
  k_failures : failure list;  (** shrunk + deduplicated, capped *)
  k_failures_total : int;  (** every failing schedule, beyond the cap too *)
  k_worst_reexec : int;
      (** largest re-executed waste any adversary probe provoked *)
}

type config = {
  envs : Wario.Pipeline.environment list;
  workloads : (string * string) list;  (** (name, MiniC source) *)
  budget : int;
      (** schedules per case; the exhaustive and adversary sets always run
          even past the budget, random fill consumes the remainder *)
  seed : int64;
  opts : Wario.Pipeline.options;
  jobs : int;  (** fan-out domains; reports are identical for any value *)
  max_shrunk_per_case : int;
      (** distinct failures shrunk and recorded per case; the rest are
          counted in [k_failures_total] only *)
  engine : Wario_emulator.Emulator.engine;
      (** emulator engine for every oracle run (default [Auto]).  Oracle
          instances keep the WAR verifier on, so every engine resolves to
          the instrumented reference path: reports are engine-independent
          by construction (asserted byte-identical in CI). *)
}

val default_budget : int
(** 100_000 — the fleet-scale default. *)

val small_budget : int
(** 2_000 — the [--small] smoke-test budget. *)

val default_config : config

val run_case :
  ?log:(string -> unit) ->
  ?spans:Wario_obs.Span.t ->
  config ->
  workload:string * string ->
  env:Wario.Pipeline.environment ->
  case_report
(** Golden run, adversary bisection, plan generation, chunked oracle
    fan-out, shrinking, and a final mop-up round of plan-exact single cuts
    at any boundary windows still unhit (derived from the
    order-independent coverage union, so deterministic for any [jobs]).
    A golden run that itself violates the WAR verifier is reported as a
    zero-cut ["golden"] failure.

    A live [spans] recorder gets one ["campaign.case"] span per case
    (workload/env attributes) with one child phase span each for
    ["campaign.golden"], ["campaign.adversary"] (probe/region counters),
    ["campaign.plan"] (schedule counter), ["campaign.execute"]
    (schedule/failure counters) and ["campaign.mopup"] (uncovered-window
    counter); the chunked {!Wario_exec.Exec.map} fan-outs inside the
    execute and mop-up phases contribute their own pool/worker spans. *)

val run :
  ?log:(string -> unit) ->
  ?spans:Wario_obs.Span.t ->
  config ->
  case_report list

val total_failures : case_report list -> int

val min_boundary_pct : case_report list -> float
(** The worst per-case boundary coverage — what [--min-coverage] gates. *)

val corpus_entries : case_report list -> Corpus.entry list
(** Shrunk failures as corpus entries: sabotaged builds (drop-ckpt) become
    [expect=fail] detector-regression entries; real finds [expect=pass]. *)

val report_rows : case_report list -> Wario.Report.campaign_row list
