(** Counterexample shrinking for failing injection schedules. *)

val ddmin : still_fails:(int array -> bool) -> int array -> int array
(** [ddmin ~still_fails schedule] minimises a failing schedule by delta
    debugging: the result still satisfies [still_fails] (or is [[||]] if
    even the empty schedule fails) and is 1-minimal — removing any single
    remaining cut makes the failure disappear. *)
