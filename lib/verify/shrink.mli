(** Counterexample shrinking for failing injection schedules. *)

val ddmin : still_fails:(int array -> bool) -> int array -> int array
(** [ddmin ~still_fails schedule] minimises a failing schedule by delta
    debugging, in two phases: the subset phase makes the result 1-minimal
    (removing any single remaining cut makes the failure disappear, or the
    result is [[||]] if even the empty schedule fails), then the magnitude
    phase binary-searches each surviving on-duration down to the smallest
    value that still fails — pinning the exact cycle at which the failure
    window opens.  Every intermediate kept candidate is re-checked, so the
    result always satisfies [still_fails]. *)

val shrink_magnitudes : still_fails:(int array -> bool) -> int array -> int array
(** The magnitude phase alone (exposed for tests): requires that the input
    schedule fails; returns a pointwise-[<=] schedule that still fails. *)
