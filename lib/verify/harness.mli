(** The fault-injection sweep: workloads × environments × schedules, with
    shrinking and reproducer emission.  CLI entry: [iclang verify]. *)

type failure = {
  f_schedule : int array;  (** the failing schedule as found *)
  f_shrunk : int array;  (** minimal cut set after {!Shrink.ddmin} *)
  f_divergence : Oracle.divergence;  (** divergence of the shrunk schedule *)
  f_repro : Repro.t;  (** one-line replayable reproducer *)
}

type case_report = {
  c_workload : string;
  c_env : Wario.Pipeline.environment;
  c_schedules : int;  (** schedules actually exercised *)
  c_failures : failure list;
}

type config = {
  envs : Wario.Pipeline.environment list;
  workloads : (string * string) list;  (** (name, MiniC source) *)
  schedules_per_case : int;
  exhaustive_limit : int;
      (** use the exhaustive boundary ±1 set only when it has at most this
          many schedules *)
  max_failures_per_case : int;
  seed : int64;  (** printed with every reproducer; replays the sweep *)
  opts : Wario.Pipeline.options;
  jobs : int;
      (** domains for the per-case schedule fan-out (1 = sequential,
          0 = auto: sized to the host by {!Wario_exec.Exec.map}, which on
          a single-core host is the sequential path).  Schedules are
          evaluated in fixed-size chunks whose verdicts are consumed in
          input order, so every report — including [c_schedules] under
          the failure cap — is byte-identical for any [jobs] value. *)
  engine : Wario_emulator.Emulator.engine;
      (** emulator engine for every oracle run (default [Auto]); verdicts
          are engine-independent because the oracle keeps the WAR verifier
          on, which resolves every engine to the reference path *)
}

val instrumented_environments : Wario.Pipeline.environment list
(** Every environment except [Plain] (which is only ever run on
    continuous power). *)

val default_config : config
(** All instrumented environments × all micro workloads, 200 schedules
    per case, seed 1. *)

val run_case :
  ?log:(string -> unit) ->
  config ->
  workload:string * string ->
  env:Wario.Pipeline.environment ->
  case_report
(** Golden run, schedule generation, oracle sweep, shrinking.  A golden
    run that itself violates the WAR verifier is reported as a zero-cut
    failure. *)

type precheck = {
  p_workload : string;
  p_env : Wario.Pipeline.environment;
  p_report : string;  (** rendered rejection, witness paths included *)
}

val static_precheck : ?log:(string -> unit) -> config -> precheck list
(** Run the static idempotence certifier (lib/certify) on every case's
    build; returns the rejected cases.  A certified image cannot trip the
    dynamic WAR verifier, so rejections pinpoint pipeline bugs before any
    schedule is injected. *)

val sweep : ?log:(string -> unit) -> config -> case_report list

val total_failures : case_report list -> int

val replay : Repro.t -> (unit, string) result
(** Recompile exactly as recorded and re-run the oracle on the recorded
    cuts; [Error] describes the (reproduced) divergence. *)
