(* Counterexample shrinking: reduce a failing injection schedule to a
   minimal set of failure points by delta debugging (Zeller's ddmin — the
   binary-search generalisation: try dropping halves, then quarters, …).

   [still_fails] re-runs the oracle on a candidate schedule; the result is
   1-minimal (no single cut can be removed and still fail).  Shrinking a
   k-cut schedule costs O(k log k) oracle runs in the typical case. *)

let ddmin ~(still_fails : int array -> bool) (schedule : int array) :
    int array =
  let remove_chunk arr lo hi =
    Array.append (Array.sub arr 0 lo)
      (Array.sub arr hi (Array.length arr - hi))
  in
  let rec go arr n =
    let len = Array.length arr in
    if len <= 1 then arr
    else begin
      let chunk = max 1 (len / n) in
      let rec try_from i =
        let lo = i * chunk in
        if lo >= len then None
        else begin
          let hi = min (lo + chunk) len in
          let candidate = remove_chunk arr lo hi in
          if Array.length candidate < len && still_fails candidate then
            Some candidate
          else try_from (i + 1)
        end
      in
      match try_from 0 with
      | Some smaller -> go smaller (max (n - 1) 2)
      | None -> if chunk <= 1 then arr else go arr (min len (2 * n))
    end
  in
  if Array.length schedule = 0 then schedule
  else if still_fails [||] then
    (* fails with no injection at all (e.g. a golden-run WAR violation) *)
    [||]
  else go schedule 2
