(* Counterexample shrinking: reduce a failing injection schedule to a
   minimal set of failure points by delta debugging (Zeller's ddmin — the
   binary-search generalisation: try dropping halves, then quarters, …),
   then shrink each surviving on-duration toward the failure boundary.

   [still_fails] re-runs the oracle on a candidate schedule; the result is
   1-minimal (no single cut can be removed and still fail) and
   magnitude-minimal per position under the monotonicity heuristic (no
   binary-search probe below a surviving value still fails).  Shrinking a
   k-cut schedule costs O(k log k) oracle runs for the subset phase plus
   O(k log max-cut) for the magnitude phase. *)

(* Phase 2: for each surviving cut, binary-search the smallest on-duration
   (>= 1) that still fails.  Cut offsets measure active cycles from each
   power-on, so the smallest failing value pins the exact cycle at which
   the failure window opens — reproducers point at the boundary itself,
   not merely somewhere past it.  Every candidate we keep has been
   re-checked by [still_fails], so the caller's contract is unchanged. *)
let shrink_magnitudes ~(still_fails : int array -> bool) (arr : int array) :
    int array =
  let arr = Array.copy arr in
  Array.iteri
    (fun i v ->
      if v > 1 then begin
        let try_at m =
          let saved = arr.(i) in
          arr.(i) <- m;
          if still_fails arr then true
          else begin
            arr.(i) <- saved;
            false
          end
        in
        (* invariant: arr with arr.(i) = hi fails; probe below it *)
        let lo = ref 1 and hi = ref v in
        while !lo < !hi do
          let m = !lo + ((!hi - !lo) / 2) in
          if try_at m then hi := m else lo := m + 1
        done
      end)
    arr;
  arr

let ddmin ~(still_fails : int array -> bool) (schedule : int array) :
    int array =
  let remove_chunk arr lo hi =
    Array.append (Array.sub arr 0 lo)
      (Array.sub arr hi (Array.length arr - hi))
  in
  let rec go arr n =
    let len = Array.length arr in
    if len <= 1 then arr
    else begin
      let chunk = max 1 (len / n) in
      let rec try_from i =
        let lo = i * chunk in
        if lo >= len then None
        else begin
          let hi = min (lo + chunk) len in
          let candidate = remove_chunk arr lo hi in
          if Array.length candidate < len && still_fails candidate then
            Some candidate
          else try_from (i + 1)
        end
      in
      match try_from 0 with
      | Some smaller -> go smaller (max (n - 1) 2)
      | None -> if chunk <= 1 then arr else go arr (min len (2 * n))
    end
  in
  if Array.length schedule = 0 then schedule
  else if still_fails [||] then
    (* fails with no injection at all (e.g. a golden-run WAR violation) *)
    [||]
  else shrink_magnitudes ~still_fails (go schedule 2)
