(* The fleet-scale adversarial power campaign.

   `iclang verify`'s sweep is a spot check: a few hundred splitmix64
   schedules per case.  A campaign turns that into a budgeted, coverage-
   accounted search.  Per (workload, environment) case it mixes, in a
   fixed priority order:

   1. the boundary set — single-cut schedules at every checkpoint-commit
      offset −1/+0/+1 of the reference run while that fits the budget, the
      greedy ±1 interval cover past that, and for dense-commit geometries
      (ratchet checkpoints every few cycles; tens of thousands of
      boundaries) a multi-cut SWEEP: one machine walked through the whole
      timeline with each power period budgeted to land its failure on the
      next stride-3 target, covering thousands of boundary windows per
      schedule;
   2. the adversary's boundary-bisected worst-case cut per idempotent
      region (Adversary.search — its probes are counted separately);
   3. harvester-style supply models (Supply.builtin: RF, solar, Markov
      bursty), each synthesized at several mean-on-duration scales and
      several derived seeds, injected as multi-cut schedules;
   4. seeded splitmix64 random schedules filling the remaining budget;
   5. a MOP-UP round of plan-exact single cuts at whatever boundary
      windows the observed accounting still reports uncovered.

   The whole plan is generated up front from the campaign seed, fanned out
   over Exec.map in fixed-size chunks, and consumed in input order — so a
   seeded campaign is schedule-for-schedule deterministic for any --jobs,
   and so is everything derived from it (coverage, failures, corpus
   entries; the mop-up is derived from the order-independent coverage
   union, so it is deterministic too).

   Coverage accounting charges two kinds of evidence:
   - each schedule's FIRST cut: before the first power failure the
     injected run is cycle-for-cycle the golden run, so a first cut at
     offset c lands at golden-timeline cycle c exactly;
   - every OBSERVED power failure: the emulator logs (commits_so_far,
     lost_work) per failure, and since execution always resumes at the
     last committed checkpoint, boundary(commits) + lost_work locates the
     failure on the golden timeline — this is what makes multi-cut sweep
     and supply schedules count, and what lets a 2k-schedule smoke budget
     cover a 65k-boundary geometry.

   Failures are deduplicated by (shrunk schedule, divergence class),
   shrunk with the two-phase ddmin, and rendered as corpus entries:
   sabotaged builds (drop-ckpt) become expect=fail detector-regression
   entries; real finds become expect=pass entries that gate CI red until
   the bug is fixed and green forever after. *)

module P = Wario.Pipeline
module E = Wario_emulator
module Exec = Wario_exec.Exec
module S = Wario_obs.Span

(* ------------------------------------------------------------------ *)
(* Coverage                                                             *)
(* ------------------------------------------------------------------ *)

type coverage = {
  cov_boundaries : int;  (** commit boundaries of the reference run *)
  cov_boundaries_cut : int;  (** boundaries with a first cut in [b−1, b+1] *)
  cov_regions : int;  (** idempotent regions, halt-terminated tail included *)
  cov_regions_cut : int;  (** regions with a first cut strictly inside *)
  cov_boot_cut : bool;  (** some first cut landed in the boot window *)
}

let boundary_pct (c : coverage) : float =
  if c.cov_boundaries = 0 then 100.0
  else
    100.0 *. float_of_int c.cov_boundaries_cut /. float_of_int c.cov_boundaries

let region_pct (c : coverage) : float =
  if c.cov_regions = 0 then 100.0
  else 100.0 *. float_of_int c.cov_regions_cut /. float_of_int c.cov_regions

(* Mutable coverage accumulator: a byte per boundary and per region,
   marked by binary search — marking is idempotent set union, so the
   result is independent of the order runs are consumed in (and therefore
   of --jobs). *)
type cov_acc = {
  ca_ref : Schedule.reference;
  ca_b : Bytes.t;  (** per boundary: hit within ±1 *)
  ca_r : Bytes.t;  (** per region (tail included): interior hit *)
  mutable ca_boot : bool;
}

let acc_create (ref_ : Schedule.reference) : cov_acc =
  let n = Array.length ref_.Schedule.boundaries in
  {
    ca_ref = ref_;
    ca_b = Bytes.make n '\000';
    ca_r = Bytes.make (n + 1) '\000';
    ca_boot = false;
  }

(* First index with [bs.(i) >= v], or [length bs]. *)
let lower_bound (bs : int array) (v : int) : int =
  let lo = ref 0 and hi = ref (Array.length bs) in
  while !lo < !hi do
    let m = (!lo + !hi) / 2 in
    if bs.(m) < v then lo := m + 1 else hi := m
  done;
  !lo

(* Charge one golden-timeline position to the coverage accumulator. *)
let acc_mark (acc : cov_acc) (p : int) : unit =
  let bs = acc.ca_ref.Schedule.boundaries in
  let n = Array.length bs in
  if p <= E.Emulator.boot_cycles then acc.ca_boot <- true;
  let i = ref (lower_bound bs (p - 1)) in
  while !i < n && bs.(!i) <= p + 1 do
    Bytes.set acc.ca_b !i '\001';
    incr i
  done;
  (* region interior: positions on a boundary belong to neither side *)
  let j = lower_bound bs p in
  if j >= n || bs.(j) <> p then begin
    let lo = if j = 0 then E.Emulator.boot_cycles else bs.(j - 1) in
    let hi = if j = n then acc.ca_ref.Schedule.total_cycles else bs.(j) in
    if p > lo && p < hi then Bytes.set acc.ca_r j '\001'
  end

let acc_coverage (acc : cov_acc) : coverage =
  let count b =
    let n = ref 0 in
    Bytes.iter (fun c -> if c <> '\000' then incr n) b;
    !n
  in
  {
    cov_boundaries = Bytes.length acc.ca_b;
    cov_boundaries_cut = count acc.ca_b;
    cov_regions = Bytes.length acc.ca_r;
    cov_regions_cut = count acc.ca_r;
    cov_boot_cut = acc.ca_boot;
  }

(* Boundary offsets still unhit, ascending — the mop-up's work list. *)
let acc_uncovered (acc : cov_acc) : int list =
  let bs = acc.ca_ref.Schedule.boundaries in
  let out = ref [] in
  for i = Array.length bs - 1 downto 0 do
    if Bytes.get acc.ca_b i = '\000' then out := bs.(i) :: !out
  done;
  !out

(* Coverage as a pure function of the plan (first cuts vs. reference
   geometry), independent of execution interleaving.  The campaign itself
   additionally charges every observed failure site (see run_case); this
   is the plan-only lower bound. *)
let coverage_of_plan (ref_ : Schedule.reference) (plan : int array list) :
    coverage =
  let acc = acc_create ref_ in
  List.iter (fun s -> if Array.length s > 0 then acc_mark acc s.(0)) plan;
  acc_coverage acc

(* Golden-timeline positions of a run's observed power failures.  The
   machine always resumes at its last committed checkpoint and commits
   advance one boundary at a time, so boundary(commits) + lost locates
   each failure exactly (commit indexes past the golden count — possible
   only on divergent runs — clamp to the last boundary). *)
let positions_of_sites (ref_ : Schedule.reference)
    (sites : (int * int) list) : int list =
  let bs = ref_.Schedule.boundaries in
  let n = Array.length bs in
  List.map
    (fun (commits, lost) ->
      let base =
        if commits <= 0 || n = 0 then E.Emulator.boot_cycles
        else bs.(min commits n - 1)
      in
      base + lost)
    sites

(* ------------------------------------------------------------------ *)
(* Campaign configuration                                               *)
(* ------------------------------------------------------------------ *)

type failure = {
  k_schedule : int array;  (** as found *)
  k_shrunk : int array;  (** after two-phase ddmin *)
  k_divergence : Oracle.divergence;  (** of the shrunk schedule *)
  k_repro : Repro.t;
  k_source : string;  (** ["exhaustive"], ["adversary"], ["random"] or a
                          {!Supply.name} *)
}

type case_report = {
  k_workload : string;
  k_env : P.environment;
  k_schedules : int;  (** schedules exercised *)
  k_probes : int;  (** adversary bisection probes (oracle runs) on top *)
  k_coverage : coverage;
  k_failures : failure list;  (** shrunk + deduplicated, capped *)
  k_failures_total : int;  (** every failing schedule, beyond the cap too *)
  k_worst_reexec : int;
      (** largest re-executed waste any adversary probe provoked *)
}

type config = {
  envs : P.environment list;
  workloads : (string * string) list;
  budget : int;  (** schedules per case (the exhaustive and adversary sets
                     always run, even past the budget) *)
  seed : int64;
  opts : P.options;
  jobs : int;
  max_shrunk_per_case : int;
  engine : E.Emulator.engine;
      (** emulator engine for every oracle run (default [Auto]); the oracle
          verifies WARs, so all engines resolve to the reference path and
          the report is engine-independent — asserted byte-identical in CI *)
}

let default_budget = 100_000
let small_budget = 2_000

let default_config =
  {
    envs = Harness.instrumented_environments;
    workloads = Harness.default_config.Harness.workloads;
    budget = default_budget;
    seed = 1L;
    opts = P.default_options;
    jobs = 1;
    max_shrunk_per_case = 5;
    engine = E.Emulator.Auto;
  }

(* Per-case generator: derived from the campaign seed and the case
   identity (salted so campaign streams never collide with sweep
   streams), so a single case replays identically in isolation. *)
let case_gen config ~workload ~env =
  Schedule.of_seed
    (Int64.logxor config.seed
       (Int64.of_int
          (Hashtbl.hash ("campaign", workload, P.environment_name env))))

let repro_of config ~workload ~env cuts =
  Repro.make ~unroll:config.opts.P.unroll_factor
    ?max_region:config.opts.P.max_region
    ?drop_ckpt:config.opts.P.drop_middle_ckpt ~seed:config.seed ~workload ~env
    cuts

(* ------------------------------------------------------------------ *)
(* Plan generation                                                      *)
(* ------------------------------------------------------------------ *)

(* Supply-model schedules: every builtin model at several mean-on scales
   of the reference run, each at [seeds_per_combo] derived seeds. *)
let supply_plan gen (ref_ : Schedule.reference) ~seeds_per_combo :
    (string * int array) list =
  let total = ref_.Schedule.total_cycles in
  List.concat_map
    (fun model ->
      List.concat_map
        (fun divisor ->
          List.init seeds_per_combo (fun _ ->
              let seed = Schedule.next_int64 gen in
              let mean_on = max 1 (total / divisor) in
              ( Supply.name model,
                Supply.durations model ~seed ~mean_on ~total )))
        [ 4; 16; 64 ])
    Supply.builtin

(* Minimal set of single cuts covering every boundary's ±1 window: the
   classic greedy interval cover.  A first cut at [b + 1] covers every
   boundary in [[b, b + 2]] — on dense-commit environments (ratchet
   checkpoints every few cycles) this needs up to 9× fewer oracle runs
   than the full −1/+0/+1 triple set, with the exact same 100%
   commit-boundary coverage guarantee. *)
let cover_boundaries (bs : int array) : int array list =
  (* boundaries are positive, so -2 can never be within a ±1 window *)
  let cuts = ref [] and last = ref (-2) in
  Array.iter
    (fun b ->
      if b - !last > 1 then begin
        last := b + 1;
        cuts := [| max 1 (b + 1) |] :: !cuts
      end)
    bs;
  List.rev !cuts

(* Multi-cut sweep for dense-commit geometries, where even the greedy
   cover needs more single-cut runs than the whole budget: walk one
   machine boundary-to-boundary through the run, killing power exactly at
   each commit.  The power budget buys [budget - boot] work cycles
   exactly — boot is paid through [spend] but the checkpoint-restore
   replay advances the clock without consuming budget (see
   [Emulator.power_on]) — so period k, resuming at boundary k−1, gets
   [boot + spacing]: it retires the commit at boundary k and dies on the
   very next spend, landing its observed failure site exactly on the
   boundary, one power period per boundary.  Chunk openers cold-start
   with budget = the boundary offset itself, running golden-identically
   to their first commit. *)
let sweep_chunk = 4096

let sweep_plan (ref_ : Schedule.reference) : int array list =
  let bs = ref_.Schedule.boundaries in
  let n = Array.length bs in
  let boot = E.Emulator.boot_cycles in
  let chunks = ref [] and j = ref 0 in
  while !j < n do
    let len = min sweep_chunk (n - !j) in
    let base = !j in
    let buf =
      Array.init len (fun k ->
          let i = base + k in
          if k = 0 then bs.(i) else boot + (bs.(i) - bs.(i - 1)))
    in
    chunks := buf :: !chunks;
    j := base + len
  done;
  List.rev !chunks

(* The full per-case plan: (source, schedule) pairs in priority order. *)
let plan config gen (ref_ : Schedule.reference)
    (worst : Adversary.worst list) ~(sweep : int array list Lazy.t) :
    (string * int array) list =
  let ex_full = Schedule.exhaustive ref_ in
  let budget = max 1 config.budget in
  let ex =
    (* the full triple set while it fits the budget; then the greedy
       cover (same 100% guarantee, up to 9× fewer runs); for geometries
       denser still, the multi-cut sweep (thousands of boundary windows
       per schedule, coverage charged from observed failure sites) *)
    if List.length ex_full <= budget then
      List.map (fun s -> ("exhaustive", s)) ex_full
    else
      let cover = cover_boundaries ref_.Schedule.boundaries in
      if List.length cover <= budget then
        List.map (fun s -> ("exhaustive", s)) cover
      else List.map (fun s -> ("sweep", s)) (Lazy.force sweep)
  in
  let adv =
    List.map (fun s -> ("adversary", s)) (Adversary.schedules worst)
  in
  let sup = supply_plan (Schedule.split gen) ref_ ~seeds_per_combo:4 in
  let used = List.length ex + List.length adv + List.length sup in
  let n_random = max 0 (config.budget - used) in
  let rnd =
    List.map
      (fun s -> ("random", s))
      (Schedule.random_schedules (Schedule.split gen) ref_ ~n:n_random)
  in
  ex @ adv @ sup @ rnd

(* ------------------------------------------------------------------ *)
(* The campaign proper                                                  *)
(* ------------------------------------------------------------------ *)

let divergence_class = function
  | Oracle.Output_mismatch _ -> "output"
  | Oracle.Double_output _ -> "double-output"
  | Oracle.Exit_mismatch _ -> "exit"
  | Oracle.Memory_mismatch _ -> "memory"
  | Oracle.War_violations _ -> "war"
  | Oracle.No_progress _ -> "no-progress"

let run_case ?(log = fun _ -> ()) ?(spans = S.disabled) (config : config)
    ~(workload : string * string) ~(env : P.environment) : case_report =
  let name, source = workload in
  S.with_span spans
    ~attrs:
      [ ("workload", S.Str name); ("env", S.Str (P.environment_name env)) ]
    "campaign.case"
  @@ fun () ->
  let c, g =
    S.with_span spans "campaign.golden" (fun () ->
        let c = P.compile ~opts:config.opts env source in
        (c, Oracle.golden ~engine:config.engine c))
  in
  match Oracle.golden_violations g with
  | _ :: _ as vs ->
      log
        (Printf.sprintf "%s × %s: golden run already violates (%d)" name
           (P.environment_name env) (List.length vs));
      {
        k_workload = name;
        k_env = env;
        k_schedules = 0;
        k_probes = 0;
        k_coverage =
          {
            cov_boundaries = 0;
            cov_boundaries_cut = 0;
            cov_regions = 0;
            cov_regions_cut = 0;
            cov_boot_cut = false;
          };
        k_failures =
          [
            {
              k_schedule = [||];
              k_shrunk = [||];
              k_divergence = Oracle.War_violations vs;
              k_repro = repro_of config ~workload:name ~env [||];
              k_source = "golden";
            };
          ];
        k_failures_total = 1;
        k_worst_reexec = 0;
      }
  | [] ->
      let ref_ = Schedule.reference_of_result g.Oracle.g_result in
      (* adversary first: deterministic bisection, sequential.  Each
         region costs ~3 probes minimum, so dense-commit environments
         (ratchet checkpoints every few cycles) would dwarf the schedule
         budget — cap the bisection to the widest regions, scaled to the
         budget. *)
      let max_regions = max 16 (config.budget / 16) in
      let worst =
        S.with_span spans "campaign.adversary" (fun () ->
            let w = Adversary.search ~max_regions g c in
            S.add_counter ~by:(Adversary.total_probes w) spans "probes";
            S.add_counter ~by:(List.length w) spans "regions";
            w)
      in
      let worst_reexec =
        List.fold_left (fun acc w -> max acc w.Adversary.a_reexec) 0 worst
      in
      let gen = case_gen config ~workload:name ~env in
      let sweep = lazy (sweep_plan ref_) in
      let plan =
        S.with_span spans "campaign.plan" (fun () ->
            let p = plan config gen ref_ worst ~sweep in
            S.add_counter ~by:(List.length p) spans "schedules";
            p)
      in
      let acc = acc_create ref_ in
      let still_fails cuts =
        Result.is_error (Oracle.check_schedule ~engine:config.engine g c cuts)
      in
      (* sweeps carry thousands of cuts; ddmin's subset phase is linear in
         that, so first find a failing prefix by doubling (failure is not
         monotone in prefix length, so this is a heuristic — like ddmin
         itself), then ddmin it if it is small enough *)
      let shrink cuts =
        let n = Array.length cuts in
        let cuts =
          if n <= 128 then cuts
          else begin
            let k = ref 1 in
            while !k < n && not (still_fails (Array.sub cuts 0 !k)) do
              k := !k * 2
            done;
            if !k >= n then cuts else Array.sub cuts 0 !k
          end
        in
        if Array.length cuts <= 512 then Shrink.ddmin ~still_fails cuts
        else cuts
      in
      (* fixed-size chunks + in-order consumption: byte-identical reports
         for every [jobs] (the Harness.run_case argument applies verbatim) *)
      let chunk_size = 64 in
      let rec chunks = function
        | [] -> []
        | l ->
            let rec take n acc = function
              | rest when n = 0 -> (List.rev acc, rest)
              | [] -> (List.rev acc, [])
              | x :: rest -> take (n - 1) (x :: acc) rest
            in
            let c, rest = take chunk_size [] l in
            c :: chunks rest
      in
      let tried = ref 0
      and failures_total = ref 0
      and shrunk_failures = ref []
      and seen = Hashtbl.create 16 in
      let process label sched_list =
        List.iter
          (fun chunk ->
            let verdicts =
              Exec.map ~jobs:config.jobs ~spans ~label
                (fun (src, cuts) ->
                  let res, verdict =
                    Oracle.run_schedule ~engine:config.engine g c cuts
                  in
                  let sites =
                    match res with
                    | Some r -> r.E.Emulator.failure_sites
                    | None -> []
                  in
                  (src, cuts, verdict, sites))
                chunk
            in
            List.iter
              (fun (src, cuts, verdict, sites) ->
                incr tried;
                (* coverage: the plan-exact first cut plus every observed
                   failure site (idempotent marks — order-independent) *)
                if Array.length cuts > 0 then acc_mark acc cuts.(0);
                List.iter (acc_mark acc) (positions_of_sites ref_ sites);
                match verdict with
                | Ok () -> ()
                | Error _ when
                      List.length !shrunk_failures
                      >= config.max_shrunk_per_case ->
                    (* beyond the shrink cap: count it, skip the ddmin *)
                    incr failures_total
                | Error _ ->
                    incr failures_total;
                    let shrunk = shrink cuts in
                    let divergence =
                      match Oracle.check_schedule ~engine:config.engine g c shrunk with
                      | Error d -> d
                      | Ok () ->
                          (* cannot happen: shrinking preserves failure *)
                          assert false
                    in
                    let key =
                      (Array.to_list shrunk, divergence_class divergence)
                    in
                    if not (Hashtbl.mem seen key) then begin
                      Hashtbl.add seen key ();
                      let f =
                        {
                          k_schedule = cuts;
                          k_shrunk = shrunk;
                          k_divergence = divergence;
                          k_repro = repro_of config ~workload:name ~env shrunk;
                          k_source = src;
                        }
                      in
                      log
                        (Printf.sprintf
                           "%s × %s: FAILED [%s] — %s\n  repro: %s" name
                           (P.environment_name env) src
                           (Oracle.string_of_divergence divergence)
                           (Repro.to_string f.k_repro));
                      shrunk_failures := f :: !shrunk_failures
                    end)
              verdicts)
          (chunks sched_list)
      in
      S.with_span spans "campaign.execute" (fun () ->
          process "campaign.chunk" plan;
          S.add_counter ~by:!tried spans "schedules";
          S.add_counter ~by:!failures_total spans "failures");
      (* mop-up: whatever boundary windows the sweep's landing jitter (or
         plain bad random luck) left unhit get plan-exact single cuts,
         greedily covered and capped at one budget's worth *)
      S.with_span spans "campaign.mopup" (fun () ->
          match acc_uncovered acc with
          | [] -> ()
          | uncovered ->
              S.add_counter ~by:(List.length uncovered) spans "uncovered";
              let singles = cover_boundaries (Array.of_list uncovered) in
              let cap = max 1 config.budget in
              let singles =
                if List.length singles > cap then
                  Wario_support.Util.take cap singles
                else singles
              in
              process "campaign.mopup.chunk"
                (List.map (fun s -> ("mop-up", s)) singles));
      {
        k_workload = name;
        k_env = env;
        k_schedules = !tried;
        k_probes = Adversary.total_probes worst;
        k_coverage = acc_coverage acc;
        k_failures = List.rev !shrunk_failures;
        k_failures_total = !failures_total;
        k_worst_reexec = worst_reexec;
      }

let run ?(log = fun _ -> ()) ?(spans = S.disabled) (config : config) :
    case_report list =
  List.concat_map
    (fun workload ->
      List.map
        (fun env ->
          let r = run_case ~log ~spans config ~workload ~env in
          log
            (Printf.sprintf
               "%s × %s: %d schedules + %d probes, boundary coverage %.1f%%, \
                %s"
               r.k_workload (P.environment_name env) r.k_schedules r.k_probes
               (boundary_pct r.k_coverage)
               (match r.k_failures_total with
               | 0 -> "ok"
               | n ->
                   Printf.sprintf "%d FAILURE(S) (%d distinct shrunk)" n
                     (List.length r.k_failures)));
          r)
        config.envs)
    config.workloads

let total_failures (reports : case_report list) : int =
  List.fold_left (fun acc r -> acc + r.k_failures_total) 0 reports

let min_boundary_pct (reports : case_report list) : float =
  List.fold_left
    (fun acc r -> min acc (boundary_pct r.k_coverage))
    100.0 reports

(* ------------------------------------------------------------------ *)
(* Corpus emission                                                      *)
(* ------------------------------------------------------------------ *)

(* Sabotaged builds (drop-ckpt) are detector-regression entries: the
   verifier must keep catching them.  Real finds are expect=pass: they
   gate CI red until the bug is fixed, and forever green after. *)
let corpus_entries (reports : case_report list) : Corpus.entry list =
  List.concat_map
    (fun r ->
      List.map
        (fun f ->
          let expect =
            if f.k_repro.Repro.drop_ckpt <> None then Corpus.Must_fail
            else Corpus.Must_pass
          in
          let supply =
            match f.k_source with
            | "exhaustive" | "sweep" | "mop-up" | "adversary" | "random"
            | "golden" ->
                None
            | s -> Some s
          in
          Corpus.make ?supply ~found_by:"campaign" ~expect f.k_repro)
        r.k_failures)
    reports

(* ------------------------------------------------------------------ *)
(* Report plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let report_rows (reports : case_report list) : Wario.Report.campaign_row list
    =
  List.map
    (fun r ->
      {
        Wario.Report.cr_workload = r.k_workload;
        cr_env = P.environment_name r.k_env;
        cr_schedules = r.k_schedules;
        cr_probes = r.k_probes;
        cr_boundaries = r.k_coverage.cov_boundaries;
        cr_boundaries_cut = r.k_coverage.cov_boundaries_cut;
        cr_regions = r.k_coverage.cov_regions;
        cr_regions_cut = r.k_coverage.cov_regions_cut;
        cr_boot_cut = r.k_coverage.cov_boot_cut;
        cr_worst_reexec = r.k_worst_reexec;
        cr_failures = r.k_failures_total;
      })
    reports
