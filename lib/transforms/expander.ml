(* Expander (paper §3.1.2, §4.3): heuristic aggressive inlining.

   Each function call costs checkpoints: one at the callee's entry and at
   least one in its epilog.  The Expander inlines more aggressively than a
   generic size-driven inliner would:

   1. it collects candidate functions — those "containing pointers" (at the
      IR level: a parameter register flows into a load/store address), which
      are the ones whose inlining can also expose WARs to the clusterers;
   2. it inlines calls to candidates that appear inside an innermost loop
      (a loop with no sub-loops) of the caller.

   Recursive callees and very large callees are skipped.  The paper notes
   the heuristic can occasionally be detrimental (Tiny AES) without profile
   information — that behaviour is preserved. *)

open Wario_ir.Ir
module Analysis = Wario_analysis
module Str_set = Wario_support.Util.Str_set

let default_size_limit = 400

(* Does some parameter register flow into a memory address?  One forward
   pass: the set of "parameter-derived" registers grows through moves and
   arithmetic. *)
let has_pointer_params (f : func) : bool =
  if f.params = [] then false
  else begin
    let derived = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace derived p ()) f.params;
    let is_derived = function
      | Reg r -> Hashtbl.mem derived r
      | Glob _ | Slot _ | Imm _ -> false
    in
    let changed = ref true in
    let found = ref false in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              (match i with
              | Load (_, _, addr) -> if is_derived addr then found := true
              | Store (_, _, addr) -> if is_derived addr then found := true
              | _ -> ());
              match (instr_def i, i) with
              | Some d, (Bin _ | Mov _ | Select _) ->
                  if
                    (not (Hashtbl.mem derived d))
                    && List.exists
                         (fun u -> Hashtbl.mem derived u)
                         (instr_uses i)
                  then begin
                    Hashtbl.replace derived d ();
                    changed := true
                  end
              | _ -> ())
            b.insns)
        f.blocks
    done;
    !found
  end

type stats = { candidates : int; inlined : int }

let default_hot_threshold = 32

(* Cost-coupled expansion: inlining as a placement decision, made by the
   interprocedural cost model.  Every call edge costs ~2 checkpoints
   (callee entry + epilog) each time it runs, so an edge's a-priori score
   is

     2 * func_freq(caller) * edge_freq   (dyn-ckpt pairs elided per run)

   The score only orders the audition queue: whether an inline actually
   pays is decided by the caller (the pipeline), which compiles a trial
   copy of the program with the candidate applied and compares measured
   reference runs of the two final images.  Inlining deletes the call's
   free WAR barrier, and the WARs that re-opens run at real trip counts
   no closed-form score can see — the paper's "sometimes detrimental"
   caveat — so the closed form proposes and the measurement disposes. *)

type cand = {
  xc_caller : string;
  xc_callee : string;
  xc_size : int;  (** callee instruction count when scored *)
  xc_benefit : float;  (** 2 × func_freq(caller) × edge_freq *)
}

let costed_candidates ?(size_limit = default_size_limit)
    (cg : Analysis.Callgraph.t) (p : program) : cand list =
  let eligible (f : func) =
    f.fname <> "main"
    && (not (cg.Analysis.Callgraph.recursive f.fname))
    && Inliner.instr_count f <= size_limit
  in
  List.filter_map
    (fun (e : Analysis.Callgraph.edge) ->
      if String.equal e.Analysis.Callgraph.cg_caller e.cg_callee then None
      else
        match
          List.find_opt (fun f -> String.equal f.fname e.cg_callee) p.funcs
        with
        | Some cf when eligible cf ->
            Some
              {
                xc_caller = e.Analysis.Callgraph.cg_caller;
                xc_callee = cf.fname;
                xc_size = Inliner.instr_count cf;
                xc_benefit =
                  2.
                  *. cg.Analysis.Callgraph.func_freq e.cg_caller
                  *. e.cg_freq;
              }
        | _ -> None)
    cg.Analysis.Callgraph.cg_edges
  |> List.stable_sort (fun a b -> compare b.xc_benefit a.xc_benefit)

(* Each candidate stands for one Call instruction; consuming the first
   remaining site to the callee keeps site lookup valid across the block
   splits earlier inlines performed, and makes replaying the same
   candidate list on a program copy land on the same sites. *)
let apply_candidate (p : program) (c : cand) : bool =
  match find_func_opt p c.xc_caller with
  | None -> false
  | Some caller -> (
      let site =
        List.find_map
          (fun b ->
            List.mapi (fun i ins -> (i, ins)) b.insns
            |> List.find_map (fun (i, ins) ->
                   match ins with
                   | Call (_, callee, _) when String.equal callee c.xc_callee
                     ->
                       Some (b.bname, i)
                   | _ -> None))
          caller.blocks
      in
      match site with
      | Some pt -> Inliner.inline_call caller (find_func p c.xc_callee) pt
      | None -> false)

(** Run the Expander over the program.

    Without [profile], candidates are guessed structurally (functions whose
    parameters flow into memory accesses) — the paper notes the guess is
    sometimes wrong and that profiling would fix it (§5.2.2, §6).  With
    [profile] (dynamic call counts from an emulator run), candidates are the
    hot functions instead: the profile-guided variant of the paper's future
    work. *)
let run ?(size_limit = default_size_limit) ?profile
    ?(hot_threshold = default_hot_threshold) (p : program) : stats =
  let is_candidate f =
    match profile with
    | None -> has_pointer_params f
    | Some counts -> (
        match List.assoc_opt f.fname counts with
        | Some n -> n >= hot_threshold
        | None -> false)
  in
  let candidates =
    List.filter
      (fun f ->
        f.fname <> "main"
        && is_candidate f
        && (not (Inliner.is_directly_recursive f))
        && Inliner.instr_count f <= size_limit)
      p.funcs
  in
  let cand_names = List.map (fun f -> f.fname) candidates in
  let inlined = ref 0 in
  List.iter
    (fun caller ->
      let cfg = Analysis.Cfg.build caller in
      let dom = Analysis.Dominance.build cfg in
      let loops = Analysis.Loops.build cfg dom in
      (* structural mode: only loops without sub-loops (paper §4.3); with a
         profile, hotness already told us the call matters, so any loop
         block is a site *)
      let innermost_blocks =
        List.fold_left
          (fun acc (l : Analysis.Loops.loop) ->
            let has_subloop =
              List.exists
                (fun (l' : Analysis.Loops.loop) ->
                  l'.header <> l.header && Str_set.mem l'.header l.blocks)
                loops.loops
            in
            if has_subloop && profile = None then acc
            else Str_set.union acc l.blocks)
          Str_set.empty loops.loops
      in
      (* Inline one site at a time and re-scan: inlining splits blocks and
         shifts indices.  Only blocks of the original innermost loops are
         scanned, so inlined bodies are not expanded transitively; a pass
         budget bounds growth. *)
      let find_site () =
        List.find_map
          (fun b ->
            if not (Str_set.mem b.bname innermost_blocks) then None
            else
              List.mapi (fun i ins -> (i, ins)) b.insns
              |> List.find_map (fun (i, ins) ->
                     match ins with
                     | Call (_, callee, _)
                       when List.mem callee cand_names && callee <> caller.fname
                       ->
                         Some (b.bname, i, callee)
                     | _ -> None))
          caller.blocks
      in
      let rec pass budget =
        if budget > 0 then
          match find_site () with
          | Some (lbl, i, callee) ->
              let cf = find_func p callee in
              if Inliner.inline_call caller cf (lbl, i) then begin
                incr inlined;
                pass (budget - 1)
              end
          | None -> ()
      in
      pass 24)
    p.funcs;
  { candidates = List.length candidates; inlined = !inlined }
