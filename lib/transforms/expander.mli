(** Expander (paper §3.1.2, §4.3): heuristic aggressive inlining of
    pointer-carrying functions called from innermost loops.  Each call costs
    entry/exit checkpoints, so inlining hot callees pays even when a generic
    inliner would decline; the heuristic can occasionally lose (the paper's
    Tiny AES observation), which is preserved. *)

type stats = { candidates : int; inlined : int }

val default_size_limit : int
val default_hot_threshold : int

val run :
  ?size_limit:int ->
  ?profile:(string * int) list ->
  ?hot_threshold:int ->
  Wario_ir.Ir.program ->
  stats
(** Without [profile], candidates are guessed structurally; with a profile
    (dynamic call counts, e.g. {!Wario_emulator.Emulator.result}'s
    [call_counts]) the hot functions are inlined instead — the
    profile-guided Expander of the paper's future work (§6). *)

(** {1 Cost-coupled expansion}

    Under the interprocedural placement policy, inlining is a placement
    decision: each call-graph edge is a candidate scored by the model's
    predicted dynamic-checkpoint saving (2 entry/exit checkpoints per
    predicted dynamic call).  The score only orders the audition queue —
    whether a candidate actually pays is decided by the pipeline, which
    compiles a trial copy of the program with the candidate applied and
    keeps it only when a measured reference run of the final image
    executes strictly fewer checkpoints (inlining deletes the call's
    free WAR barrier, and what that re-opens runs at real trip counts
    no closed form or static model can see). *)

type cand = {
  xc_caller : string;
  xc_callee : string;
  xc_size : int;  (** callee instruction count when scored *)
  xc_benefit : float;  (** 2 × func_freq(caller) × edge_freq *)
}

val costed_candidates :
  ?size_limit:int ->
  Wario_analysis.Callgraph.t ->
  Wario_ir.Ir.program ->
  cand list
(** Eligible call edges (defined, non-recursive, non-[main] callee of at
    most [size_limit] instructions; self-calls excluded), sorted by
    descending benefit.  One candidate per call site. *)

val apply_candidate : Wario_ir.Ir.program -> cand -> bool
(** Inline the first remaining call site of [xc_callee] in [xc_caller].
    Deterministic: replaying the same candidate list on a program copy
    lands on the same sites.  False when no site remains. *)
