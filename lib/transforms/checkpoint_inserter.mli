(** PDG Checkpoint Inserter (paper §3.1.2): convert every remaining WAR
    violation into its set of resolving program points and pick checkpoint
    locations with a minimal hitting set.

    Placement is cost-guided by default: candidate points are weighted by
    the {!Wario_analysis.Costmodel} block-frequency estimate (optionally
    refined by a measured profile) and the weighted solver minimises the
    expected number of dynamically executed checkpoints, proving optimality
    when the instance is small enough.  [Greedy] retains the original
    unweighted greedy costed by loop depth, as the comparison baseline. *)

type placement =
  | Greedy  (** unweighted greedy hitting set costed by loop depth only *)
  | Cost_guided
      (** weighted solver minimising estimated dynamic checkpoint count *)

type stats = {
  functions : int;
  wars : int;
  checkpoints : int;
  exact : int;  (** functions whose weighted cover was proven optimal *)
  fallback : int;  (** functions placed by the weighted-greedy fallback *)
}

val run :
  ?mode:Wario_analysis.Alias.mode ->
  ?placement:placement ->
  ?profile:Wario_analysis.Costmodel.profile ->
  Wario_ir.Ir.program ->
  stats
(** [mode] selects the alias precision: [Basic] reproduces Ratchet,
    [Precise] (default) reproduces R-PDG / WARio.  [placement] defaults to
    [Cost_guided]; [profile] (measured per-block entry counts, validated by
    the caller) is only consulted under [Cost_guided]. *)
