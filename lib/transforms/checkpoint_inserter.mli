(** PDG Checkpoint Inserter (paper §3.1.2): convert every remaining WAR
    violation into its set of resolving program points and pick checkpoint
    locations with a minimal hitting set.

    Placement is cost-guided by default: candidate points are weighted by
    the {!Wario_analysis.Costmodel} block-frequency estimate (optionally
    refined by a measured profile) and the weighted solver minimises the
    expected number of dynamically executed checkpoints, proving optimality
    when the instance is small enough.  [Interprocedural] additionally
    scales every block weight by the {!Wario_analysis.Callgraph} invocation
    frequency of its function, so a checkpoint in a hot callee is priced at
    its true global cost.  [Greedy] retains the original unweighted greedy
    costed by loop depth, as the comparison baseline. *)

type placement =
  | Greedy  (** unweighted greedy hitting set costed by loop depth only *)
  | Cost_guided
      (** weighted solver minimising estimated dynamic checkpoint count *)
  | Interprocedural
      (** weighted solver over call-graph-scaled global block weights *)

type placement_info = {
  pi_func : string;
  pi_block : Wario_ir.Ir.label;
  pi_index : int;  (** instruction index the checkpoint was inserted at *)
  pi_weight : float;  (** the weight the solver paid for this point *)
  pi_wars : int;  (** reduced WAR sets this point covers *)
}
(** Rationale record for one inserted checkpoint ([--explain]). *)

type stats = {
  functions : int;
  wars : int;
  checkpoints : int;
  exact : int;  (** functions whose weighted cover was proven optimal *)
  fallback : int;  (** functions placed by the weighted-greedy fallback *)
  hs_nodes : int;
      (** branch-and-bound nodes explored across all per-function solves
          (solver-effort attribution for spans/metrics) *)
  placements : placement_info list;
      (** one record per inserted checkpoint, function order *)
}

val run :
  ?mode:Wario_analysis.Alias.mode ->
  ?placement:placement ->
  ?profile:Wario_analysis.Costmodel.profile ->
  ?global:(string -> Wario_ir.Ir.label -> float) ->
  Wario_ir.Ir.program ->
  stats
(** [mode] selects the alias precision: [Basic] reproduces Ratchet,
    [Precise] (default) reproduces R-PDG / WARio.  [placement] defaults to
    [Cost_guided]; [profile] (measured per-block entry counts, validated by
    the caller) is consulted under [Cost_guided] and [Interprocedural].
    [global] supplies interprocedural block weights (typically
    {!Wario_analysis.Callgraph.t.block_weight}) and is only consulted under
    [Interprocedural]; when absent that policy degrades to [Cost_guided]. *)
