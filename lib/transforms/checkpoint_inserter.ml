(* PDG Checkpoint Inserter (paper §3.1.2).

   For every function: collect the remaining WAR violations (those not
   already cut by forced checkpoints — calls — or previously inserted
   checkpoints), convert each WAR into the set of program points whose
   checkpoint would resolve it, and run the greedy minimal hitting set to
   pick a small set of checkpoint locations.  Costs grow exponentially with
   loop depth so the algorithm prefers placing checkpoints outside loops.

   Candidate points for a WAR (load L, store S):
   - the point immediately before S (always cuts every L→S path);
   - when L and S share a block with L before S: every point in (L, S];
   - when L and S share a block with S before L (a loop-carried WAR):
     every point after L and every point up to S in that block;
   - every point of any block B with block(L) dom B and B dom block(S)
     (the dominator sandwich; such a B lies on every L→S path), with the
     end-point blocks restricted to the positions after L / up to S. *)

open Wario_ir.Ir
module Analysis = Wario_analysis

module Point_hs = Analysis.Hitting_set.Make (struct
  type t = point

  let compare = compare_point
end)

type placement =
  | Greedy  (** unweighted greedy hitting set costed by loop depth only *)
  | Cost_guided
      (** weighted solver minimising estimated dynamic checkpoint count *)
  | Interprocedural
      (** weighted solver over call-graph-scaled global block weights *)

type placement_info = {
  pi_func : string;
  pi_block : label;
  pi_index : int;
  pi_weight : float;
  pi_wars : int;
}

type stats = {
  functions : int;
  wars : int;
  checkpoints : int;
  exact : int;  (** functions whose weighted cover was proven optimal *)
  fallback : int;  (** functions placed by the weighted-greedy fallback *)
  hs_nodes : int;  (** branch-and-bound nodes explored across all solves *)
  placements : placement_info list;
}

(* Candidate checkpoint points resolving one WAR.  [block_len] must be an
   O(1) lookup: this runs once per WAR and WAR counts grow quadratically on
   unrolled code. *)
let candidates ~(block_len : label -> int) (dom : Analysis.Dominance.t)
    (war : Analysis.Pdg.war) : point list =
  let lb, li = war.war_load.mo_point in
  let sb, si = war.war_store.mo_point in
  let pts = ref [ (sb, si) ] in
  (* duplicates are fine: the hitting set interns with sort_uniq *)
  let add p = pts := p :: !pts in
  if lb = sb then begin
    if li < si then
      for k = li + 1 to si do add (lb, k) done
    else begin
      (* loop-carried within one block: after L or before/at S *)
      for k = li + 1 to block_len lb do add (lb, k) done;
      for k = 0 to si do add (lb, k) done
    end
  end
  else begin
    (* end-point blocks *)
    for k = li + 1 to block_len lb do add (lb, k) done;
    for k = 0 to si do add (sb, k) done;
    (* dominator sandwich: block(L) dom B && B dom block(S).  The blocks
       dominating [sb] are exactly its idom chain, so walk it upward and
       keep the segment below [lb]. *)
    let rec chain b =
      match Analysis.Dominance.idom dom b with
      | Some up when up <> b ->
          if up <> lb && Analysis.Dominance.dominates dom lb up then begin
            for k = 0 to block_len up do add (up, k) done;
            chain up
          end
          else if up = lb then () (* reached L's block: stop *)
          else chain up (* above lb: nothing more can qualify *)
      | _ -> ()
    in
    chain sb
  end;
  !pts

let insert_checkpoints f (points : point list) (cause : ckpt_cause) =
  (* Insert per block in descending index order so indices stay valid. *)
  let by_block = Hashtbl.create 8 in
  List.iter
    (fun (lbl, i) ->
      let cur = try Hashtbl.find by_block lbl with Not_found -> [] in
      Hashtbl.replace by_block lbl (i :: cur))
    (Wario_support.Util.dedup_stable points);
  Hashtbl.iter
    (fun lbl idxs ->
      List.iter
        (fun i -> insert_at f (lbl, i) [ Checkpoint cause ])
        (List.sort (fun a b -> compare b a) idxs))
    by_block

let run_func ~(mode : Analysis.Alias.mode) ~(placement : placement)
    ~(profile : Analysis.Costmodel.profile option)
    ~(global : (string -> label -> float) option) ~escapes (f : func) :
    int * int * Analysis.Hitting_set.optimality option * int
    * placement_info list =
  let dbg = Sys.getenv_opt "WARIO_DEBUG_CPI" <> None in
  let now () = if dbg then Unix.gettimeofday () else 0. in
  let t0 = now () in
  let cfg = Analysis.Cfg.build f in
  let dom = Analysis.Dominance.build cfg in
  let loops = Analysis.Loops.build cfg dom in
  let t1 = now () in
  let alias = Analysis.Alias.build ~mode ~escapes f in
  let t2 = now () in
  let pdg = Analysis.Pdg.build alias cfg f in
  let wars = Analysis.Pdg.wars pdg in
  let t3 = now () in
  if dbg && t3 -. t0 > 0.2 then
    Printf.eprintf "cpi %-14s cfg=%.1f alias=%.1f wars=%.1f (#wars=%d)
%!"
      f.fname (t1 -. t0) (t2 -. t1) (t3 -. t2) (List.length wars);
  if wars = [] then (0, 0, None, 0, [])
  else begin
    (* Subsumption: for a fixed store and load block, the pair with the
       latest load has the smallest candidate set, and that set is a subset
       of every earlier pair's (all our candidate constructions shrink
       monotonically as the load moves later).  Covering it covers them
       all, so only the latest-load pair per (store, load block) needs a
       set — WAR counts grow quadratically on unrolled code, and this
       keeps the hitting-set input linear in the store count. *)
    let best : (point * label * bool, Analysis.Pdg.war) Hashtbl.t =
      Hashtbl.create 256
    in
    List.iter
      (fun (w : Analysis.Pdg.war) ->
        let sb, si = w.war_store.mo_point in
        let lb, li = w.war_load.mo_point in
        (* forward same-block pairs and loop-carried same-block pairs have
           different candidate shapes: never subsume across kinds *)
        let forward = lb = sb && li < si in
        let key = (w.war_store.mo_point, lb, forward) in
        match Hashtbl.find_opt best key with
        | Some w' when snd w'.war_load.mo_point >= li -> ()
        | _ -> Hashtbl.replace best key w)
      wars;
    let reduced = Hashtbl.fold (fun _ w acc -> w :: acc) best [] in
    let reduced =
      List.sort
        (fun (a : Analysis.Pdg.war) (b : Analysis.Pdg.war) ->
          compare
            (a.war_store.mo_point, a.war_load.mo_point)
            (b.war_store.mo_point, b.war_load.mo_point))
        reduced
    in
    let lens = Hashtbl.create 64 in
    List.iter
      (fun b -> Hashtbl.replace lens b.bname (List.length b.insns))
      f.blocks;
    let block_len lbl = try Hashtbl.find lens lbl with Not_found -> 0 in
    let sets = List.map (candidates ~block_len dom) reduced in
    let naive_placement () =
      (* unreachable via Error — [candidates] always includes the point
         before the store — but documented as the Empty_set fallback:
         checkpoint directly before every WAR store *)
      List.map (fun (w : Analysis.Pdg.war) -> w.war_store.mo_point) reduced
    in
    let t4 = now () in
    let chosen, opt, nodes, cost =
      match placement with
      | Greedy ->
          let cost (lbl, _) =
            (* prefer shallow loop nesting; 10x per level, a trip-count
               guess *)
            10. ** float_of_int (loops.Analysis.Loops.depth_of lbl)
          in
          ( (match Point_hs.solve ~cost sets with
            | Ok chosen -> chosen
            | Error (Analysis.Hitting_set.Empty_set _) -> naive_placement ()),
            None,
            0,
            cost )
      | Cost_guided | Interprocedural ->
          (* Under Interprocedural the fallback weight of a block is its
             call-graph-scaled global frequency; measured profile counts
             (already global — the pilot counts every dynamic entry) still
             override per label, and are now commensurate with the
             fallback instead of mixing per-run counts with per-invocation
             estimates. *)
          let static = Analysis.Costmodel.static_weights cfg loops in
          let base =
            match (placement, global) with
            | Interprocedural, Some g -> fun lbl -> g f.fname lbl
            | _ -> static
          in
          let weights =
            match profile with
            | None -> base
            | Some p ->
                Analysis.Costmodel.profile_weights p ~fname:f.fname
                  ~fallback:base
          in
          let cost (lbl, _) = weights lbl in
          (match Point_hs.solve_weighted ~cost sets with
          | Ok sol ->
              ( sol.Point_hs.chosen,
                Some sol.Point_hs.optimality,
                sol.Point_hs.nodes_explored,
                cost )
          | Error (Analysis.Hitting_set.Empty_set _) ->
              (naive_placement (), None, 0, cost))
    in
    let t5 = now () in
    let infos =
      List.map
        (fun ((lbl, i) as pt) ->
          {
            pi_func = f.fname;
            pi_block = lbl;
            pi_index = i;
            pi_weight = cost pt;
            pi_wars =
              List.length
                (List.filter (List.exists (fun q -> compare_point q pt = 0))
                   sets);
          })
        (Wario_support.Util.dedup_stable chosen)
    in
    insert_checkpoints f chosen Middle_end_war;
    if dbg && t5 -. t3 > 0.2 then
      Printf.eprintf "cpi %-14s cand=%.1f hs=%.1f insert=%.1f chosen=%d
%!"
        f.fname (t4 -. t3) (t5 -. t4)
        (now () -. t5)
        (List.length chosen);
    (List.length wars, List.length chosen, opt, nodes, infos)
  end

(** Insert middle-end checkpoints for the whole program; returns statistics. *)
let run ?(mode = Analysis.Alias.Precise) ?(placement = Cost_guided) ?profile
    ?global (p : program) : stats =
  let escapes = Analysis.Alias.escapes_of_program p in
  List.fold_left
    (fun acc f ->
      let wars, cps, opt, nodes, infos =
        run_func ~mode ~placement ~profile ~global ~escapes f
      in
      {
        functions = acc.functions + 1;
        wars = acc.wars + wars;
        checkpoints = acc.checkpoints + cps;
        exact =
          (acc.exact
          + match opt with Some Analysis.Hitting_set.Exact -> 1 | _ -> 0);
        fallback =
          (acc.fallback
          +
          match opt with
          | Some Analysis.Hitting_set.Greedy_fallback -> 1
          | _ -> 0);
        hs_nodes = acc.hs_nodes + nodes;
        placements = acc.placements @ infos;
      })
    {
      functions = 0;
      wars = 0;
      checkpoints = 0;
      exact = 0;
      fallback = 0;
      hs_nodes = 0;
      placements = [];
    }
    p.funcs
