(** The parallel experiment engine: a deterministic map over a pool of
    OCaml 5 domains.

    Every artefact this reproduction produces multiplies runs — benchmarks
    × environments × supplies × schedules — and every run is independent:
    each job compiles its own program and/or builds its own
    {!Wario_emulator.Image}/emulator state, so jobs share nothing mutable.
    [map] exploits that shape while keeping the sequential semantics
    callers already rely on:

    - {b results are returned in input order}, regardless of which domain
      finished first;
    - {b exceptions are deterministic}: if any job raises, the exception
      of the {e lowest-indexed} failing item is re-raised (with its
      backtrace) after the pool drains — never a timing-dependent one;
    - [jobs = 1] never spawns a domain and is exactly [List.map]
      (today's sequential path).

    Determinism therefore reduces to the determinism of [f] itself:
    [map ~jobs:1 f xs = map ~jobs:8 f xs] whenever [f] is a function of
    its argument alone.  The test suite (test/test_exec.ml) holds the
    whole stack to that equation.

    Jobs must not touch shared mutable state.  In this codebase the
    compiler pipeline and emulator allocate everything per call, so
    [fun src -> Emulator.run (Pipeline.compile env src).image] is safe;
    writing to a shared [Hashtbl] (e.g. a result cache) from [f] is not —
    collect results first, then fill the cache in the caller. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the runtime's estimate of how
    many domains this host runs in parallel (1 on a single-core host). *)

val map :
  ?jobs:int ->
  ?spans:Wario_obs.Span.t ->
  ?label:string ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ~jobs f items] applies [f] to every item on up to [jobs] domains
    (the calling domain participates, so at most [jobs - 1] are spawned)
    and returns the results in input order.

    @param jobs pool width; [0] (the default) means auto: size the pool
      to {!default_jobs}.  On a single-core host auto resolves to the
      sequential path — a pool with no parallelism to buy only adds
      spawn/join overhead.
    @param spans a live recorder wraps the map in a pool span named
      [label] (default ["exec.map"]) and grafts one ["worker"] child span
      per pool member at the join — each on its own track, carrying
      busy/idle milliseconds and the item count, so per-domain utilization
      timelines survive into the trace.  The recorder is only ever touched
      by the calling domain.
    @raise Invalid_argument when [jobs < 0]. *)

val map_with_metrics :
  ?jobs:int ->
  ?spans:Wario_obs.Span.t ->
  ?label:string ->
  metrics:Wario_obs.Metrics.t ->
  (Wario_obs.Metrics.t -> 'a -> 'b) ->
  'a list ->
  'b list
(** Like {!map}, for jobs that record {!Wario_obs.Metrics}.  A shared
    registry is not domain-safe, so each item gets a {e private} registry
    and the per-item registries are merged into [metrics] at the join {b in
    input order} — counters in the merged registry are therefore identical
    for any [jobs] (timers carry wall-clock and are inherently run-to-run
    noisy, but still deterministic in {e which} names appear and in which
    order).  With [metrics] disabled the per-item registries are disabled
    too, so instrumented jobs cost nothing. *)

val serialized : ('a -> unit) -> 'a -> unit
(** [serialized sink] is [sink] behind a mutex: a single-writer funnel for
    progress lines emitted from inside parallel jobs, so concurrent writes
    are never interleaved mid-line.  (Code on the main-domain side of a
    [map] — e.g. the verify harness, which logs verdicts after collecting
    them in input order — does not need this.) *)
