(* Deterministic parallel map over a pool of OCaml 5 domains.

   Work distribution is a single atomic cursor over an array of the input
   items: domains race to fetch-and-add the next index, so scheduling is
   dynamic (long items do not convoy short ones behind a static split),
   but every result lands in its input slot and the caller observes input
   order only.  Exceptions are captured per item and the lowest-indexed
   one is re-raised after the pool drains, which keeps failure behaviour
   independent of domain timing. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 0) (f : 'a -> 'b) (items : 'a list) : 'b list =
  if jobs < 0 then
    invalid_arg (Printf.sprintf "Exec.map: jobs must be >= 0 (got %d)" jobs);
  (* jobs = 0: size the pool to the host.  On a single-core host this
     resolves to 1, i.e. the plain sequential path — a domain pool with
     no parallelism to buy only adds spawn/join overhead (BENCH_4's
     parallel run clocked 0.87x on one CPU). *)
  let jobs = if jobs = 0 then default_jobs () else jobs in
  match items with
  | [] -> []
  | _ when jobs = 1 -> List.map f items
  | _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            let r =
              try Ok (f arr.(i))
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            results.(i) <- Some r;
            loop ()
          end
        in
        loop ()
      in
      let spawned = List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
      (* the calling domain is a full pool member, not a passive joiner *)
      worker ();
      List.iter Domain.join spawned;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None ->
                 (* unreachable: the cursor hands every index to exactly one
                    worker, and joins above guarantee completion *)
                 assert false)
           results)

let serialized (sink : 'a -> unit) : 'a -> unit =
  let m = Mutex.create () in
  fun x ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> sink x)
