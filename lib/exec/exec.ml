(* Deterministic parallel map over a pool of OCaml 5 domains.

   Work distribution is a single atomic cursor over an array of the input
   items: domains race to fetch-and-add the next index, so scheduling is
   dynamic (long items do not convoy short ones behind a static split),
   but every result lands in its input slot and the caller observes input
   order only.  Exceptions are captured per item and the lowest-indexed
   one is re-raised after the pool drains, which keeps failure behaviour
   independent of domain timing.

   Observability: with a live [?spans] recorder, the whole map is wrapped
   in a pool span and each worker contributes a child span on its own
   track (busy/idle milliseconds, item count) grafted at the join — the
   recorder itself is only ever touched by the calling domain.  Metrics
   registries are not domain-safe; [map_with_metrics] gives every item a
   private registry and merges them in input order at the join, so the
   merged counters are identical for any [jobs]. *)

module Span = Wario_obs.Span
module M = Wario_obs.Metrics

let default_jobs () = Domain.recommended_domain_count ()
let now_ms () = Unix.gettimeofday () *. 1000.

(* A completed worker window: start/stop, items handled, busy milliseconds
   (sum of per-item wall time; idle = window - busy is pool ramp/drain). *)
let worker_span k (wt0, wt1, count, busy) : Span.span =
  let dur = Float.max 0. (wt1 -. wt0) in
  {
    Span.sp_name = "worker";
    sp_t0 = wt0;
    sp_dur = dur;
    sp_track = k + 1;
    sp_attrs =
      [
        ("worker", Span.Int k);
        ("busy_ms", Span.Float busy);
        ("idle_ms", Span.Float (Float.max 0. (dur -. busy)));
      ];
    sp_counters = [ ("items", count) ];
    sp_children = [];
  }

let map ?(jobs = 0) ?(spans = Span.disabled) ?(label = "exec.map")
    (f : 'a -> 'b) (items : 'a list) : 'b list =
  if jobs < 0 then
    invalid_arg (Printf.sprintf "Exec.map: jobs must be >= 0 (got %d)" jobs);
  (* jobs = 0: size the pool to the host.  On a single-core host this
     resolves to 1, i.e. the plain sequential path — a domain pool with
     no parallelism to buy only adds spawn/join overhead (BENCH_4's
     parallel run clocked 0.87x on one CPU). *)
  let jobs = if jobs = 0 then default_jobs () else jobs in
  let instrument = Span.is_enabled spans in
  let run () =
    match items with
    | [] -> []
    | _ when jobs = 1 ->
        if instrument then begin
          let wt0 = now_ms () in
          let r = List.map f items in
          let wt1 = now_ms () in
          (* sequential: the whole window is busy *)
          Span.graft spans
            [ worker_span 0 (wt0, wt1, List.length items, wt1 -. wt0) ];
          r
        end
        else List.map f items
    | _ ->
        let arr = Array.of_list items in
        let n = Array.length arr in
        let results = Array.make n None in
        let cursor = Atomic.make 0 in
        let nworkers = min jobs n in
        let stats = Array.make nworkers None in
        let step i =
          let r =
            try Ok (f arr.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r
        in
        let worker k () =
          if instrument then begin
            let wt0 = now_ms () in
            let busy = ref 0. in
            let count = ref 0 in
            let rec loop () =
              let i = Atomic.fetch_and_add cursor 1 in
              if i < n then begin
                let s = now_ms () in
                step i;
                busy := !busy +. (now_ms () -. s);
                incr count;
                loop ()
              end
            in
            loop ();
            stats.(k) <- Some (wt0, now_ms (), !count, !busy)
          end
          else
            let rec loop () =
              let i = Atomic.fetch_and_add cursor 1 in
              if i < n then begin
                step i;
                loop ()
              end
            in
            loop ()
        in
        let spawned =
          List.init (nworkers - 1) (fun k -> Domain.spawn (worker (k + 1)))
        in
        (* the calling domain is a full pool member, not a passive joiner *)
        worker 0 ();
        List.iter Domain.join spawned;
        if instrument then
          Span.graft spans
            (Array.to_list stats
            |> List.mapi (fun k s -> Option.map (worker_span k) s)
            |> List.filter_map Fun.id);
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
               | None ->
                   (* unreachable: the cursor hands every index to exactly one
                      worker, and joins above guarantee completion *)
                   assert false)
             results)
  in
  if instrument then
    Span.with_span spans
      ~attrs:
        [
          ("jobs", Span.Int jobs); ("items", Span.Int (List.length items));
        ]
      label run
  else run ()

let map_with_metrics ?jobs ?spans ?label ~(metrics : M.t)
    (f : M.t -> 'a -> 'b) (items : 'a list) : 'b list =
  let live = M.is_enabled metrics in
  let wrapped item =
    let m = if live then M.create () else M.disabled in
    (f m item, m)
  in
  let pairs = map ?jobs ?spans ?label wrapped items in
  (* merge in input order: the merged registry is a pure function of the
     inputs, independent of which domain ran which item *)
  if live then List.iter (fun (_, m) -> M.merge ~into:metrics m) pairs;
  List.map fst pairs

let serialized (sink : 'a -> unit) : 'a -> unit =
  let m = Mutex.create () in
  fun x ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> sink x)
