(** Cortex-M-class emulator for TM2 images (the paper's custom
    Unicorn-based emulator, §5.1.1, rebuilt as an interpreter).

    Models a three-stage-pipeline cycle count, non-volatile main memory
    with volatile registers/flags, the double-buffered checkpoint runtime,
    intermittent power with boot/restore replay, optional periodic
    interrupts (hardware exception entry pushes eight words at sp — the
    hazard the pop converter exists for), WAR-violation-absence
    verification on every access, and the statistics behind Figures 4-7 and
    Table 3.

    Besides the one-shot {!run}, a stepping API ({!create}/{!step}) exposes
    the machine to the fault-injection harness (lib/verify): instruction
    granularity execution, deep snapshots ({!clone}), forced power cuts at
    chosen points ({!cut_power}) and a digest of the final non-volatile
    state ({!nv_digest}). *)

exception Emu_error of string

exception No_forward_progress of string
(** Raised when {!no_forward_progress_threshold} consecutive power cycles
    elapse without a single checkpoint commit: the device can never finish
    under this supply.  The payload is the offending supply's description
    (see {!Power.describe}). *)

val no_forward_progress_threshold : int
(** Consecutive fruitless power cycles (boots with no checkpoint commit)
    tolerated before {!No_forward_progress} is raised. *)

val boot_cycles : int

type violation = { v_pc : int; v_func : string; v_addr : int; v_instr : string }

type cause_counts = {
  mutable c_entry : int;
  mutable c_exit : int;
  mutable c_middle : int;
  mutable c_backend : int;
}

(** Decomposition of total active cycles (the invariant
    [w_useful + w_boot + w_restore + w_reexec = cycles] always holds):
    boot sequences, checkpoint restore replays, work discarded by power
    failures (it re-executes after the restore), and the first-execution
    work that survived to a commit or the final halt. *)
type waste = {
  w_useful : int;
  w_boot : int;
  w_restore : int;
  w_reexec : int;
}

type result = {
  output : int32 list;
  exit_code : int32;
  cycles : int;  (** total active cycles, incl. boot/restore/re-execution *)
  instrs : int;
  checkpoints : cause_counts;
  checkpoints_total : int;
  region_sizes : int list;  (** cycles between region boundaries *)
  power_failures : int;
  failure_sites : (int * int) list;
      (** one [(commits_so_far, lost_work)] per power failure, in order.
          Execution always resumes at the last committed checkpoint (cold
          start when [commits_so_far = 0]) and commits advance one region
          boundary at a time, so [lost_work] — the work cycles this power
          period past the resume point up to the cycle power died,
          including the unspent shortfall of the in-flight instruction —
          pins each failure {e exactly} on the continuous run's timeline:
          the campaign's cut-coverage accounting maps it to
          [boundary(commits_so_far) + lost_work] golden cycles.  Failures
          during boot/restore report the resume point itself. *)
  boots : int;
  violations : violation list;
  irqs_taken : int;
  call_counts : (string * int) list;
      (** dynamic calls per callee (a profile for the Expander) *)
  waste : waste;
      (** decomposition of [cycles]: useful + boot + restore + re-executed *)
}

val ckpt_cost : int -> int
(** Cycles to checkpoint with a given live mask. *)

val restore_cost : int -> int

val ckpt_bytes : int -> int
(** Bytes a commit writes into its buffer for a given live mask. *)

type engine =
  | Auto
      (** best eligible engine — block when possible, reference otherwise
          (default) *)
  | Reference  (** force the fully instrumented per-step reference path *)
  | Uop  (** the predecoded micro-op loop (the former [Fast] path) *)
  | Block
      (** basic blocks fused into OCaml closures, direct-threaded
          dispatch *)
(** The engine ladder {!run} and {!run_batch} drive.  [Uop] and [Block]
    are branch-light twins of the reference path for the measurement
    configuration ([verify:false], no tracer, [irq_period = 0]); both
    hoist the power/fuel checks out of the inner loop ([Uop] per provably
    safe stretch, [Block] per basic block) and both fall back to the
    reference path per batch whenever the configuration makes them
    ineligible.  [Block] additionally falls back to checked single steps
    at power/fuel edges and at any pc inside a block (e.g. right after a
    snapshot restore).  All engines produce byte-for-byte identical
    {!result} records including [waste] and [failure_sites]; the reference
    path is the oracle (qcheck property "every engine = reference" in
    test/test_props.ml). *)

val run :
  ?fuel:int ->
  ?supply:Power.supply ->
  ?irq_period:int ->
  ?verify:bool ->
  ?tracer:Wario_obs.Trace.sink ->
  ?engine:engine ->
  Image.t ->
  result
(** Execute an image until it halts.
    @param fuel total active-cycle budget (default 2G)
    @param supply power model (default [Continuous])
    @param irq_period fire an interrupt every N cycles (0 = off)
    @param verify track WAR violations (default true)
    @param tracer event sink for the execution tracer (default
    {!Wario_obs.Trace.null}, whose emissions are single tag tests — no
    measurable slowdown).  Pass an unbounded {!Wario_obs.Trace.ring} to
    record every checkpoint commit, power failure, boot/restore,
    interrupt, function transition and the final halt, with active-cycle
    timestamps.
    @param engine interpreter/translator selection (default [Auto]).

    The runtime's save-all escape hatch is sampled {e once}, at instance
    creation: setting the [WARIO_SAVE_ALL] environment variable (to
    anything other than [""] or ["0"]) makes every checkpoint save the
    full register file regardless of its live mask (changing the variable
    mid-run has no effect). *)

(** {1 Stepping and snapshots}

    [run] is equivalent to [create] followed by [step] until [Halted] and
    [result].  A stepping instance is mutable; [clone] takes a deep,
    independently steppable snapshot. *)

type t
(** A booted, steppable emulator instance. *)

val create :
  ?fuel:int ->
  ?supply:Power.supply ->
  ?irq_period:int ->
  ?verify:bool ->
  ?tracer:Wario_obs.Trace.sink ->
  ?count_pcs:bool ->
  Image.t ->
  t
(** Initialise memory and perform the first power-on (same defaults as
    {!run}).  Note that {!clone} shares the tracer sink with the original:
    stepping both copies interleaves their events, so snapshot-heavy users
    (lib/verify) should trace at most one instance.

    [count_pcs] (default false) records how many times each pc executes —
    the PGO pilot's profile, read back with {!block_counts}.  Counting
    keeps the instance on the reference path (the fast path's macro-steps
    never touch per-pc state), so leave it off for measurement runs. *)

type step =
  | Stepped  (** one instruction retired *)
  | Rebooted  (** the on-period ended: power failed, rebooted, restored *)
  | Halted

val step : t -> step
(** Execute one instruction (plus any due interrupt); on power failure,
    replay the boot/restore sequence.  Idempotent once halted. *)

val run_batch : ?engine:engine -> t -> int -> step
(** [run_batch st n] executes up to [n] instructions as one macro-step.
    When the instance is fast-engine eligible (verify off, no tracer,
    interrupts off) the power/fuel budget checks are hoisted out of the
    inner loop — per provably safe stretch on [Uop], per basic block on
    [Auto]/[Block] (compiling and caching the block closures on first
    use); otherwise it is exactly [n] {!step}s.  Returns [Stepped] after
    [n] instructions, or earlier [Rebooted]/[Halted] the moment either
    occurs.  Observable behaviour is identical to stepping.
    @raise Invalid_argument when [n < 1]. *)

val output : t -> int32 list
(** Console output so far, oldest first.  Reverses the internal O(1)-append
    event list once per call — call it at inspection points, not per
    step. *)

val cut_power : t -> unit
(** Force a power failure {e now}, regardless of remaining budget, and
    reboot: the adversarial injection primitive.  No-op once halted. *)

val clone : t -> t
(** Deep snapshot: memory, registers, power cursor, WAR-tracking state and
    statistics are all duplicated; stepping either copy never affects the
    other. *)

val block_counts : t -> (string * int) list option
(** Per-machine-block entry counts folded from the per-pc execution counts
    ([None] unless the instance was created with [count_pcs:true]).  Keys
    are mangled block labels in layout order — the
    {!Wario_analysis.Costmodel.profile} shape consumed by profile-guided
    checkpoint placement. *)

val halted : t -> bool
val cycles : t -> int  (** active cycles so far *)

val pc : t -> int
val current_function : t -> string
val boots : t -> int
val memory : t -> bytes  (** copy of the current memory image *)

val nv_digest : t -> int64
(** FNV-1a digest of all non-volatile memory {e excluding} the checkpoint
    double buffer (whose sequence numbers legitimately differ across power
    schedules).  After a halt, two idempotent executions of the same image
    must agree on this digest — the crash-consistency oracle's memory
    check. *)

val result : t -> result
(** Statistics so far (complete once {!halted}). *)

type engine_stats = {
  es_blocks : int;  (** basic blocks compiled (0 if never block-dispatched) *)
  es_compile_ms : float;  (** wall time spent translating blocks *)
  es_dispatches : int;  (** fused closures executed *)
  es_fallback_steps : int;  (** checked single steps at block-engine edges *)
}

val engine_stats : t -> engine_stats
(** Block-engine telemetry for this instance: compile cost, dispatch and
    fallback counters.  All zero unless the block engine ran.  The block
    cache is compiled lazily on first block dispatch and shared with
    {!clone}s taken afterwards. *)
