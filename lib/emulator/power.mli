(** Power-supply models for intermittent execution (paper §5.1.4).  Only
    on-durations matter: during an off period nothing executes and volatile
    state is lost. *)

type supply =
  | Continuous
  | Periodic of int  (** fixed on-period, in clock cycles *)
  | Trace of int array  (** sequence of on-durations, repeated cyclically *)
  | Trace_once of int array
      (** sequence of on-durations played exactly once: when a harvester
          recording is shorter than the run, the wrapping [Trace] replays
          it while [Trace_once] models a depleted source — after the last
          period the budget is zero forever and the emulator raises
          {!Emulator.No_forward_progress}. *)
  | Schedule of int array
      (** adversarial injection: a finite sequence of on-durations (chosen
          cut points, in active cycles from each power-on); once the
          schedule is exhausted power stays on forever, so every scheduled
          run terminates.  Used by the [lib/verify] fault-injection
          harness. *)

type t

val create : supply -> t
(** @raise Invalid_argument on degenerate supplies: a non-positive
    [Periodic] on-period, an empty [Trace], or a non-positive on-duration
    in a [Trace] or [Schedule] (any of which would otherwise hang the
    emulator downstream). *)

val copy : t -> t
(** An independent copy (the trace/schedule cursor is duplicated). *)

val next_budget : t -> int option
(** Energy (in cycles) of the next on-period; [None] = unlimited. *)

val is_continuous : t -> bool

val describe : supply -> string
(** One-line human description, e.g. ["periodic(500)"] or
    ["schedule(2 cuts: 413,879)"] — used in diagnostics such as
    {!Emulator.No_forward_progress}. *)
