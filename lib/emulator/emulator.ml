(* Cortex-M-class emulator for TM2 images (the paper's custom Unicorn-based
   emulator, §5.1.1, rebuilt as an interpreter).

   Modelled:
   - a three-stage-pipeline cycle model (taken branches pay a refill);
   - non-volatile main memory, volatile registers/flags;
   - the double-buffered checkpoint runtime: [Ckpt] saves the live
     registers (mask) + sp/pc/flags into the inactive buffer and commits by
     bumping its sequence number — a power failure mid-checkpoint leaves the
     previous checkpoint intact;
   - intermittent power ([Power]): every instruction (and the checkpoint
     commit, atomically) spends from the current on-period budget; running
     dry is a power failure: volatile state clears, and on the next
     on-period the boot sequence and checkpoint restore replay;
   - optional periodic interrupts: exception entry pushes eight words at sp
     exactly like the hardware, which is the WAR hazard the pop converter
     and epilog optimizer exist for; [Cpsid]/[Cpsie] defer delivery;
   - WAR-violation-absence verification (paper §5.1.1): per idempotent
     region, a write to a byte first accessed by a read is a violation —
     checked on *every* access including back-end stack traffic;
   - statistics: executed checkpoints by cause, idempotent region sizes in
     cycles, power failures, cycle/instruction totals. *)

module I = Wario_machine.Isa
module Tr = Wario_obs.Trace

exception Emu_error of string
exception No_forward_progress of string

let no_forward_progress_threshold = 2000
let boot_cycles = 400
let halt_magic = 0x7fffffffl

type violation = { v_pc : int; v_func : string; v_addr : int; v_instr : string }

type cause_counts = {
  mutable c_entry : int;
  mutable c_exit : int;
  mutable c_middle : int;
  mutable c_backend : int;
}

type waste = {
  w_useful : int;  (** first-execution work that survived to a commit/halt *)
  w_boot : int;  (** boot sequences (400 cycles each) *)
  w_restore : int;  (** checkpoint restore replays *)
  w_reexec : int;  (** work discarded by power failures, later redone *)
}

type result = {
  output : int32 list;
  exit_code : int32;
  cycles : int;  (** total active cycles, incl. boot/restore/re-execution *)
  instrs : int;
  checkpoints : cause_counts;
  checkpoints_total : int;
  region_sizes : int list;  (** cycles between region boundaries *)
  power_failures : int;
  failure_sites : (int * int) list;
      (** one [(commits_so_far, lost_work)] per power failure, in order;
          locates each failure on the continuous run's timeline (see mli) *)
  boots : int;
  violations : violation list;
  irqs_taken : int;
  call_counts : (string * int) list;
      (** dynamic calls per callee (a profile for the Expander) *)
  waste : waste;
      (** decomposition of [cycles]: useful + boot + restore + re-executed *)
}

(* [budget]: remaining cycles in the current on-period; [unlimited_budget]
   encodes a continuous supply.  An int (not [int option]) so the
   per-instruction spend never allocates. *)
let unlimited_budget = max_int

(* Predecoded micro-ops for the fast path.  Every static decode decision —
   operand shape (register vs immediate), access width, ALU operator — is
   folded into one constant constructor at [create], so the interpreter
   loop dispatches through a single jump table over an immediate array
   instead of re-matching nested variants (and re-unboxing [int32]
   immediates) on every execution of the same pc. *)
type uop =
  (* ALU, register / immediate second operand *)
  | U_add_r | U_sub_r | U_rsb_r | U_mul_r | U_sdiv_r | U_udiv_r
  | U_and_r | U_orr_r | U_eor_r | U_lsl_r | U_lsr_r | U_asr_r
  | U_add_i | U_sub_i | U_rsb_i | U_mul_i | U_sdiv_i | U_udiv_i
  | U_and_i | U_orr_i | U_eor_i | U_lsl_i | U_lsr_i | U_asr_i
  (* moves and compares *)
  | U_mov_r | U_mov_i | U_movw
  | U_movc_r | U_movc_i
  | U_cmp_r | U_cmp_i
  (* loads: immediate offset / register offset, by width *)
  | U_ldr8 | U_ldr8s | U_ldr16 | U_ldr16s | U_ldr32
  | U_ldrr8 | U_ldrr8s | U_ldrr16 | U_ldrr16s | U_ldrr32
  (* stores (sign-extending widths store identically to their unsigned
     twins, so S8/S16 fold into W8/W16 at predecode) *)
  | U_str8 | U_str16 | U_str32
  | U_strr8 | U_strr16 | U_strr32
  | U_push
  (* control *)
  | U_b | U_bc | U_bl | U_bx_lr
  (* intermittence support *)
  | U_ckpt | U_cpsid | U_cpsie
  | U_svc_print | U_svc_halt
  | U_pseudo

type state = {
  img : Image.t;
  supply_desc : string;  (** for diagnostics (No_forward_progress) *)
  mem : Bytes.t;
  regs : int32 array;
  mutable nf : bool;
  mutable zf : bool;
  mutable cf : bool;
  mutable vf : bool;
  mutable pc : int;
  mutable primask : bool;  (** true = interrupts disabled *)
  mutable pending_irq : bool;
  mutable halted : bool;
  mutable exit_code : int32;
  (* power *)
  power : Power.t;
  mutable budget : int;  (** [unlimited_budget] = continuous *)
  mutable cycles : int;
  mutable instrs : int;
  fuel : int;
  (* interrupts *)
  irq_period : int;
  mutable next_irq_at : int;
  mutable irqs_taken : int;
  (* verification *)
  verify : bool;
  epoch : int array;
  kinds : Bytes.t;
  mutable cur_epoch : int;
  mutable violations : violation list;
  (* stats *)
  counts : cause_counts;
  mutable region_start : int;
  mutable regions_rev : int list;
  mutable failures : int;
  mutable boots : int;
  mutable boots_since_commit : int;
  mutable out_rev : int32 list;
  (* dense per-function dynamic call counters (the Expander profile);
     indexed by the function's slot in [fn_names] *)
  fn_names : string array;
  fn_calls : int array;
  (* fast-path register file: [regs] holds boxed [int32]s, so every
     register write through it allocates; the fast path runs over this
     unboxed mirror (same values, sign-extended to native ints) and syncs
     with [regs] at batch boundaries and checkpoint commits *)
  fregs : int array;
  (* per-pc tables precomputed by [create] — every per-instruction cost
     that is static (which is all of them except a not-taken [Bc]) is
     paid for once here instead of per step: *)
  save_all : bool;  (** WARIO_SAVE_ALL, read once at [create] *)
  cost : int array;  (** static spend per pc ([Bc]: the taken cost, 3) *)
  eff_mask : int array;
      (** effective checkpoint mask per pc ([Ckpt]/[Svc 0]); -1 elsewhere *)
  push_n : int array;  (** registers pushed per pc ([Push]); 0 elsewhere *)
  call_fn : int array;  (** callee's [fn_names] slot per pc ([Bl]); -1 *)
  max_step_cost : int;  (** max of [cost]: batch-headroom unit *)
  (* predecoded program (fast path): micro-op plus up to three int
     operands per pc.  Operand meaning is per-[uop]: register numbers,
     sign-extended immediates/offsets, branch targets, callee slots.
     [fcond] carries the condition for [U_bc]/[U_movc_*] pcs ([AL]
     elsewhere).  All five are immediate arrays — reads never allocate. *)
  fop : uop array;
  fa : int array;
  fb : int array;
  fc : int array;
  fcond : I.cond array;
  (* profiling: per-pc execution counts for the PGO pilot run ([None] =
     off).  Counting forces the reference path ([fast_eligible] checks it):
     the fast path's batches never touch per-pc state. *)
  pc_counts : int array option;
  (* observability *)
  tracer : Tr.sink;
  trace_on : bool;
  mutable trace_func : string;  (** last function attributed on the tracer *)
  mutable acc_boot : int;  (** cycles spent in boot sequences *)
  mutable acc_restore : int;  (** cycles spent replaying restores *)
  mutable acc_reexec : int;  (** work cycles discarded by power failures *)
  mutable work_at_commit : int;  (** work-cycle counter at the last commit *)
  mutable commits : int;  (** checkpoint commits so far (monotone) *)
  mutable fail_sites_rev : (int * int) list;
      (** per power failure: (commits so far, work cycles lost) *)
  mutable period_live : bool;
      (** boot + restore completed for the current power period — failures
          before that land at the resume point itself, so no shortfall is
          charged to the failure site *)
}

(* Work cycles: everything except boot and restore replay.  Work done since
   the last commit is provisionally useful; a power failure discards it
   (it will re-execute), which is the wasted-cycle accounting behind
   [result.waste]. *)
let work_total st = st.cycles - st.acc_boot - st.acc_restore

(* ------------------------------------------------------------------ *)
(* Memory with WAR tracking                                             *)
(* ------------------------------------------------------------------ *)

let in_ckpt_area a = a >= Image.ckpt_base && a < Image.ckpt_base + 0x100

let check_addr st a n =
  if a < 0x40 || a + n > Image.mem_size then
    raise
      (Emu_error
         (Printf.sprintf "memory fault at 0x%x (pc=%d, %s)" a st.pc
            (I.string_of_instr st.img.Image.code.(st.pc))))

let track_read st a n =
  if st.verify && not (in_ckpt_area a) then
    for i = a to a + n - 1 do
      if st.epoch.(i) <> st.cur_epoch then begin
        st.epoch.(i) <- st.cur_epoch;
        Bytes.unsafe_set st.kinds i 'r'
      end
    done

let track_write st a n =
  if st.verify && not (in_ckpt_area a) then
    for i = a to a + n - 1 do
      if st.epoch.(i) <> st.cur_epoch then begin
        st.epoch.(i) <- st.cur_epoch;
        Bytes.unsafe_set st.kinds i 'w'
      end
      else if Bytes.unsafe_get st.kinds i = 'r' then begin
        st.violations <-
          {
            v_pc = st.pc;
            v_func = st.img.Image.func_of_pc.(st.pc);
            v_addr = i;
            v_instr = I.string_of_instr st.img.Image.code.(st.pc);
          }
          :: st.violations;
        (* only report each byte once per region *)
        Bytes.unsafe_set st.kinds i 'w'
      end
    done

let region_boundary st =
  st.cur_epoch <- st.cur_epoch + 1;
  st.regions_rev <- (st.cycles - st.region_start) :: st.regions_rev;
  st.region_start <- st.cycles

let load st w a =
  let a = Int32.to_int a land 0xffffffff in
  let n = I.bytes_of_width w in
  check_addr st a n;
  track_read st a n;
  match w with
  | I.W8 -> Int32.of_int (Char.code (Bytes.get st.mem a))
  | I.S8 ->
      let v = Char.code (Bytes.get st.mem a) in
      Int32.of_int (if v >= 0x80 then v - 0x100 else v)
  | I.W16 -> Int32.of_int (Bytes.get_uint16_le st.mem a)
  | I.S16 -> Int32.of_int (Bytes.get_int16_le st.mem a)
  | I.W32 -> Bytes.get_int32_le st.mem a

let store st w a v =
  let a = Int32.to_int a land 0xffffffff in
  let n = I.bytes_of_width w in
  check_addr st a n;
  track_write st a n;
  match w with
  | I.W8 | I.S8 -> Bytes.set st.mem a (Char.chr (Int32.to_int v land 0xff))
  | I.W16 | I.S16 -> Bytes.set_uint16_le st.mem a (Int32.to_int v land 0xffff)
  | I.W32 -> Bytes.set_int32_le st.mem a v

(* raw accesses for the checkpoint runtime (never tracked) *)
let raw_store32 st a v = Bytes.set_int32_le st.mem a v
let raw_load32 st a = Bytes.get_int32_le st.mem a

(* ------------------------------------------------------------------ *)
(* ALU and flags                                                        *)
(* ------------------------------------------------------------------ *)

let eval_alu op (a : int32) (b : int32) : int32 =
  let sh = Int32.to_int b land 255 in
  let shift f = if sh >= 32 then 0l else f a sh in
  match op with
  | I.ADD -> Int32.add a b
  | I.SUB -> Int32.sub a b
  | I.RSB -> Int32.sub b a
  | I.MUL -> Int32.mul a b
  | I.SDIV ->
      (* Cortex-M semantics: division by zero yields 0 (DIV_0_TRP clear) *)
      if Int32.equal b 0l then 0l
      else if Int32.equal a Int32.min_int && Int32.equal b (-1l) then
        Int32.min_int
      else Int32.div a b
  | I.UDIV -> if Int32.equal b 0l then 0l else Int32.unsigned_div a b
  | I.AND -> Int32.logand a b
  | I.ORR -> Int32.logor a b
  | I.EOR -> Int32.logxor a b
  | I.LSL -> shift Int32.shift_left
  | I.LSR -> shift Int32.shift_right_logical
  | I.ASR -> if sh >= 32 then Int32.shift_right a 31 else Int32.shift_right a sh

let set_flags st (a : int32) (b : int32) =
  let d = Int32.sub a b in
  st.nf <- Int32.compare d 0l < 0;
  st.zf <- Int32.equal d 0l;
  st.cf <- Int32.unsigned_compare a b >= 0;
  st.vf <-
    (Int32.compare a 0l < 0 && Int32.compare b 0l >= 0 && Int32.compare d 0l >= 0)
    || (Int32.compare a 0l >= 0 && Int32.compare b 0l < 0 && Int32.compare d 0l < 0)

let cond_holds st = function
  | I.EQ -> st.zf
  | I.NE -> not st.zf
  | I.LT -> st.nf <> st.vf
  | I.LE -> st.zf || st.nf <> st.vf
  | I.GT -> (not st.zf) && st.nf = st.vf
  | I.GE -> st.nf = st.vf
  | I.LO -> not st.cf
  | I.LS -> (not st.cf) || st.zf
  | I.HI -> st.cf && not st.zf
  | I.HS -> st.cf
  | I.AL -> true

let pack_flags st =
  (if st.nf then 1 else 0)
  lor (if st.zf then 2 else 0)
  lor (if st.cf then 4 else 0)
  lor if st.vf then 8 else 0

let unpack_flags st v =
  st.nf <- v land 1 <> 0;
  st.zf <- v land 2 <> 0;
  st.cf <- v land 4 <> 0;
  st.vf <- v land 8 <> 0

(* ------------------------------------------------------------------ *)
(* Checkpoint runtime (double buffered)                                 *)
(* ------------------------------------------------------------------ *)

let buffer_stride = 0x80
let buf_addr i = Image.ckpt_base + (i * buffer_stride)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let ckpt_cost mask = 12 + (2 * (popcount mask + 3)) (* + sp, pc, flags *)
let restore_cost mask = 8 + (2 * (popcount mask + 3))

let active_buffer st =
  let s0 = raw_load32 st (buf_addr 0) and s1 = raw_load32 st (buf_addr 1) in
  if Int32.equal s0 0l && Int32.equal s1 0l then None
  else if Int32.unsigned_compare s0 s1 >= 0 then Some 0
  else Some 1

let obs_cause : I.ckpt_cause -> Tr.cause = function
  | I.Function_entry -> Tr.Entry
  | I.Function_exit -> Tr.Exit
  | I.Middle_end_war -> Tr.Middle
  | I.Back_end_war -> Tr.Backend

(* Bytes a commit writes into its buffer: seq, mask, pc, sp, flags + the
   masked registers. *)
let ckpt_bytes mask = 4 * (popcount mask + 5)

let commit_checkpoint st ~(cause : Tr.cause) mask resume_pc =
  let target =
    match active_buffer st with Some 0 -> 1 | Some _ -> 0 | None -> 0
  in
  let base = buf_addr target in
  raw_store32 st (base + 4) (Int32.of_int mask);
  raw_store32 st (base + 8) (Int32.of_int resume_pc);
  raw_store32 st (base + 12) st.regs.(I.sp);
  raw_store32 st (base + 16) (Int32.of_int (pack_flags st));
  for r = 0 to 14 do
    if mask land (1 lsl r) <> 0 then
      raw_store32 st (base + 20 + (4 * r)) st.regs.(r)
  done;
  (* commit: bump the sequence number last *)
  let seq =
    Int32.add 1l
      (match active_buffer st with
      | None -> 0l
      | Some i -> raw_load32 st (buf_addr i))
  in
  raw_store32 st base seq;
  st.boots_since_commit <- 0;
  st.commits <- st.commits + 1;
  st.work_at_commit <- work_total st;
  if st.trace_on then
    Tr.emit st.tracer st.cycles
      (Tr.Checkpoint
         {
           cause;
           pc = st.pc;
           func = st.img.Image.func_of_pc.(st.pc);
           mask;
           bytes = ckpt_bytes mask;
           cost = ckpt_cost mask;
         });
  region_boundary st

(* Returns the replay cost in cycles, or [None] when there is no committed
   checkpoint to restore (cold start). *)
let restore_checkpoint st : int option =
  match active_buffer st with
  | None -> None
  | Some i ->
      let base = buf_addr i in
      let mask = Int32.to_int (raw_load32 st (base + 4)) in
      st.pc <- Int32.to_int (raw_load32 st (base + 8));
      st.regs.(I.sp) <- raw_load32 st (base + 12);
      unpack_flags st (Int32.to_int (raw_load32 st (base + 16)));
      for r = 0 to 14 do
        if r <> I.sp then
          st.regs.(r) <-
            (if mask land (1 lsl r) <> 0 then raw_load32 st (base + 20 + (4 * r))
             else 0l)
      done;
      let cost = restore_cost mask in
      st.cycles <- st.cycles + cost;
      Some cost

(* ------------------------------------------------------------------ *)
(* Power                                                                *)
(* ------------------------------------------------------------------ *)

exception Power_failed

(* Spend [c] cycles atomically; raises [Power_failed] if the budget cannot
   cover them (the action does not take place).  An unlimited budget is
   [unlimited_budget] cycles: far above any reachable spend (fuel caps the
   total), so the same two branch-free int operations serve both cases. *)
let spend st c =
  if st.budget < c then
    (* the remaining budget is kept: [power_failure] reads it as the
       shortfall between the last retired instruction and the cycle power
       actually died, and [power_on] overwrites it for the next period *)
    raise Power_failed;
  st.budget <- st.budget - c;
  st.cycles <- st.cycles + c;
  if st.cycles > st.fuel then
    raise (Emu_error "cycle budget exhausted (no termination?)")

let cold_start st =
  st.pc <- st.img.Image.entry;
  Array.fill st.regs 0 16 0l;
  st.regs.(I.sp) <- Int32.of_int Image.stack_top;
  st.regs.(I.lr) <- halt_magic;
  st.nf <- false;
  st.zf <- false;
  st.cf <- false;
  st.vf <- false

let power_on st =
  st.boots <- st.boots + 1;
  st.boots_since_commit <- st.boots_since_commit + 1;
  if st.boots_since_commit > no_forward_progress_threshold then
    raise (No_forward_progress st.supply_desc);
  st.budget <-
    (match Power.next_budget st.power with
    | Some b -> b
    | None -> unlimited_budget);
  st.primask <- false;
  st.pending_irq <- false;
  (* boot + restore; failing inside these just burns the period *)
  spend st boot_cycles;
  st.acc_boot <- st.acc_boot + boot_cycles;
  let restored =
    match restore_checkpoint st with
    | Some cost ->
        st.acc_restore <- st.acc_restore + cost;
        Some cost
    | None ->
        cold_start st;
        None
  in
  if Sys.getenv_opt "WARIO_DEBUG_EMU" <> None && (st.boots < 50 || st.boots mod 10000 = 0) then
    Printf.eprintf "boot %d: pc=%d (%s) cycles=%d\n%!" st.boots st.pc
      st.img.Image.func_of_pc.(st.pc) st.cycles;
  if st.trace_on then begin
    let func = st.img.Image.func_of_pc.(st.pc) in
    Tr.emit st.tracer st.cycles
      (Tr.Boot
         {
           seq = st.boots;
           restored = restored <> None;
           boot_cost = boot_cycles;
           restore_cost = Option.value restored ~default:0;
           func;
         });
    st.trace_func <- func
  end;
  st.cur_epoch <- st.cur_epoch + 1;
  st.region_start <- st.cycles;
  st.period_live <- true;
  (* the interrupt timer starts once the application code resumes *)
  st.next_irq_at <- st.cycles + st.irq_period

let power_failure st =
  st.failures <- st.failures + 1;
  (* work since the last commit is discarded: it will be re-executed *)
  let lost = work_total st - st.work_at_commit in
  st.acc_reexec <- st.acc_reexec + lost;
  (* [lost] is this period's retired progress past the resume point, and
     the unspent budget remainder is the shortfall to the cycle power
     actually died (the in-flight spend did not fit), so
     (commits, lost + shortfall) pins the failure exactly on the
     continuous run's timeline — the campaign's cut-coverage accounting
     reads this.  Failures during boot/restore land at the resume point. *)
  let shortfall = if st.period_live then max 0 st.budget else 0 in
  st.fail_sites_rev <- (st.commits, lost + shortfall) :: st.fail_sites_rev;
  st.period_live <- false;
  st.work_at_commit <- work_total st;
  if st.trace_on then
    Tr.emit st.tracer st.cycles (Tr.Power_failure { lost_cycles = lost });
  Array.fill st.regs 0 16 0l

(* ------------------------------------------------------------------ *)
(* Interrupts                                                           *)
(* ------------------------------------------------------------------ *)

(* Hardware exception entry/exit: push {r0-r3, r12, lr, pc, xpsr} at sp,
   run an empty handler, pop, return.  The pushes are real tracked writes:
   this is precisely the ISR WAR hazard of paper §3.1.3. *)
let take_irq st =
  spend st 24;
  let sp = Int32.to_int st.regs.(I.sp) in
  let frame = sp - 32 in
  let values =
    [|
      st.regs.(0); st.regs.(1); st.regs.(2); st.regs.(3); st.regs.(12);
      st.regs.(I.lr); Int32.of_int st.pc; Int32.of_int (pack_flags st);
    |]
  in
  check_addr st frame 32;
  Array.iteri
    (fun i v ->
      track_write st (frame + (4 * i)) 4;
      raw_store32 st (frame + (4 * i)) v)
    values;
  (* empty handler; exception return reads the frame back *)
  for i = 0 to 7 do
    track_read st (frame + (4 * i)) 4;
    ignore (raw_load32 st (frame + (4 * i)))
  done;
  st.irqs_taken <- st.irqs_taken + 1;
  if st.trace_on then
    Tr.emit st.tracer st.cycles
      (Tr.Irq { pc = st.pc; func = st.img.Image.func_of_pc.(st.pc) })

let maybe_irq st =
  if st.irq_period > 0 && st.cycles >= st.next_irq_at then begin
    st.next_irq_at <- st.cycles + st.irq_period;
    if st.primask then st.pending_irq <- true else take_irq st
  end
  else if st.pending_irq && not st.primask then begin
    st.pending_irq <- false;
    take_irq st
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution                                                *)
(* ------------------------------------------------------------------ *)

let op2 st = function I.R r -> st.regs.(r) | I.I i -> i

let exec_instr st (ins : I.instr) =
  let next = st.pc + 1 in
  match ins with
  | I.Alu (op, rd, rn, o) ->
      spend st (match op with I.SDIV | I.UDIV -> 6 | _ -> 1);
      st.regs.(rd) <- eval_alu op st.regs.(rn) (op2 st o);
      st.pc <- next
  | I.Mov (rd, o) ->
      spend st 1;
      st.regs.(rd) <- op2 st o;
      st.pc <- next
  | I.Movw32 (rd, v) ->
      spend st 2;
      st.regs.(rd) <- v;
      st.pc <- next
  | I.Movc (c, rd, o) ->
      spend st 1;
      if cond_holds st c then st.regs.(rd) <- op2 st o;
      st.pc <- next
  | I.Cmp (rn, o) ->
      spend st 1;
      set_flags st st.regs.(rn) (op2 st o);
      st.pc <- next
  | I.Ldr (w, rd, rn, off) ->
      spend st 2;
      st.regs.(rd) <- load st w (Int32.add st.regs.(rn) off);
      st.pc <- next
  | I.LdrR (w, rd, rn, rm) ->
      spend st 2;
      st.regs.(rd) <- load st w (Int32.add st.regs.(rn) st.regs.(rm));
      st.pc <- next
  | I.Str (w, rd, rn, off) ->
      spend st 2;
      store st w (Int32.add st.regs.(rn) off) st.regs.(rd);
      st.pc <- next
  | I.StrR (w, rd, rn, rm) ->
      spend st 2;
      store st w (Int32.add st.regs.(rn) st.regs.(rm)) st.regs.(rd);
      st.pc <- next
  | I.AdrData (rd, _, _) ->
      spend st 2;
      st.regs.(rd) <- st.img.Image.adr.(st.pc);
      st.pc <- next
  | I.Push rs ->
      spend st st.cost.(st.pc);
      let n = st.push_n.(st.pc) in
      let sp = Int32.to_int st.regs.(I.sp) - (4 * n) in
      check_addr st sp (4 * n);
      List.iteri
        (fun i r ->
          track_write st (sp + (4 * i)) 4;
          raw_store32 st (sp + (4 * i)) st.regs.(r))
        rs;
      st.regs.(I.sp) <- Int32.of_int sp;
      st.pc <- next
  | I.B _ ->
      spend st 3;
      st.pc <- st.img.Image.target.(st.pc)
  | I.Bc (c, _) ->
      if cond_holds st c then begin
        spend st 3;
        st.pc <- st.img.Image.target.(st.pc)
      end
      else begin
        spend st 1;
        st.pc <- next
      end
  | I.Bl _ ->
      spend st 4;
      let idx = st.call_fn.(st.pc) in
      st.fn_calls.(idx) <- st.fn_calls.(idx) + 1;
      st.regs.(I.lr) <- Int32.of_int next;
      st.pc <- st.img.Image.target.(st.pc)
  | I.Bx_lr ->
      spend st 3;
      if Int32.equal st.regs.(I.lr) halt_magic then begin
        st.halted <- true;
        st.exit_code <- st.regs.(0);
        if st.trace_on then
          Tr.emit st.tracer st.cycles (Tr.Halt { exit_code = st.exit_code })
      end
      else st.pc <- Int32.to_int st.regs.(I.lr)
  | I.Ckpt (cause, _) ->
      (* effective mask (WARIO_SAVE_ALL folded in) and its cost are
         precomputed per pc by [create] *)
      let mask = st.eff_mask.(st.pc) in
      spend st st.cost.(st.pc);
      commit_checkpoint st ~cause:(obs_cause cause) mask next;
      (match cause with
      | I.Function_entry -> st.counts.c_entry <- st.counts.c_entry + 1
      | I.Function_exit -> st.counts.c_exit <- st.counts.c_exit + 1
      | I.Middle_end_war -> st.counts.c_middle <- st.counts.c_middle + 1
      | I.Back_end_war -> st.counts.c_backend <- st.counts.c_backend + 1);
      st.pc <- next
  | I.Cpsid ->
      spend st 1;
      st.primask <- true;
      st.pc <- next
  | I.Cpsie ->
      spend st 1;
      st.primask <- false;
      st.pc <- next
  | I.Svc 0 ->
      (* console output, made atomic with an implicit checkpoint (the
         standard treatment of peripheral output; not counted in the cause
         statistics) *)
      let mask = st.eff_mask.(st.pc) in
      spend st st.cost.(st.pc);
      st.out_rev <- st.regs.(0) :: st.out_rev;
      commit_checkpoint st ~cause:Tr.Console mask next;
      st.pc <- next
  | I.Svc _ ->
      spend st 1;
      st.halted <- true;
      st.exit_code <- st.regs.(0);
      if st.trace_on then
        Tr.emit st.tracer st.cycles (Tr.Halt { exit_code = st.exit_code })
  | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ ->
      raise (Emu_error ("pseudo instruction in linked code: " ^ I.string_of_instr ins))

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let init_memory st =
  List.iter
    (fun (a, n, v) ->
      match n with
      | 1 -> Bytes.set st.mem a (Char.chr (Int32.to_int v land 0xff))
      | 2 -> Bytes.set_uint16_le st.mem a (Int32.to_int v land 0xffff)
      | _ -> Bytes.set_int32_le st.mem a v)
    st.img.Image.init_image

type t = state

(* Per-pc cost/mask/callee tables, computed once per instance.  They fold
   every static per-instruction decision — ALU cost class, checkpoint mask
   (incl. the WARIO_SAVE_ALL override) and its popcount-derived cost, push
   width, callee identity — out of the interpreter loop. *)
let build_tables ~save_all (img : Image.t) =
  let n = Array.length img.Image.code in
  let cost = Array.make n 1
  and eff_mask = Array.make n (-1)
  and push_n = Array.make n 0
  and call_fn = Array.make n (-1)
  and fop = Array.make n U_pseudo
  and fa = Array.make n 0
  and fb = Array.make n 0
  and fc = Array.make n 0
  and fcond = Array.make n I.AL in
  (* dense function indexing, in func_of_pc order (deterministic) *)
  let index = Hashtbl.create 16 in
  let names_rev = ref [] in
  let fn_index name =
    match Hashtbl.find_opt index name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length index in
        Hashtbl.add index name i;
        names_rev := name :: !names_rev;
        i
  in
  Array.iter (fun f -> ignore (fn_index f)) img.Image.func_of_pc;
  for pc = 0 to n - 1 do
    cost.(pc) <-
      (match img.Image.code.(pc) with
      | I.Alu (op, _, _, _) -> (
          match op with I.SDIV | I.UDIV -> 6 | _ -> 1)
      | I.Mov _ | I.Movc _ | I.Cmp _ | I.Cpsid | I.Cpsie -> 1
      | I.Movw32 _ | I.Ldr _ | I.LdrR _ | I.Str _ | I.StrR _ | I.AdrData _ ->
          2
      | I.Push rs ->
          push_n.(pc) <- List.length rs;
          1 + List.length rs
      | I.B _ | I.Bx_lr -> 3
      | I.Bc _ -> 3 (* taken; not-taken costs 1 *)
      | I.Bl _ ->
          call_fn.(pc) <-
            fn_index img.Image.func_of_pc.(img.Image.target.(pc));
          4
      | I.Ckpt (_, mask) ->
          let m = if save_all then 0x7fff else mask in
          eff_mask.(pc) <- m;
          ckpt_cost m
      | I.Svc 0 ->
          eff_mask.(pc) <- 0x5fff;
          2 + ckpt_cost 0x5fff
      | I.Svc _ -> 1
      | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ -> 1 (* raises on execute *));
    (* predecode (reads [call_fn] for Bl, so it runs after the cost pass
       above has filled this pc's slot) *)
    (match img.Image.code.(pc) with
    | I.Alu (op, rd, rn, o) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fop.(pc) <-
          (match (op, o) with
          | I.ADD, I.R _ -> U_add_r | I.SUB, I.R _ -> U_sub_r
          | I.RSB, I.R _ -> U_rsb_r | I.MUL, I.R _ -> U_mul_r
          | I.SDIV, I.R _ -> U_sdiv_r | I.UDIV, I.R _ -> U_udiv_r
          | I.AND, I.R _ -> U_and_r | I.ORR, I.R _ -> U_orr_r
          | I.EOR, I.R _ -> U_eor_r | I.LSL, I.R _ -> U_lsl_r
          | I.LSR, I.R _ -> U_lsr_r | I.ASR, I.R _ -> U_asr_r
          | I.ADD, I.I _ -> U_add_i | I.SUB, I.I _ -> U_sub_i
          | I.RSB, I.I _ -> U_rsb_i | I.MUL, I.I _ -> U_mul_i
          | I.SDIV, I.I _ -> U_sdiv_i | I.UDIV, I.I _ -> U_udiv_i
          | I.AND, I.I _ -> U_and_i | I.ORR, I.I _ -> U_orr_i
          | I.EOR, I.I _ -> U_eor_i | I.LSL, I.I _ -> U_lsl_i
          | I.LSR, I.I _ -> U_lsr_i | I.ASR, I.I _ -> U_asr_i);
        fc.(pc) <- (match o with I.R rm -> rm | I.I i -> Int32.to_int i)
    | I.Mov (rd, o) ->
        fa.(pc) <- rd;
        (match o with
        | I.R rm ->
            fop.(pc) <- U_mov_r;
            fc.(pc) <- rm
        | I.I i ->
            fop.(pc) <- U_mov_i;
            fc.(pc) <- Int32.to_int i)
    | I.Movw32 (rd, v) ->
        fop.(pc) <- U_movw;
        fa.(pc) <- rd;
        fc.(pc) <- Int32.to_int v
    | I.AdrData (rd, _, _) ->
        (* the link-resolved constant: same "load constant" micro-op *)
        fop.(pc) <- U_movw;
        fa.(pc) <- rd;
        fc.(pc) <- Int32.to_int img.Image.adr.(pc)
    | I.Movc (c, rd, o) ->
        fa.(pc) <- rd;
        fcond.(pc) <- c;
        (match o with
        | I.R rm ->
            fop.(pc) <- U_movc_r;
            fc.(pc) <- rm
        | I.I i ->
            fop.(pc) <- U_movc_i;
            fc.(pc) <- Int32.to_int i)
    | I.Cmp (rn, o) ->
        fa.(pc) <- rn;
        (match o with
        | I.R rm ->
            fop.(pc) <- U_cmp_r;
            fc.(pc) <- rm
        | I.I i ->
            fop.(pc) <- U_cmp_i;
            fc.(pc) <- Int32.to_int i)
    | I.Ldr (w, rd, rn, off) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- Int32.to_int off;
        fop.(pc) <-
          (match w with
          | I.W8 -> U_ldr8 | I.S8 -> U_ldr8s
          | I.W16 -> U_ldr16 | I.S16 -> U_ldr16s
          | I.W32 -> U_ldr32)
    | I.LdrR (w, rd, rn, rm) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- rm;
        fop.(pc) <-
          (match w with
          | I.W8 -> U_ldrr8 | I.S8 -> U_ldrr8s
          | I.W16 -> U_ldrr16 | I.S16 -> U_ldrr16s
          | I.W32 -> U_ldrr32)
    | I.Str (w, rd, rn, off) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- Int32.to_int off;
        fop.(pc) <-
          (match w with
          | I.W8 | I.S8 -> U_str8
          | I.W16 | I.S16 -> U_str16
          | I.W32 -> U_str32)
    | I.StrR (w, rd, rn, rm) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- rm;
        fop.(pc) <-
          (match w with
          | I.W8 | I.S8 -> U_strr8
          | I.W16 | I.S16 -> U_strr16
          | I.W32 -> U_strr32)
    | I.Push _ ->
        (* the register list itself is re-read from [code] on execution *)
        fop.(pc) <- U_push;
        fa.(pc) <- push_n.(pc)
    | I.B _ ->
        fop.(pc) <- U_b;
        fc.(pc) <- img.Image.target.(pc)
    | I.Bc (c, _) ->
        fop.(pc) <- U_bc;
        fcond.(pc) <- c;
        fc.(pc) <- img.Image.target.(pc)
    | I.Bl _ ->
        fop.(pc) <- U_bl;
        fa.(pc) <- call_fn.(pc);
        fc.(pc) <- img.Image.target.(pc)
    | I.Bx_lr -> fop.(pc) <- U_bx_lr
    | I.Ckpt _ -> fop.(pc) <- U_ckpt
    | I.Cpsid -> fop.(pc) <- U_cpsid
    | I.Cpsie -> fop.(pc) <- U_cpsie
    | I.Svc 0 -> fop.(pc) <- U_svc_print
    | I.Svc _ -> fop.(pc) <- U_svc_halt
    | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ -> fop.(pc) <- U_pseudo)
  done;
  let fn_names = Array.of_list (List.rev !names_rev) in
  ( cost, eff_mask, push_n, call_fn, fn_names,
    Array.fold_left max 1 cost, fop, fa, fb, fc, fcond )

let create ?(fuel = 2_000_000_000) ?(supply = Power.Continuous)
    ?(irq_period = 0) ?(verify = true) ?(tracer = Tr.null)
    ?(count_pcs = false) (img : Image.t) : t =
  (* sampled exactly once, here; "" and "0" mean off so tests (and
     shells) can clear it without [unsetenv] *)
  let save_all =
    match Sys.getenv_opt "WARIO_SAVE_ALL" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let cost, eff_mask, push_n, call_fn, fn_names, max_step_cost, fop, fa, fb,
      fc, fcond =
    build_tables ~save_all img
  in
  let st =
    {
      img;
      supply_desc = Power.describe supply;
      mem = Bytes.make Image.mem_size '\000';
      regs = Array.make 16 0l;
      nf = false;
      zf = false;
      cf = false;
      vf = false;
      pc = img.Image.entry;
      primask = false;
      pending_irq = false;
      halted = false;
      exit_code = 0l;
      power = Power.create supply;
      budget = unlimited_budget;
      cycles = 0;
      instrs = 0;
      fuel;
      irq_period;
      next_irq_at = irq_period;
      irqs_taken = 0;
      verify;
      epoch = Array.make Image.mem_size (-1);
      kinds = Bytes.make Image.mem_size ' ';
      cur_epoch = 0;
      violations = [];
      counts = { c_entry = 0; c_exit = 0; c_middle = 0; c_backend = 0 };
      region_start = 0;
      regions_rev = [];
      failures = 0;
      boots = 0;
      boots_since_commit = 0;
      out_rev = [];
      fn_names;
      fn_calls = Array.make (Array.length fn_names) 0;
      fregs = Array.make 16 0;
      save_all;
      cost;
      eff_mask;
      push_n;
      call_fn;
      max_step_cost;
      fop;
      fa;
      fb;
      fc;
      fcond;
      pc_counts =
        (if count_pcs then Some (Array.make (Array.length img.Image.code) 0)
         else None);
      tracer;
      trace_on = Tr.enabled tracer;
      trace_func = "";
      acc_boot = 0;
      acc_restore = 0;
      acc_reexec = 0;
      work_at_commit = 0;
      commits = 0;
      fail_sites_rev = [];
      period_live = false;
    }
  in
  init_memory st;
  (* first power-on; failing inside boot/restore just burns the period *)
  let rec boot () =
    try power_on st
    with Power_failed ->
      power_failure st;
      boot ()
  in
  boot ();
  st

let rec reboot st =
  try power_on st
  with Power_failed ->
    power_failure st;
    reboot st

type step = Stepped | Rebooted | Halted

let step st : step =
  if st.halted then Halted
  else
    try
      maybe_irq st;
      (match st.pc_counts with
      | Some c -> c.(st.pc) <- c.(st.pc) + 1
      | None -> ());
      exec_instr st st.img.Image.code.(st.pc);
      st.instrs <- st.instrs + 1;
      if st.halted then Halted
      else begin
        if st.trace_on then begin
          let f = st.img.Image.func_of_pc.(st.pc) in
          if f != st.trace_func && f <> st.trace_func then begin
            Tr.emit st.tracer st.cycles
              (Tr.Func_transition { from_func = st.trace_func; to_func = f });
            st.trace_func <- f
          end
        end;
        Stepped
      end
    with Power_failed ->
      power_failure st;
      reboot st;
      Rebooted

let cut_power st =
  if not st.halted then begin
    st.budget <- 0;
    power_failure st;
    reboot st
  end

(* ------------------------------------------------------------------ *)
(* Fast path                                                            *)
(* ------------------------------------------------------------------ *)

(* The branch-light twin of [step]/[exec_instr], for the bench
   configuration: WAR verification off, tracer off, periodic interrupts
   off.  It must stay observably byte-for-byte equivalent to the reference
   path — the qcheck property in test/test_props.ml ("fast path =
   reference path") and the perf artefact's self-check hold the two
   together; [exec_instr] remains the oracle.

   What it drops relative to the reference path:
   - boxed [int32] register traffic: it executes over [fregs], an unboxed
     [int array] mirror of [regs] (values sign-extended to native ints),
     so the steady state allocates nothing — the reference path allocates
     a fresh [int32] block on nearly every instruction;
   - [track_read]/[track_write] calls (no-ops with verify off, but still a
     call + branch per accessed byte-range on the reference path);
   - tracer tag tests and the per-step function-transition check;
   - [maybe_irq] polling (sound: with [irq_period = 0] the reference
     [maybe_irq] can never fire or set [pending_irq]);
   - with [~unchecked:true], the per-instruction power/fuel comparisons —
     [run_batch] only selects unchecked execution for stretches it has
     proven cannot exhaust either (headroom ≥ [max_step_cost] per
     instruction), so omitting the checks is exact, not approximate. *)

(* canonical representation: [Int32.to_int v], i.e. sign-extended *)
let[@inline] sext32 v = ((v land 0xffffffff) lxor 0x80000000) - 0x80000000

let sync_to_fast st =
  for i = 0 to 15 do
    st.fregs.(i) <- Int32.to_int st.regs.(i)
  done

let sync_from_fast st =
  for i = 0 to 15 do
    st.regs.(i) <- Int32.of_int st.fregs.(i)
  done

let halt_magic_i = Int32.to_int halt_magic

(* [set_flags] over canonical native ints; must agree with it
   bit-for-bit (the qcheck equivalence property exercises it) *)
let[@inline] set_flags_fast st a b =
  let d = sext32 (a - b) in
  st.nf <- d < 0;
  st.zf <- d = 0;
  st.cf <- a land 0xffffffff >= b land 0xffffffff;
  st.vf <- (a < 0 && b >= 0 && d >= 0) || (a >= 0 && b < 0 && d < 0)

(* One fast-path stretch: execute up to [k] instructions over the
   predecoded program.  Returns the number actually executed (short only
   on halt).

   The loop keeps pc and the cycle/instruction counters in parameters of
   a tail-recursive function — registers, not [state] fields — and only
   publishes them ("flush") where some observer can look: checkpoint
   commits (whose region accounting reads [st.cycles]), memory faults and
   pseudo-instruction errors (whose messages and post-mortem state must
   match the reference path), halt, and stretch exit.  [cyc]/[pend] are
   the deltas accumulated since the last flush.

   With [~unchecked:false] every instruction additionally publishes state
   up front and pays through [spend], so [Power_failed] and fuel
   exhaustion are raised with exactly the reference path's state; the
   accumulators then stay at zero.  [run_batch] only selects
   [~unchecked:true] for stretches it has proven cannot exhaust the power
   budget or the fuel (headroom >= [max_step_cost] per instruction), so
   omitting the per-instruction comparisons there is exact, not
   approximate. *)
let exec_batch st ~unchecked k : int =
  let fregs = st.fregs in
  let fop = st.fop and fa = st.fa and fb = st.fb and fc = st.fc in
  let fcond = st.fcond and cost = st.cost in
  let code = st.img.Image.code in
  let mem = st.mem in
  let ncode = Array.length fop in
  let flush pc cyc pend =
    st.pc <- pc;
    st.cycles <- st.cycles + cyc;
    st.budget <- st.budget - cyc;
    st.instrs <- st.instrs + pend
  in
  (* out-of-range access: publish state exactly as the reference path
     would have it at the raise, then fail through [check_addr] *)
  let fault pc cyc pend addr n =
    flush pc cyc pend;
    sync_from_fast st;
    check_addr st addr n;
    assert false
  in
  (* unboxed little-endian halfword accessors (bounds already checked) *)
  let ld16 a =
    Char.code (Bytes.unsafe_get mem a)
    lor (Char.code (Bytes.unsafe_get mem (a + 1)) lsl 8)
  in
  let st16 a v =
    Bytes.unsafe_set mem a (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set mem (a + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))
  in
  let rec go pc cyc pend done_ =
    if done_ = k then begin
      flush pc cyc pend;
      done_
    end
    else if pc < 0 || pc >= ncode then begin
      (* wild pc: fail exactly like the reference fetch *)
      flush pc cyc pend;
      sync_from_fast st;
      ignore (Array.get code pc : I.instr);
      assert false
    end
    else begin
      let a = Array.unsafe_get fa pc in
      let b = Array.unsafe_get fb pc in
      let c = Array.unsafe_get fc pc in
      let op = Array.unsafe_get fop pc in
      let cst =
        match op with
        | U_bc -> if cond_holds st (Array.unsafe_get fcond pc) then 3 else 1
        | _ -> Array.unsafe_get cost pc
      in
      if not unchecked then begin
        flush pc cyc pend;
        spend st cst
      end;
      let eff = if unchecked then cst else 0 in
      let cyc = if unchecked then cyc else 0 in
      let pend = if unchecked then pend else 0 in
      match op with
      | U_add_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs b + Array.unsafe_get fregs c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_add_i ->
          Array.unsafe_set fregs a (sext32 (Array.unsafe_get fregs b + c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_sub_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs b - Array.unsafe_get fregs c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_sub_i ->
          Array.unsafe_set fregs a (sext32 (Array.unsafe_get fregs b - c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_rsb_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs c - Array.unsafe_get fregs b));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_rsb_i ->
          Array.unsafe_set fregs a (sext32 (c - Array.unsafe_get fregs b));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mul_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs b * Array.unsafe_get fregs c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mul_i ->
          Array.unsafe_set fregs a (sext32 (Array.unsafe_get fregs b * c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_sdiv_r | U_sdiv_i ->
          let x = Array.unsafe_get fregs b in
          let y = if op = U_sdiv_r then Array.unsafe_get fregs c else c in
          Array.unsafe_set fregs a
            (* Cortex-M semantics: division by zero yields 0 *)
            (if y = 0 then 0
             else if x = -0x80000000 && y = -1 then -0x80000000
             else x / y);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_udiv_r | U_udiv_i ->
          let x = Array.unsafe_get fregs b land 0xffffffff in
          let y =
            (if op = U_udiv_r then Array.unsafe_get fregs c else c)
            land 0xffffffff
          in
          Array.unsafe_set fregs a (if y = 0 then 0 else sext32 (x / y));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_and_r ->
          Array.unsafe_set fregs a
            (Array.unsafe_get fregs b land Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_and_i ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs b land c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_orr_r ->
          Array.unsafe_set fregs a
            (Array.unsafe_get fregs b lor Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_orr_i ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs b lor c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_eor_r ->
          Array.unsafe_set fregs a
            (Array.unsafe_get fregs b lxor Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_eor_i ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs b lxor c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_lsl_r | U_lsl_i ->
          let sh =
            (if op = U_lsl_r then Array.unsafe_get fregs c else c) land 255
          in
          Array.unsafe_set fregs a
            (if sh >= 32 then 0
             else sext32 (Array.unsafe_get fregs b lsl sh));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_lsr_r | U_lsr_i ->
          let sh =
            (if op = U_lsr_r then Array.unsafe_get fregs c else c) land 255
          in
          Array.unsafe_set fregs a
            (if sh >= 32 then 0
             else sext32 ((Array.unsafe_get fregs b land 0xffffffff) lsr sh));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_asr_r | U_asr_i ->
          let sh =
            (if op = U_asr_r then Array.unsafe_get fregs c else c) land 255
          in
          Array.unsafe_set fregs a
            (if sh >= 32 then Array.unsafe_get fregs b asr 31
             else Array.unsafe_get fregs b asr sh);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mov_r ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mov_i | U_movw ->
          Array.unsafe_set fregs a c;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_movc_r ->
          if cond_holds st (Array.unsafe_get fcond pc) then
            Array.unsafe_set fregs a (Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_movc_i ->
          if cond_holds st (Array.unsafe_get fcond pc) then
            Array.unsafe_set fregs a c;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_cmp_r ->
          set_flags_fast st (Array.unsafe_get fregs a)
            (Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_cmp_i ->
          set_flags_fast st (Array.unsafe_get fregs a) c;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr8 | U_ldrr8 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr8 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 1 > Image.mem_size then
            fault pc (cyc + eff) pend ad 1;
          Array.unsafe_set fregs a (Char.code (Bytes.unsafe_get mem ad));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr8s | U_ldrr8s ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr8s then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 1 > Image.mem_size then
            fault pc (cyc + eff) pend ad 1;
          Array.unsafe_set fregs a
            ((Char.code (Bytes.unsafe_get mem ad) lxor 0x80) - 0x80);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr16 | U_ldrr16 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr16 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 2 > Image.mem_size then
            fault pc (cyc + eff) pend ad 2;
          Array.unsafe_set fregs a (ld16 ad);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr16s | U_ldrr16s ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr16s then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 2 > Image.mem_size then
            fault pc (cyc + eff) pend ad 2;
          Array.unsafe_set fregs a ((ld16 ad lxor 0x8000) - 0x8000);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr32 | U_ldrr32 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr32 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 4 > Image.mem_size then
            fault pc (cyc + eff) pend ad 4;
          Array.unsafe_set fregs a
            (sext32 (ld16 ad lor (ld16 (ad + 2) lsl 16)));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_str8 | U_strr8 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_strr8 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 1 > Image.mem_size then
            fault pc (cyc + eff) pend ad 1;
          Bytes.unsafe_set mem ad
            (Char.unsafe_chr (Array.unsafe_get fregs a land 0xff));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_str16 | U_strr16 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_strr16 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 2 > Image.mem_size then
            fault pc (cyc + eff) pend ad 2;
          st16 ad (Array.unsafe_get fregs a);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_str32 | U_strr32 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_strr32 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 4 > Image.mem_size then
            fault pc (cyc + eff) pend ad 4;
          let v = Array.unsafe_get fregs a in
          st16 ad v;
          st16 (ad + 2) (v lsr 16);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_push ->
          let n = a in
          (* signed sp, as the reference path computes it (the fault
             message for an out-of-range sp must match) *)
          let sp = Array.unsafe_get fregs 13 - (4 * n) in
          if sp < 0x40 || sp + (4 * n) > Image.mem_size then
            fault pc (cyc + eff) pend sp (4 * n);
          (match Array.unsafe_get code pc with
          | I.Push rs ->
              List.iteri
                (fun i r ->
                  let ad = sp + (4 * i) in
                  let v = Array.unsafe_get fregs r in
                  st16 ad v;
                  st16 (ad + 2) (v lsr 16))
                rs
          | _ -> assert false);
          Array.unsafe_set fregs 13 sp;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_b -> go c (cyc + eff) (pend + 1) (done_ + 1)
      | U_bc ->
          go
            (if cond_holds st (Array.unsafe_get fcond pc) then c else pc + 1)
            (cyc + eff) (pend + 1) (done_ + 1)
      | U_bl ->
          Array.unsafe_set st.fn_calls a (Array.unsafe_get st.fn_calls a + 1);
          Array.unsafe_set fregs 14 (pc + 1);
          go c (cyc + eff) (pend + 1) (done_ + 1)
      | U_bx_lr ->
          let l = Array.unsafe_get fregs 14 in
          if l = halt_magic_i then begin
            flush pc (cyc + eff) (pend + 1);
            st.halted <- true;
            st.exit_code <- Int32.of_int (Array.unsafe_get fregs 0);
            done_ + 1
          end
          else go l (cyc + eff) (pend + 1) (done_ + 1)
      | U_ckpt ->
          (* the commit's region accounting reads [st.cycles] and its
             snapshot reads [st.regs]: publish both first *)
          flush pc (cyc + eff) pend;
          sync_from_fast st;
          let cause =
            match Array.unsafe_get code pc with
            | I.Ckpt (cause, _) -> cause
            | _ -> assert false
          in
          commit_checkpoint st ~cause:(obs_cause cause)
            (Array.unsafe_get st.eff_mask pc)
            (pc + 1);
          (match cause with
          | I.Function_entry -> st.counts.c_entry <- st.counts.c_entry + 1
          | I.Function_exit -> st.counts.c_exit <- st.counts.c_exit + 1
          | I.Middle_end_war -> st.counts.c_middle <- st.counts.c_middle + 1
          | I.Back_end_war -> st.counts.c_backend <- st.counts.c_backend + 1);
          go (pc + 1) 0 1 (done_ + 1)
      | U_cpsid ->
          st.primask <- true;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_cpsie ->
          st.primask <- false;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_svc_print ->
          flush pc (cyc + eff) pend;
          st.out_rev <- Int32.of_int (Array.unsafe_get fregs 0) :: st.out_rev;
          sync_from_fast st;
          commit_checkpoint st ~cause:Tr.Console
            (Array.unsafe_get st.eff_mask pc)
            (pc + 1);
          go (pc + 1) 0 1 (done_ + 1)
      | U_svc_halt ->
          flush pc (cyc + eff) (pend + 1);
          st.halted <- true;
          st.exit_code <- Int32.of_int (Array.unsafe_get fregs 0);
          done_ + 1
      | U_pseudo ->
          flush pc (cyc + eff) pend;
          sync_from_fast st;
          raise
            (Emu_error
               ("pseudo instruction in linked code: "
               ^ I.string_of_instr (Array.unsafe_get code pc)))
    end
  in
  go st.pc 0 0 0

(* The fast path is only sound when nothing per-step is observable beyond
   the architectural state: no WAR tracking, no tracer, no interrupt
   timer.  ([pending_irq] is included for completeness: it can only be set
   while [irq_period > 0].) *)
let fast_eligible st =
  (not st.verify) && (not st.trace_on) && st.irq_period = 0
  && (not st.pending_irq)
  && st.pc_counts = None

let run_batch st n : step =
  if st.halted then Halted
  else if n <= 0 then invalid_arg "Emulator.run_batch: non-positive batch size"
  else if not (fast_eligible st) then begin
    (* fall back to the fully instrumented reference path *)
    let rec go left =
      if left = 0 then Stepped
      else match step st with Stepped -> go (left - 1) | s -> s
    in
    go n
  end
  else begin
    sync_to_fast st;
    match
      let left = ref n in
      while !left > 0 && not st.halted do
        (* instructions that provably cannot exhaust the power budget or
           the fuel; both checks hoist out of the inner loop for that
           stretch *)
        let headroom =
          min
            (st.budget / st.max_step_cost)
            ((st.fuel - st.cycles) / st.max_step_cost)
        in
        let k = min !left headroom in
        if k > 0 then left := !left - exec_batch st ~unchecked:true k
        else begin
          (* within [max_step_cost] of a budget or fuel edge: exact
             per-instruction checks until the edge resolves *)
          ignore (exec_batch st ~unchecked:false 1 : int);
          decr left
        end
      done
    with
    | () ->
        sync_from_fast st;
        if st.halted then Halted else Stepped
    | exception Power_failed ->
        (* publish the registers as of the failing instruction before the
           power-failure bookkeeping and reboot *)
        sync_from_fast st;
        power_failure st;
        reboot st;
        Rebooted
    | exception e ->
        (* memory faults and pseudo-instruction errors have already
           published exact state; fuel exhaustion from a checked [spend]
           has not — syncing twice is harmless, never syncing is not *)
        sync_from_fast st;
        raise e
  end

let clone st =
  {
    st with
    mem = Bytes.copy st.mem;
    regs = Array.copy st.regs;
    power = Power.copy st.power;
    epoch = Array.copy st.epoch;
    kinds = Bytes.copy st.kinds;
    counts =
      {
        c_entry = st.counts.c_entry;
        c_exit = st.counts.c_exit;
        c_middle = st.counts.c_middle;
        c_backend = st.counts.c_backend;
      };
    fn_calls = Array.copy st.fn_calls;
    fregs = Array.copy st.fregs;
    pc_counts = Option.map Array.copy st.pc_counts;
    (* cost/eff_mask/push_n/call_fn/fn_names are immutable: shared *)
  }

(* Fold the per-pc counts to per-block entry counts: the count of a block's
   first pc is the number of times execution entered it (jumps always
   target block starts; a fall-through enters at the start too).  This is
   exactly the [Wario_analysis.Costmodel.profile] shape. *)
let block_counts st : (string * int) list option =
  Option.map
    (fun counts ->
      List.map
        (fun (lbl, pc) -> (lbl, counts.(pc)))
        (Image.block_starts st.img))
    st.pc_counts

let halted st = st.halted
let cycles st = st.cycles
let pc st = st.pc
let current_function st = st.img.Image.func_of_pc.(st.pc)
let boots st = st.boots
let memory st = Bytes.copy st.mem

(* FNV-1a over every byte outside the checkpoint double buffer: the
   non-volatile state an idempotent run must reproduce exactly.  The buffers
   are excluded because their sequence numbers and saved register images
   legitimately depend on how often power failed. *)
let nv_digest st =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length st.mem - 1 do
    if not (in_ckpt_area i) then begin
      h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get st.mem i)));
      h := Int64.mul !h 0x100000001b3L
    end
  done;
  !h

let result st : result =
  {
    output = List.rev st.out_rev;
    exit_code = st.exit_code;
    cycles = st.cycles;
    instrs = st.instrs;
    checkpoints = st.counts;
    checkpoints_total =
      st.counts.c_entry + st.counts.c_exit + st.counts.c_middle
      + st.counts.c_backend;
    region_sizes = List.rev ((st.cycles - st.region_start) :: st.regions_rev);
    power_failures = st.failures;
    failure_sites = List.rev st.fail_sites_rev;
    boots = st.boots;
    violations = List.rev st.violations;
    irqs_taken = st.irqs_taken;
    call_counts =
      (let acc = ref [] in
       for i = Array.length st.fn_calls - 1 downto 0 do
         if st.fn_calls.(i) > 0 then
           acc := (st.fn_names.(i), st.fn_calls.(i)) :: !acc
       done;
       List.sort compare !acc);
    waste =
      {
        w_useful = st.cycles - st.acc_boot - st.acc_restore - st.acc_reexec;
        w_boot = st.acc_boot;
        w_restore = st.acc_restore;
        w_reexec = st.acc_reexec;
      };
  }

let output st = List.rev st.out_rev

type path = Auto | Fast | Reference

let batch_size = 4096

let run ?fuel ?supply ?irq_period ?verify ?tracer ?(path = Auto)
    (img : Image.t) : result =
  let st = create ?fuel ?supply ?irq_period ?verify ?tracer img in
  (match path with
  | Reference ->
      while not st.halted do
        ignore (step st)
      done
  | Auto | Fast ->
      (* [run_batch] falls back to the reference path per batch whenever the
         configuration makes the fast path ineligible (verify/trace/irq), so
         Auto and Fast share one loop *)
      while not st.halted do
        ignore (run_batch st batch_size)
      done);
  result st
