(* Cortex-M-class emulator for TM2 images (the paper's custom Unicorn-based
   emulator, §5.1.1, rebuilt as an interpreter).

   Modelled:
   - a three-stage-pipeline cycle model (taken branches pay a refill);
   - non-volatile main memory, volatile registers/flags;
   - the double-buffered checkpoint runtime: [Ckpt] saves the live
     registers (mask) + sp/pc/flags into the inactive buffer and commits by
     bumping its sequence number — a power failure mid-checkpoint leaves the
     previous checkpoint intact;
   - intermittent power ([Power]): every instruction (and the checkpoint
     commit, atomically) spends from the current on-period budget; running
     dry is a power failure: volatile state clears, and on the next
     on-period the boot sequence and checkpoint restore replay;
   - optional periodic interrupts: exception entry pushes eight words at sp
     exactly like the hardware, which is the WAR hazard the pop converter
     and epilog optimizer exist for; [Cpsid]/[Cpsie] defer delivery;
   - WAR-violation-absence verification (paper §5.1.1): per idempotent
     region, a write to a byte first accessed by a read is a violation —
     checked on *every* access including back-end stack traffic;
   - statistics: executed checkpoints by cause, idempotent region sizes in
     cycles, power failures, cycle/instruction totals. *)

module I = Wario_machine.Isa
module Tr = Wario_obs.Trace

exception Emu_error of string
exception No_forward_progress of string

let no_forward_progress_threshold = 2000
let boot_cycles = 400
let halt_magic = 0x7fffffffl

type violation = { v_pc : int; v_func : string; v_addr : int; v_instr : string }

type cause_counts = {
  mutable c_entry : int;
  mutable c_exit : int;
  mutable c_middle : int;
  mutable c_backend : int;
}

type waste = {
  w_useful : int;  (** first-execution work that survived to a commit/halt *)
  w_boot : int;  (** boot sequences (400 cycles each) *)
  w_restore : int;  (** checkpoint restore replays *)
  w_reexec : int;  (** work discarded by power failures, later redone *)
}

type result = {
  output : int32 list;
  exit_code : int32;
  cycles : int;  (** total active cycles, incl. boot/restore/re-execution *)
  instrs : int;
  checkpoints : cause_counts;
  checkpoints_total : int;
  region_sizes : int list;  (** cycles between region boundaries *)
  power_failures : int;
  failure_sites : (int * int) list;
      (** one [(commits_so_far, lost_work)] per power failure, in order;
          locates each failure on the continuous run's timeline (see mli) *)
  boots : int;
  violations : violation list;
  irqs_taken : int;
  call_counts : (string * int) list;
      (** dynamic calls per callee (a profile for the Expander) *)
  waste : waste;
      (** decomposition of [cycles]: useful + boot + restore + re-executed *)
}

(* [budget]: remaining cycles in the current on-period; [unlimited_budget]
   encodes a continuous supply.  An int (not [int option]) so the
   per-instruction spend never allocates. *)
let unlimited_budget = max_int

(* canonical register representation: 32-bit values sign-extended to native
   ints ([Int32.to_int] form), so register traffic never allocates *)
let[@inline] sext32 v = ((v land 0xffffffff) lxor 0x80000000) - 0x80000000

let halt_magic_i = Int32.to_int halt_magic

(* unboxed little-endian halfword accessors over a [Bytes.t] whose bounds
   have already been checked; 32-bit traffic composes two of them so no
   boxed [int32] is ever materialized *)
let[@inline] ld16 mem a =
  Char.code (Bytes.unsafe_get mem a)
  lor (Char.code (Bytes.unsafe_get mem (a + 1)) lsl 8)

let[@inline] st16 mem a v =
  Bytes.unsafe_set mem a (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set mem (a + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let[@inline] ld32 mem a = sext32 (ld16 mem a lor (ld16 mem (a + 2) lsl 16))

let[@inline] st32 mem a v =
  st16 mem a v;
  st16 mem (a + 2) (v lsr 16)

(* Predecoded micro-ops for the fast path.  Every static decode decision —
   operand shape (register vs immediate), access width, ALU operator — is
   folded into one constant constructor at [create], so the interpreter
   loop dispatches through a single jump table over an immediate array
   instead of re-matching nested variants (and re-unboxing [int32]
   immediates) on every execution of the same pc. *)
type uop =
  (* ALU, register / immediate second operand *)
  | U_add_r | U_sub_r | U_rsb_r | U_mul_r | U_sdiv_r | U_udiv_r
  | U_and_r | U_orr_r | U_eor_r | U_lsl_r | U_lsr_r | U_asr_r
  | U_add_i | U_sub_i | U_rsb_i | U_mul_i | U_sdiv_i | U_udiv_i
  | U_and_i | U_orr_i | U_eor_i | U_lsl_i | U_lsr_i | U_asr_i
  (* moves and compares *)
  | U_mov_r | U_mov_i | U_movw
  | U_movc_r | U_movc_i
  | U_cmp_r | U_cmp_i
  (* loads: immediate offset / register offset, by width *)
  | U_ldr8 | U_ldr8s | U_ldr16 | U_ldr16s | U_ldr32
  | U_ldrr8 | U_ldrr8s | U_ldrr16 | U_ldrr16s | U_ldrr32
  (* stores (sign-extending widths store identically to their unsigned
     twins, so S8/S16 fold into W8/W16 at predecode) *)
  | U_str8 | U_str16 | U_str32
  | U_strr8 | U_strr16 | U_strr32
  | U_push
  (* control *)
  | U_b | U_bc | U_bl | U_bx_lr
  (* intermittence support *)
  | U_ckpt | U_cpsid | U_cpsie
  | U_svc_print | U_svc_halt
  | U_pseudo

type state = {
  img : Image.t;
  supply_desc : string;  (** for diagnostics (No_forward_progress) *)
  mem : Bytes.t;
  (* the single register file, shared by every engine: canonical
     sign-extended native ints (no boxed [int32] traffic anywhere on the
     hot paths — conversion happens only at halt/console/image edges) *)
  regs : int array;
  mutable nf : bool;
  mutable zf : bool;
  mutable cf : bool;
  mutable vf : bool;
  mutable pc : int;
  mutable primask : bool;  (** true = interrupts disabled *)
  mutable pending_irq : bool;
  mutable halted : bool;
  mutable exit_code : int32;
  (* power *)
  power : Power.t;
  mutable budget : int;  (** [unlimited_budget] = continuous *)
  mutable cycles : int;
  mutable instrs : int;
  fuel : int;
  (* interrupts *)
  irq_period : int;
  mutable next_irq_at : int;
  mutable irqs_taken : int;
  (* verification *)
  verify : bool;
  epoch : int array;
  kinds : Bytes.t;
  mutable cur_epoch : int;
  mutable violations : violation list;
  (* stats *)
  counts : cause_counts;
  mutable region_start : int;
  mutable regions_rev : int list;
  mutable failures : int;
  mutable boots : int;
  mutable boots_since_commit : int;
  mutable out_rev : int32 list;
  (* dense per-function dynamic call counters (the Expander profile);
     indexed by the function's slot in [fn_names] *)
  fn_names : string array;
  fn_calls : int array;
  (* per-pc tables precomputed by [create] — every per-instruction cost
     that is static (which is all of them except a not-taken [Bc]) is
     paid for once here instead of per step: *)
  save_all : bool;  (** WARIO_SAVE_ALL, read once at [create] *)
  cost : int array;  (** static spend per pc ([Bc]: the taken cost, 3) *)
  eff_mask : int array;
      (** effective checkpoint mask per pc ([Ckpt]/[Svc 0]); -1 elsewhere *)
  push_n : int array;  (** registers pushed per pc ([Push]); 0 elsewhere *)
  call_fn : int array;  (** callee's [fn_names] slot per pc ([Bl]); -1 *)
  max_step_cost : int;  (** max of [cost]: batch-headroom unit *)
  (* predecoded program (fast path): micro-op plus up to three int
     operands per pc.  Operand meaning is per-[uop]: register numbers,
     sign-extended immediates/offsets, branch targets, callee slots.
     [fcond] carries the condition for [U_bc]/[U_movc_*] pcs ([AL]
     elsewhere).  All five are immediate arrays — reads never allocate. *)
  fop : uop array;
  fa : int array;
  fb : int array;
  fc : int array;
  fcond : I.cond array;
  (* profiling: per-pc execution counts for the PGO pilot run ([None] =
     off).  Counting forces the reference path ([fast_eligible] checks it):
     the fast path's batches never touch per-pc state. *)
  pc_counts : int array option;
  (* observability *)
  tracer : Tr.sink;
  trace_on : bool;
  mutable trace_func : string;  (** last function attributed on the tracer *)
  mutable acc_boot : int;  (** cycles spent in boot sequences *)
  mutable acc_restore : int;  (** cycles spent replaying restores *)
  mutable acc_reexec : int;  (** work cycles discarded by power failures *)
  mutable work_at_commit : int;  (** work-cycle counter at the last commit *)
  mutable commits : int;  (** checkpoint commits so far (monotone) *)
  mutable fail_sites_rev : (int * int) list;
      (** per power failure: (commits so far, work cycles lost) *)
  mutable period_live : bool;
      (** boot + restore completed for the current power period — failures
          before that land at the resume point itself, so no shortfall is
          charged to the failure site *)
  (* block engine: basic blocks translated to fused closures, compiled
     lazily on first use.  Closures are parameterized over the state (they
     capture only per-image constants), so the cache is shared by [clone]s. *)
  mutable bcache : bcache option;
  mutable n_dispatch : int;  (** block-closure dispatches *)
  mutable n_fallback : int;  (** checked single-step fallbacks (block engine) *)
}

and bblock = {
  b_pc : int;  (** leader pc *)
  b_ninstr : int;  (** instructions retired by one complete execution *)
  b_maxcost : int;  (** worst-case cycle spend across the block's exits *)
  b_exec : state -> int;
      (** runs the whole block; returns the successor block index, or -1
          when the successor must be resolved from [st.pc] (dynamic branch,
          halt, off-image fallthrough — the closure has published [st.pc]) *)
}

and bcache = {
  bc_blocks : bblock array;  (** in leader order *)
  bc_index : int array;  (** pc -> block index; -1 for non-leader pcs *)
  bc_compile_ms : float;
}

(* Work cycles: everything except boot and restore replay.  Work done since
   the last commit is provisionally useful; a power failure discards it
   (it will re-execute), which is the wasted-cycle accounting behind
   [result.waste]. *)
let work_total st = st.cycles - st.acc_boot - st.acc_restore

(* ------------------------------------------------------------------ *)
(* Memory with WAR tracking                                             *)
(* ------------------------------------------------------------------ *)

let in_ckpt_area a = a >= Image.ckpt_base && a < Image.ckpt_base + 0x100

let check_addr st a n =
  if a < 0x40 || a + n > Image.mem_size then
    raise
      (Emu_error
         (Printf.sprintf "memory fault at 0x%x (pc=%d, %s)" a st.pc
            (I.string_of_instr st.img.Image.code.(st.pc))))

let track_read st a n =
  if st.verify && not (in_ckpt_area a) then
    for i = a to a + n - 1 do
      if st.epoch.(i) <> st.cur_epoch then begin
        st.epoch.(i) <- st.cur_epoch;
        Bytes.unsafe_set st.kinds i 'r'
      end
    done

let track_write st a n =
  if st.verify && not (in_ckpt_area a) then
    for i = a to a + n - 1 do
      if st.epoch.(i) <> st.cur_epoch then begin
        st.epoch.(i) <- st.cur_epoch;
        Bytes.unsafe_set st.kinds i 'w'
      end
      else if Bytes.unsafe_get st.kinds i = 'r' then begin
        st.violations <-
          {
            v_pc = st.pc;
            v_func = st.img.Image.func_of_pc.(st.pc);
            v_addr = i;
            v_instr = I.string_of_instr st.img.Image.code.(st.pc);
          }
          :: st.violations;
        (* only report each byte once per region *)
        Bytes.unsafe_set st.kinds i 'w'
      end
    done

let region_boundary st =
  st.cur_epoch <- st.cur_epoch + 1;
  st.regions_rev <- (st.cycles - st.region_start) :: st.regions_rev;
  st.region_start <- st.cycles

let load st w a =
  let a = a land 0xffffffff in
  let n = I.bytes_of_width w in
  check_addr st a n;
  track_read st a n;
  match w with
  | I.W8 -> Char.code (Bytes.get st.mem a)
  | I.S8 ->
      let v = Char.code (Bytes.get st.mem a) in
      if v >= 0x80 then v - 0x100 else v
  | I.W16 -> Bytes.get_uint16_le st.mem a
  | I.S16 -> Bytes.get_int16_le st.mem a
  | I.W32 -> ld32 st.mem a

let store st w a v =
  let a = a land 0xffffffff in
  let n = I.bytes_of_width w in
  check_addr st a n;
  track_write st a n;
  match w with
  | I.W8 | I.S8 -> Bytes.set st.mem a (Char.chr (v land 0xff))
  | I.W16 | I.S16 -> Bytes.set_uint16_le st.mem a (v land 0xffff)
  | I.W32 -> st32 st.mem a v

(* raw accesses for the checkpoint runtime (never tracked); canonical ints *)
let raw_store32 st a v = st32 st.mem a v
let raw_load32 st a = ld32 st.mem a

(* ------------------------------------------------------------------ *)
(* ALU and flags                                                        *)
(* ------------------------------------------------------------------ *)

(* over canonical (sign-extended) native ints; agrees bit-for-bit with the
   historical [Int32] semantics (the qcheck equivalence properties pin it) *)
let eval_alu op (a : int) (b : int) : int =
  let sh = b land 255 in
  match op with
  | I.ADD -> sext32 (a + b)
  | I.SUB -> sext32 (a - b)
  | I.RSB -> sext32 (b - a)
  | I.MUL -> sext32 (a * b)
  | I.SDIV ->
      (* Cortex-M semantics: division by zero yields 0 (DIV_0_TRP clear) *)
      if b = 0 then 0
      else if a = -0x80000000 && b = -1 then -0x80000000
      else a / b
  | I.UDIV ->
      let x = a land 0xffffffff and y = b land 0xffffffff in
      if y = 0 then 0 else sext32 (x / y)
  | I.AND -> a land b
  | I.ORR -> a lor b
  | I.EOR -> a lxor b
  | I.LSL -> if sh >= 32 then 0 else sext32 (a lsl sh)
  | I.LSR -> if sh >= 32 then 0 else sext32 ((a land 0xffffffff) lsr sh)
  | I.ASR -> if sh >= 32 then a asr 31 else a asr sh

let[@inline] set_flags st a b =
  let d = sext32 (a - b) in
  st.nf <- d < 0;
  st.zf <- d = 0;
  st.cf <- a land 0xffffffff >= b land 0xffffffff;
  st.vf <- (a < 0 && b >= 0 && d >= 0) || (a >= 0 && b < 0 && d < 0)

let cond_holds st = function
  | I.EQ -> st.zf
  | I.NE -> not st.zf
  | I.LT -> st.nf <> st.vf
  | I.LE -> st.zf || st.nf <> st.vf
  | I.GT -> (not st.zf) && st.nf = st.vf
  | I.GE -> st.nf = st.vf
  | I.LO -> not st.cf
  | I.LS -> (not st.cf) || st.zf
  | I.HI -> st.cf && not st.zf
  | I.HS -> st.cf
  | I.AL -> true

let pack_flags st =
  (if st.nf then 1 else 0)
  lor (if st.zf then 2 else 0)
  lor (if st.cf then 4 else 0)
  lor if st.vf then 8 else 0

let unpack_flags st v =
  st.nf <- v land 1 <> 0;
  st.zf <- v land 2 <> 0;
  st.cf <- v land 4 <> 0;
  st.vf <- v land 8 <> 0

(* ------------------------------------------------------------------ *)
(* Checkpoint runtime (double buffered)                                 *)
(* ------------------------------------------------------------------ *)

let buffer_stride = 0x80
let buf_addr i = Image.ckpt_base + (i * buffer_stride)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let ckpt_cost mask = 12 + (2 * (popcount mask + 3)) (* + sp, pc, flags *)
let restore_cost mask = 8 + (2 * (popcount mask + 3))

let active_buffer st =
  let s0 = raw_load32 st (buf_addr 0) and s1 = raw_load32 st (buf_addr 1) in
  if s0 = 0 && s1 = 0 then None
  else if s0 land 0xffffffff >= s1 land 0xffffffff then Some 0
  else Some 1

let obs_cause : I.ckpt_cause -> Tr.cause = function
  | I.Function_entry -> Tr.Entry
  | I.Function_exit -> Tr.Exit
  | I.Middle_end_war -> Tr.Middle
  | I.Back_end_war -> Tr.Backend

(* Bytes a commit writes into its buffer: seq, mask, pc, sp, flags + the
   masked registers. *)
let ckpt_bytes mask = 4 * (popcount mask + 5)

let commit_checkpoint st ~(cause : Tr.cause) mask resume_pc =
  let target =
    match active_buffer st with Some 0 -> 1 | Some _ -> 0 | None -> 0
  in
  let base = buf_addr target in
  raw_store32 st (base + 4) mask;
  raw_store32 st (base + 8) resume_pc;
  raw_store32 st (base + 12) st.regs.(I.sp);
  raw_store32 st (base + 16) (pack_flags st);
  for r = 0 to 14 do
    if mask land (1 lsl r) <> 0 then
      raw_store32 st (base + 20 + (4 * r)) st.regs.(r)
  done;
  (* commit: bump the sequence number last *)
  let seq =
    sext32
      (1
      +
      match active_buffer st with
      | None -> 0
      | Some i -> raw_load32 st (buf_addr i))
  in
  raw_store32 st base seq;
  st.boots_since_commit <- 0;
  st.commits <- st.commits + 1;
  st.work_at_commit <- work_total st;
  if st.trace_on then
    Tr.emit st.tracer st.cycles
      (Tr.Checkpoint
         {
           cause;
           pc = st.pc;
           func = st.img.Image.func_of_pc.(st.pc);
           mask;
           bytes = ckpt_bytes mask;
           cost = ckpt_cost mask;
         });
  region_boundary st

(* Returns the replay cost in cycles, or [None] when there is no committed
   checkpoint to restore (cold start). *)
let restore_checkpoint st : int option =
  match active_buffer st with
  | None -> None
  | Some i ->
      let base = buf_addr i in
      let mask = raw_load32 st (base + 4) in
      st.pc <- raw_load32 st (base + 8);
      st.regs.(I.sp) <- raw_load32 st (base + 12);
      unpack_flags st (raw_load32 st (base + 16));
      for r = 0 to 14 do
        if r <> I.sp then
          st.regs.(r) <-
            (if mask land (1 lsl r) <> 0 then raw_load32 st (base + 20 + (4 * r))
             else 0)
      done;
      let cost = restore_cost mask in
      st.cycles <- st.cycles + cost;
      Some cost

(* ------------------------------------------------------------------ *)
(* Power                                                                *)
(* ------------------------------------------------------------------ *)

exception Power_failed

(* Spend [c] cycles atomically; raises [Power_failed] if the budget cannot
   cover them (the action does not take place).  An unlimited budget is
   [unlimited_budget] cycles: far above any reachable spend (fuel caps the
   total), so the same two branch-free int operations serve both cases. *)
let spend st c =
  if st.budget < c then
    (* the remaining budget is kept: [power_failure] reads it as the
       shortfall between the last retired instruction and the cycle power
       actually died, and [power_on] overwrites it for the next period *)
    raise Power_failed;
  st.budget <- st.budget - c;
  st.cycles <- st.cycles + c;
  if st.cycles > st.fuel then
    raise (Emu_error "cycle budget exhausted (no termination?)")

let cold_start st =
  st.pc <- st.img.Image.entry;
  Array.fill st.regs 0 16 0;
  st.regs.(I.sp) <- Image.stack_top;
  st.regs.(I.lr) <- halt_magic_i;
  st.nf <- false;
  st.zf <- false;
  st.cf <- false;
  st.vf <- false

let power_on st =
  st.boots <- st.boots + 1;
  st.boots_since_commit <- st.boots_since_commit + 1;
  if st.boots_since_commit > no_forward_progress_threshold then
    raise (No_forward_progress st.supply_desc);
  st.budget <-
    (match Power.next_budget st.power with
    | Some b -> b
    | None -> unlimited_budget);
  st.primask <- false;
  st.pending_irq <- false;
  (* boot + restore; failing inside these just burns the period *)
  spend st boot_cycles;
  st.acc_boot <- st.acc_boot + boot_cycles;
  let restored =
    match restore_checkpoint st with
    | Some cost ->
        st.acc_restore <- st.acc_restore + cost;
        Some cost
    | None ->
        cold_start st;
        None
  in
  if Sys.getenv_opt "WARIO_DEBUG_EMU" <> None && (st.boots < 50 || st.boots mod 10000 = 0) then
    Printf.eprintf "boot %d: pc=%d (%s) cycles=%d\n%!" st.boots st.pc
      st.img.Image.func_of_pc.(st.pc) st.cycles;
  if st.trace_on then begin
    let func = st.img.Image.func_of_pc.(st.pc) in
    Tr.emit st.tracer st.cycles
      (Tr.Boot
         {
           seq = st.boots;
           restored = restored <> None;
           boot_cost = boot_cycles;
           restore_cost = Option.value restored ~default:0;
           func;
         });
    st.trace_func <- func
  end;
  st.cur_epoch <- st.cur_epoch + 1;
  st.region_start <- st.cycles;
  st.period_live <- true;
  (* the interrupt timer starts once the application code resumes *)
  st.next_irq_at <- st.cycles + st.irq_period

let power_failure st =
  st.failures <- st.failures + 1;
  (* work since the last commit is discarded: it will be re-executed *)
  let lost = work_total st - st.work_at_commit in
  st.acc_reexec <- st.acc_reexec + lost;
  (* [lost] is this period's retired progress past the resume point, and
     the unspent budget remainder is the shortfall to the cycle power
     actually died (the in-flight spend did not fit), so
     (commits, lost + shortfall) pins the failure exactly on the
     continuous run's timeline — the campaign's cut-coverage accounting
     reads this.  Failures during boot/restore land at the resume point. *)
  let shortfall = if st.period_live then max 0 st.budget else 0 in
  st.fail_sites_rev <- (st.commits, lost + shortfall) :: st.fail_sites_rev;
  st.period_live <- false;
  st.work_at_commit <- work_total st;
  if st.trace_on then
    Tr.emit st.tracer st.cycles (Tr.Power_failure { lost_cycles = lost });
  Array.fill st.regs 0 16 0

(* ------------------------------------------------------------------ *)
(* Interrupts                                                           *)
(* ------------------------------------------------------------------ *)

(* Hardware exception entry/exit: push {r0-r3, r12, lr, pc, xpsr} at sp,
   run an empty handler, pop, return.  The pushes are real tracked writes:
   this is precisely the ISR WAR hazard of paper §3.1.3. *)
let take_irq st =
  spend st 24;
  let sp = st.regs.(I.sp) in
  let frame = sp - 32 in
  let values =
    [|
      st.regs.(0); st.regs.(1); st.regs.(2); st.regs.(3); st.regs.(12);
      st.regs.(I.lr); st.pc; pack_flags st;
    |]
  in
  check_addr st frame 32;
  Array.iteri
    (fun i v ->
      track_write st (frame + (4 * i)) 4;
      raw_store32 st (frame + (4 * i)) v)
    values;
  (* empty handler; exception return reads the frame back *)
  for i = 0 to 7 do
    track_read st (frame + (4 * i)) 4;
    ignore (raw_load32 st (frame + (4 * i)))
  done;
  st.irqs_taken <- st.irqs_taken + 1;
  if st.trace_on then
    Tr.emit st.tracer st.cycles
      (Tr.Irq { pc = st.pc; func = st.img.Image.func_of_pc.(st.pc) })

let maybe_irq st =
  if st.irq_period > 0 && st.cycles >= st.next_irq_at then begin
    st.next_irq_at <- st.cycles + st.irq_period;
    if st.primask then st.pending_irq <- true else take_irq st
  end
  else if st.pending_irq && not st.primask then begin
    st.pending_irq <- false;
    take_irq st
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution                                                *)
(* ------------------------------------------------------------------ *)

let op2 st = function I.R r -> st.regs.(r) | I.I i -> Int32.to_int i

let exec_instr st (ins : I.instr) =
  let next = st.pc + 1 in
  match ins with
  | I.Alu (op, rd, rn, o) ->
      spend st (match op with I.SDIV | I.UDIV -> 6 | _ -> 1);
      st.regs.(rd) <- eval_alu op st.regs.(rn) (op2 st o);
      st.pc <- next
  | I.Mov (rd, o) ->
      spend st 1;
      st.regs.(rd) <- op2 st o;
      st.pc <- next
  | I.Movw32 (rd, v) ->
      spend st 2;
      st.regs.(rd) <- Int32.to_int v;
      st.pc <- next
  | I.Movc (c, rd, o) ->
      spend st 1;
      if cond_holds st c then st.regs.(rd) <- op2 st o;
      st.pc <- next
  | I.Cmp (rn, o) ->
      spend st 1;
      set_flags st st.regs.(rn) (op2 st o);
      st.pc <- next
  | I.Ldr (w, rd, rn, off) ->
      spend st 2;
      st.regs.(rd) <- load st w (st.regs.(rn) + Int32.to_int off);
      st.pc <- next
  | I.LdrR (w, rd, rn, rm) ->
      spend st 2;
      st.regs.(rd) <- load st w (st.regs.(rn) + st.regs.(rm));
      st.pc <- next
  | I.Str (w, rd, rn, off) ->
      spend st 2;
      store st w (st.regs.(rn) + Int32.to_int off) st.regs.(rd);
      st.pc <- next
  | I.StrR (w, rd, rn, rm) ->
      spend st 2;
      store st w (st.regs.(rn) + st.regs.(rm)) st.regs.(rd);
      st.pc <- next
  | I.AdrData (rd, _, _) ->
      spend st 2;
      st.regs.(rd) <- Int32.to_int st.img.Image.adr.(st.pc);
      st.pc <- next
  | I.Push rs ->
      spend st st.cost.(st.pc);
      let n = st.push_n.(st.pc) in
      let sp = st.regs.(I.sp) - (4 * n) in
      check_addr st sp (4 * n);
      List.iteri
        (fun i r ->
          track_write st (sp + (4 * i)) 4;
          raw_store32 st (sp + (4 * i)) st.regs.(r))
        rs;
      st.regs.(I.sp) <- sp;
      st.pc <- next
  | I.B _ ->
      spend st 3;
      st.pc <- st.img.Image.target.(st.pc)
  | I.Bc (c, _) ->
      if cond_holds st c then begin
        spend st 3;
        st.pc <- st.img.Image.target.(st.pc)
      end
      else begin
        spend st 1;
        st.pc <- next
      end
  | I.Bl _ ->
      spend st 4;
      let idx = st.call_fn.(st.pc) in
      st.fn_calls.(idx) <- st.fn_calls.(idx) + 1;
      st.regs.(I.lr) <- next;
      st.pc <- st.img.Image.target.(st.pc)
  | I.Bx_lr ->
      spend st 3;
      if st.regs.(I.lr) = halt_magic_i then begin
        st.halted <- true;
        st.exit_code <- Int32.of_int st.regs.(0);
        if st.trace_on then
          Tr.emit st.tracer st.cycles (Tr.Halt { exit_code = st.exit_code })
      end
      else st.pc <- st.regs.(I.lr)
  | I.Ckpt (cause, _) ->
      (* effective mask (WARIO_SAVE_ALL folded in) and its cost are
         precomputed per pc by [create] *)
      let mask = st.eff_mask.(st.pc) in
      spend st st.cost.(st.pc);
      commit_checkpoint st ~cause:(obs_cause cause) mask next;
      (match cause with
      | I.Function_entry -> st.counts.c_entry <- st.counts.c_entry + 1
      | I.Function_exit -> st.counts.c_exit <- st.counts.c_exit + 1
      | I.Middle_end_war -> st.counts.c_middle <- st.counts.c_middle + 1
      | I.Back_end_war -> st.counts.c_backend <- st.counts.c_backend + 1);
      st.pc <- next
  | I.Cpsid ->
      spend st 1;
      st.primask <- true;
      st.pc <- next
  | I.Cpsie ->
      spend st 1;
      st.primask <- false;
      st.pc <- next
  | I.Svc 0 ->
      (* console output, made atomic with an implicit checkpoint (the
         standard treatment of peripheral output; not counted in the cause
         statistics) *)
      let mask = st.eff_mask.(st.pc) in
      spend st st.cost.(st.pc);
      st.out_rev <- Int32.of_int st.regs.(0) :: st.out_rev;
      commit_checkpoint st ~cause:Tr.Console mask next;
      st.pc <- next
  | I.Svc _ ->
      spend st 1;
      st.halted <- true;
      st.exit_code <- Int32.of_int st.regs.(0);
      if st.trace_on then
        Tr.emit st.tracer st.cycles (Tr.Halt { exit_code = st.exit_code })
  | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ ->
      raise (Emu_error ("pseudo instruction in linked code: " ^ I.string_of_instr ins))

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let init_memory st =
  List.iter
    (fun (a, n, v) ->
      match n with
      | 1 -> Bytes.set st.mem a (Char.chr (Int32.to_int v land 0xff))
      | 2 -> Bytes.set_uint16_le st.mem a (Int32.to_int v land 0xffff)
      | _ -> Bytes.set_int32_le st.mem a v)
    st.img.Image.init_image

type t = state

(* Per-pc cost/mask/callee tables, computed once per instance.  They fold
   every static per-instruction decision — ALU cost class, checkpoint mask
   (incl. the WARIO_SAVE_ALL override) and its popcount-derived cost, push
   width, callee identity — out of the interpreter loop. *)
let build_tables ~save_all (img : Image.t) =
  let n = Array.length img.Image.code in
  let cost = Array.make n 1
  and eff_mask = Array.make n (-1)
  and push_n = Array.make n 0
  and call_fn = Array.make n (-1)
  and fop = Array.make n U_pseudo
  and fa = Array.make n 0
  and fb = Array.make n 0
  and fc = Array.make n 0
  and fcond = Array.make n I.AL in
  (* dense function indexing, in func_of_pc order (deterministic) *)
  let index = Hashtbl.create 16 in
  let names_rev = ref [] in
  let fn_index name =
    match Hashtbl.find_opt index name with
    | Some i -> i
    | None ->
        let i = Hashtbl.length index in
        Hashtbl.add index name i;
        names_rev := name :: !names_rev;
        i
  in
  Array.iter (fun f -> ignore (fn_index f)) img.Image.func_of_pc;
  for pc = 0 to n - 1 do
    cost.(pc) <-
      (match img.Image.code.(pc) with
      | I.Alu (op, _, _, _) -> (
          match op with I.SDIV | I.UDIV -> 6 | _ -> 1)
      | I.Mov _ | I.Movc _ | I.Cmp _ | I.Cpsid | I.Cpsie -> 1
      | I.Movw32 _ | I.Ldr _ | I.LdrR _ | I.Str _ | I.StrR _ | I.AdrData _ ->
          2
      | I.Push rs ->
          push_n.(pc) <- List.length rs;
          1 + List.length rs
      | I.B _ | I.Bx_lr -> 3
      | I.Bc _ -> 3 (* taken; not-taken costs 1 *)
      | I.Bl _ ->
          call_fn.(pc) <-
            fn_index img.Image.func_of_pc.(img.Image.target.(pc));
          4
      | I.Ckpt (_, mask) ->
          let m = if save_all then 0x7fff else mask in
          eff_mask.(pc) <- m;
          ckpt_cost m
      | I.Svc 0 ->
          eff_mask.(pc) <- 0x5fff;
          2 + ckpt_cost 0x5fff
      | I.Svc _ -> 1
      | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ -> 1 (* raises on execute *));
    (* predecode (reads [call_fn] for Bl, so it runs after the cost pass
       above has filled this pc's slot) *)
    (match img.Image.code.(pc) with
    | I.Alu (op, rd, rn, o) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fop.(pc) <-
          (match (op, o) with
          | I.ADD, I.R _ -> U_add_r | I.SUB, I.R _ -> U_sub_r
          | I.RSB, I.R _ -> U_rsb_r | I.MUL, I.R _ -> U_mul_r
          | I.SDIV, I.R _ -> U_sdiv_r | I.UDIV, I.R _ -> U_udiv_r
          | I.AND, I.R _ -> U_and_r | I.ORR, I.R _ -> U_orr_r
          | I.EOR, I.R _ -> U_eor_r | I.LSL, I.R _ -> U_lsl_r
          | I.LSR, I.R _ -> U_lsr_r | I.ASR, I.R _ -> U_asr_r
          | I.ADD, I.I _ -> U_add_i | I.SUB, I.I _ -> U_sub_i
          | I.RSB, I.I _ -> U_rsb_i | I.MUL, I.I _ -> U_mul_i
          | I.SDIV, I.I _ -> U_sdiv_i | I.UDIV, I.I _ -> U_udiv_i
          | I.AND, I.I _ -> U_and_i | I.ORR, I.I _ -> U_orr_i
          | I.EOR, I.I _ -> U_eor_i | I.LSL, I.I _ -> U_lsl_i
          | I.LSR, I.I _ -> U_lsr_i | I.ASR, I.I _ -> U_asr_i);
        fc.(pc) <- (match o with I.R rm -> rm | I.I i -> Int32.to_int i)
    | I.Mov (rd, o) ->
        fa.(pc) <- rd;
        (match o with
        | I.R rm ->
            fop.(pc) <- U_mov_r;
            fc.(pc) <- rm
        | I.I i ->
            fop.(pc) <- U_mov_i;
            fc.(pc) <- Int32.to_int i)
    | I.Movw32 (rd, v) ->
        fop.(pc) <- U_movw;
        fa.(pc) <- rd;
        fc.(pc) <- Int32.to_int v
    | I.AdrData (rd, _, _) ->
        (* the link-resolved constant: same "load constant" micro-op *)
        fop.(pc) <- U_movw;
        fa.(pc) <- rd;
        fc.(pc) <- Int32.to_int img.Image.adr.(pc)
    | I.Movc (c, rd, o) ->
        fa.(pc) <- rd;
        fcond.(pc) <- c;
        (match o with
        | I.R rm ->
            fop.(pc) <- U_movc_r;
            fc.(pc) <- rm
        | I.I i ->
            fop.(pc) <- U_movc_i;
            fc.(pc) <- Int32.to_int i)
    | I.Cmp (rn, o) ->
        fa.(pc) <- rn;
        (match o with
        | I.R rm ->
            fop.(pc) <- U_cmp_r;
            fc.(pc) <- rm
        | I.I i ->
            fop.(pc) <- U_cmp_i;
            fc.(pc) <- Int32.to_int i)
    | I.Ldr (w, rd, rn, off) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- Int32.to_int off;
        fop.(pc) <-
          (match w with
          | I.W8 -> U_ldr8 | I.S8 -> U_ldr8s
          | I.W16 -> U_ldr16 | I.S16 -> U_ldr16s
          | I.W32 -> U_ldr32)
    | I.LdrR (w, rd, rn, rm) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- rm;
        fop.(pc) <-
          (match w with
          | I.W8 -> U_ldrr8 | I.S8 -> U_ldrr8s
          | I.W16 -> U_ldrr16 | I.S16 -> U_ldrr16s
          | I.W32 -> U_ldrr32)
    | I.Str (w, rd, rn, off) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- Int32.to_int off;
        fop.(pc) <-
          (match w with
          | I.W8 | I.S8 -> U_str8
          | I.W16 | I.S16 -> U_str16
          | I.W32 -> U_str32)
    | I.StrR (w, rd, rn, rm) ->
        fa.(pc) <- rd;
        fb.(pc) <- rn;
        fc.(pc) <- rm;
        fop.(pc) <-
          (match w with
          | I.W8 | I.S8 -> U_strr8
          | I.W16 | I.S16 -> U_strr16
          | I.W32 -> U_strr32)
    | I.Push _ ->
        (* the register list itself is re-read from [code] on execution *)
        fop.(pc) <- U_push;
        fa.(pc) <- push_n.(pc)
    | I.B _ ->
        fop.(pc) <- U_b;
        fc.(pc) <- img.Image.target.(pc)
    | I.Bc (c, _) ->
        fop.(pc) <- U_bc;
        fcond.(pc) <- c;
        fc.(pc) <- img.Image.target.(pc)
    | I.Bl _ ->
        fop.(pc) <- U_bl;
        fa.(pc) <- call_fn.(pc);
        fc.(pc) <- img.Image.target.(pc)
    | I.Bx_lr -> fop.(pc) <- U_bx_lr
    | I.Ckpt _ -> fop.(pc) <- U_ckpt
    | I.Cpsid -> fop.(pc) <- U_cpsid
    | I.Cpsie -> fop.(pc) <- U_cpsie
    | I.Svc 0 -> fop.(pc) <- U_svc_print
    | I.Svc _ -> fop.(pc) <- U_svc_halt
    | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ -> fop.(pc) <- U_pseudo)
  done;
  let fn_names = Array.of_list (List.rev !names_rev) in
  ( cost, eff_mask, push_n, call_fn, fn_names,
    Array.fold_left max 1 cost, fop, fa, fb, fc, fcond )

let create ?(fuel = 2_000_000_000) ?(supply = Power.Continuous)
    ?(irq_period = 0) ?(verify = true) ?(tracer = Tr.null)
    ?(count_pcs = false) (img : Image.t) : t =
  (* sampled exactly once, here; "" and "0" mean off so tests (and
     shells) can clear it without [unsetenv] *)
  let save_all =
    match Sys.getenv_opt "WARIO_SAVE_ALL" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  let cost, eff_mask, push_n, call_fn, fn_names, max_step_cost, fop, fa, fb,
      fc, fcond =
    build_tables ~save_all img
  in
  let st =
    {
      img;
      supply_desc = Power.describe supply;
      mem = Bytes.make Image.mem_size '\000';
      regs = Array.make 16 0;
      nf = false;
      zf = false;
      cf = false;
      vf = false;
      pc = img.Image.entry;
      primask = false;
      pending_irq = false;
      halted = false;
      exit_code = 0l;
      power = Power.create supply;
      budget = unlimited_budget;
      cycles = 0;
      instrs = 0;
      fuel;
      irq_period;
      next_irq_at = irq_period;
      irqs_taken = 0;
      verify;
      epoch = Array.make Image.mem_size (-1);
      kinds = Bytes.make Image.mem_size ' ';
      cur_epoch = 0;
      violations = [];
      counts = { c_entry = 0; c_exit = 0; c_middle = 0; c_backend = 0 };
      region_start = 0;
      regions_rev = [];
      failures = 0;
      boots = 0;
      boots_since_commit = 0;
      out_rev = [];
      fn_names;
      fn_calls = Array.make (Array.length fn_names) 0;
      save_all;
      cost;
      eff_mask;
      push_n;
      call_fn;
      max_step_cost;
      fop;
      fa;
      fb;
      fc;
      fcond;
      pc_counts =
        (if count_pcs then Some (Array.make (Array.length img.Image.code) 0)
         else None);
      tracer;
      trace_on = Tr.enabled tracer;
      trace_func = "";
      acc_boot = 0;
      acc_restore = 0;
      acc_reexec = 0;
      work_at_commit = 0;
      commits = 0;
      fail_sites_rev = [];
      period_live = false;
      bcache = None;
      n_dispatch = 0;
      n_fallback = 0;
    }
  in
  init_memory st;
  (* first power-on; failing inside boot/restore just burns the period *)
  let rec boot () =
    try power_on st
    with Power_failed ->
      power_failure st;
      boot ()
  in
  boot ();
  st

let rec reboot st =
  try power_on st
  with Power_failed ->
    power_failure st;
    reboot st

type step = Stepped | Rebooted | Halted

let step st : step =
  if st.halted then Halted
  else
    try
      maybe_irq st;
      (match st.pc_counts with
      | Some c -> c.(st.pc) <- c.(st.pc) + 1
      | None -> ());
      exec_instr st st.img.Image.code.(st.pc);
      st.instrs <- st.instrs + 1;
      if st.halted then Halted
      else begin
        if st.trace_on then begin
          let f = st.img.Image.func_of_pc.(st.pc) in
          if f != st.trace_func && f <> st.trace_func then begin
            Tr.emit st.tracer st.cycles
              (Tr.Func_transition { from_func = st.trace_func; to_func = f });
            st.trace_func <- f
          end
        end;
        Stepped
      end
    with Power_failed ->
      power_failure st;
      reboot st;
      Rebooted

let cut_power st =
  if not st.halted then begin
    st.budget <- 0;
    power_failure st;
    reboot st
  end

(* ------------------------------------------------------------------ *)
(* Fast path                                                            *)
(* ------------------------------------------------------------------ *)

(* The branch-light twin of [step]/[exec_instr], for the bench
   configuration: WAR verification off, tracer off, periodic interrupts
   off.  It must stay observably byte-for-byte equivalent to the reference
   path — the qcheck property in test/test_props.ml ("fast path =
   reference path") and the perf artefact's self-check hold the two
   together; [exec_instr] remains the oracle.

   What it drops relative to the reference path:
   - [track_read]/[track_write] calls (no-ops with verify off, but still a
     call + branch per accessed byte-range on the reference path);
   - tracer tag tests and the per-step function-transition check;
   - [maybe_irq] polling (sound: with [irq_period = 0] the reference
     [maybe_irq] can never fire or set [pending_irq]);
   - with [~unchecked:true], the per-instruction power/fuel comparisons —
     [run_batch] only selects unchecked execution for stretches it has
     proven cannot exhaust either (headroom ≥ [max_step_cost] per
     instruction), so omitting the checks is exact, not approximate. *)

(* One fast-path stretch: execute up to [k] instructions over the
   predecoded program.  Returns the number actually executed (short only
   on halt).

   The loop keeps pc and the cycle/instruction counters in parameters of
   a tail-recursive function — registers, not [state] fields — and only
   publishes them ("flush") where some observer can look: checkpoint
   commits (whose region accounting reads [st.cycles]), memory faults and
   pseudo-instruction errors (whose messages and post-mortem state must
   match the reference path), halt, and stretch exit.  [cyc]/[pend] are
   the deltas accumulated since the last flush.

   With [~unchecked:false] every instruction additionally publishes state
   up front and pays through [spend], so [Power_failed] and fuel
   exhaustion are raised with exactly the reference path's state; the
   accumulators then stay at zero.  [run_batch] only selects
   [~unchecked:true] for stretches it has proven cannot exhaust the power
   budget or the fuel (headroom >= [max_step_cost] per instruction), so
   omitting the per-instruction comparisons there is exact, not
   approximate. *)
let exec_batch st ~unchecked k : int =
  let fregs = st.regs in
  let fop = st.fop and fa = st.fa and fb = st.fb and fc = st.fc in
  let fcond = st.fcond and cost = st.cost in
  let code = st.img.Image.code in
  let mem = st.mem in
  let ncode = Array.length fop in
  let flush pc cyc pend =
    st.pc <- pc;
    st.cycles <- st.cycles + cyc;
    st.budget <- st.budget - cyc;
    st.instrs <- st.instrs + pend
  in
  (* out-of-range access: publish state exactly as the reference path
     would have it at the raise, then fail through [check_addr] *)
  let fault pc cyc pend addr n =
    flush pc cyc pend;
    check_addr st addr n;
    assert false
  in
  (* unboxed little-endian halfword accessors (bounds already checked) *)
  let ld16 a =
    Char.code (Bytes.unsafe_get mem a)
    lor (Char.code (Bytes.unsafe_get mem (a + 1)) lsl 8)
  in
  let st16 a v =
    Bytes.unsafe_set mem a (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set mem (a + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))
  in
  let rec go pc cyc pend done_ =
    if done_ = k then begin
      flush pc cyc pend;
      done_
    end
    else if pc < 0 || pc >= ncode then begin
      (* wild pc: fail exactly like the reference fetch *)
      flush pc cyc pend;
      ignore (Array.get code pc : I.instr);
      assert false
    end
    else begin
      let a = Array.unsafe_get fa pc in
      let b = Array.unsafe_get fb pc in
      let c = Array.unsafe_get fc pc in
      let op = Array.unsafe_get fop pc in
      let cst =
        match op with
        | U_bc -> if cond_holds st (Array.unsafe_get fcond pc) then 3 else 1
        | _ -> Array.unsafe_get cost pc
      in
      if not unchecked then begin
        flush pc cyc pend;
        spend st cst
      end;
      let eff = if unchecked then cst else 0 in
      let cyc = if unchecked then cyc else 0 in
      let pend = if unchecked then pend else 0 in
      match op with
      | U_add_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs b + Array.unsafe_get fregs c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_add_i ->
          Array.unsafe_set fregs a (sext32 (Array.unsafe_get fregs b + c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_sub_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs b - Array.unsafe_get fregs c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_sub_i ->
          Array.unsafe_set fregs a (sext32 (Array.unsafe_get fregs b - c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_rsb_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs c - Array.unsafe_get fregs b));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_rsb_i ->
          Array.unsafe_set fregs a (sext32 (c - Array.unsafe_get fregs b));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mul_r ->
          Array.unsafe_set fregs a
            (sext32 (Array.unsafe_get fregs b * Array.unsafe_get fregs c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mul_i ->
          Array.unsafe_set fregs a (sext32 (Array.unsafe_get fregs b * c));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_sdiv_r | U_sdiv_i ->
          let x = Array.unsafe_get fregs b in
          let y = if op = U_sdiv_r then Array.unsafe_get fregs c else c in
          Array.unsafe_set fregs a
            (* Cortex-M semantics: division by zero yields 0 *)
            (if y = 0 then 0
             else if x = -0x80000000 && y = -1 then -0x80000000
             else x / y);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_udiv_r | U_udiv_i ->
          let x = Array.unsafe_get fregs b land 0xffffffff in
          let y =
            (if op = U_udiv_r then Array.unsafe_get fregs c else c)
            land 0xffffffff
          in
          Array.unsafe_set fregs a (if y = 0 then 0 else sext32 (x / y));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_and_r ->
          Array.unsafe_set fregs a
            (Array.unsafe_get fregs b land Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_and_i ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs b land c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_orr_r ->
          Array.unsafe_set fregs a
            (Array.unsafe_get fregs b lor Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_orr_i ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs b lor c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_eor_r ->
          Array.unsafe_set fregs a
            (Array.unsafe_get fregs b lxor Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_eor_i ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs b lxor c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_lsl_r | U_lsl_i ->
          let sh =
            (if op = U_lsl_r then Array.unsafe_get fregs c else c) land 255
          in
          Array.unsafe_set fregs a
            (if sh >= 32 then 0
             else sext32 (Array.unsafe_get fregs b lsl sh));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_lsr_r | U_lsr_i ->
          let sh =
            (if op = U_lsr_r then Array.unsafe_get fregs c else c) land 255
          in
          Array.unsafe_set fregs a
            (if sh >= 32 then 0
             else sext32 ((Array.unsafe_get fregs b land 0xffffffff) lsr sh));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_asr_r | U_asr_i ->
          let sh =
            (if op = U_asr_r then Array.unsafe_get fregs c else c) land 255
          in
          Array.unsafe_set fregs a
            (if sh >= 32 then Array.unsafe_get fregs b asr 31
             else Array.unsafe_get fregs b asr sh);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mov_r ->
          Array.unsafe_set fregs a (Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_mov_i | U_movw ->
          Array.unsafe_set fregs a c;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_movc_r ->
          if cond_holds st (Array.unsafe_get fcond pc) then
            Array.unsafe_set fregs a (Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_movc_i ->
          if cond_holds st (Array.unsafe_get fcond pc) then
            Array.unsafe_set fregs a c;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_cmp_r ->
          set_flags st (Array.unsafe_get fregs a)
            (Array.unsafe_get fregs c);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_cmp_i ->
          set_flags st (Array.unsafe_get fregs a) c;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr8 | U_ldrr8 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr8 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 1 > Image.mem_size then
            fault pc (cyc + eff) pend ad 1;
          Array.unsafe_set fregs a (Char.code (Bytes.unsafe_get mem ad));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr8s | U_ldrr8s ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr8s then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 1 > Image.mem_size then
            fault pc (cyc + eff) pend ad 1;
          Array.unsafe_set fregs a
            ((Char.code (Bytes.unsafe_get mem ad) lxor 0x80) - 0x80);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr16 | U_ldrr16 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr16 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 2 > Image.mem_size then
            fault pc (cyc + eff) pend ad 2;
          Array.unsafe_set fregs a (ld16 ad);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr16s | U_ldrr16s ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr16s then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 2 > Image.mem_size then
            fault pc (cyc + eff) pend ad 2;
          Array.unsafe_set fregs a ((ld16 ad lxor 0x8000) - 0x8000);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_ldr32 | U_ldrr32 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_ldrr32 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 4 > Image.mem_size then
            fault pc (cyc + eff) pend ad 4;
          Array.unsafe_set fregs a
            (sext32 (ld16 ad lor (ld16 (ad + 2) lsl 16)));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_str8 | U_strr8 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_strr8 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 1 > Image.mem_size then
            fault pc (cyc + eff) pend ad 1;
          Bytes.unsafe_set mem ad
            (Char.unsafe_chr (Array.unsafe_get fregs a land 0xff));
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_str16 | U_strr16 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_strr16 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 2 > Image.mem_size then
            fault pc (cyc + eff) pend ad 2;
          st16 ad (Array.unsafe_get fregs a);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_str32 | U_strr32 ->
          let ad =
            (Array.unsafe_get fregs b
            + (if op = U_strr32 then Array.unsafe_get fregs c else c))
            land 0xffffffff
          in
          if ad < 0x40 || ad + 4 > Image.mem_size then
            fault pc (cyc + eff) pend ad 4;
          let v = Array.unsafe_get fregs a in
          st16 ad v;
          st16 (ad + 2) (v lsr 16);
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_push ->
          let n = a in
          (* signed sp, as the reference path computes it (the fault
             message for an out-of-range sp must match) *)
          let sp = Array.unsafe_get fregs 13 - (4 * n) in
          if sp < 0x40 || sp + (4 * n) > Image.mem_size then
            fault pc (cyc + eff) pend sp (4 * n);
          (match Array.unsafe_get code pc with
          | I.Push rs ->
              List.iteri
                (fun i r ->
                  let ad = sp + (4 * i) in
                  let v = Array.unsafe_get fregs r in
                  st16 ad v;
                  st16 (ad + 2) (v lsr 16))
                rs
          | _ -> assert false);
          Array.unsafe_set fregs 13 sp;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_b -> go c (cyc + eff) (pend + 1) (done_ + 1)
      | U_bc ->
          go
            (if cond_holds st (Array.unsafe_get fcond pc) then c else pc + 1)
            (cyc + eff) (pend + 1) (done_ + 1)
      | U_bl ->
          Array.unsafe_set st.fn_calls a (Array.unsafe_get st.fn_calls a + 1);
          Array.unsafe_set fregs 14 (pc + 1);
          go c (cyc + eff) (pend + 1) (done_ + 1)
      | U_bx_lr ->
          let l = Array.unsafe_get fregs 14 in
          if l = halt_magic_i then begin
            flush pc (cyc + eff) (pend + 1);
            st.halted <- true;
            st.exit_code <- Int32.of_int (Array.unsafe_get fregs 0);
            done_ + 1
          end
          else go l (cyc + eff) (pend + 1) (done_ + 1)
      | U_ckpt ->
          (* the commit's region accounting reads [st.cycles] and its
             snapshot reads [st.regs]: publish both first *)
          flush pc (cyc + eff) pend;
          let cause =
            match Array.unsafe_get code pc with
            | I.Ckpt (cause, _) -> cause
            | _ -> assert false
          in
          commit_checkpoint st ~cause:(obs_cause cause)
            (Array.unsafe_get st.eff_mask pc)
            (pc + 1);
          (match cause with
          | I.Function_entry -> st.counts.c_entry <- st.counts.c_entry + 1
          | I.Function_exit -> st.counts.c_exit <- st.counts.c_exit + 1
          | I.Middle_end_war -> st.counts.c_middle <- st.counts.c_middle + 1
          | I.Back_end_war -> st.counts.c_backend <- st.counts.c_backend + 1);
          go (pc + 1) 0 1 (done_ + 1)
      | U_cpsid ->
          st.primask <- true;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_cpsie ->
          st.primask <- false;
          go (pc + 1) (cyc + eff) (pend + 1) (done_ + 1)
      | U_svc_print ->
          flush pc (cyc + eff) pend;
          st.out_rev <- Int32.of_int (Array.unsafe_get fregs 0) :: st.out_rev;
          commit_checkpoint st ~cause:Tr.Console
            (Array.unsafe_get st.eff_mask pc)
            (pc + 1);
          go (pc + 1) 0 1 (done_ + 1)
      | U_svc_halt ->
          flush pc (cyc + eff) (pend + 1);
          st.halted <- true;
          st.exit_code <- Int32.of_int (Array.unsafe_get fregs 0);
          done_ + 1
      | U_pseudo ->
          flush pc (cyc + eff) pend;
          raise
            (Emu_error
               ("pseudo instruction in linked code: "
               ^ I.string_of_instr (Array.unsafe_get code pc)))
    end
  in
  go st.pc 0 0 0

(* The fast path is only sound when nothing per-step is observable beyond
   the architectural state: no WAR tracking, no tracer, no interrupt
   timer.  ([pending_irq] is included for completeness: it can only be set
   while [irq_period > 0].) *)
let fast_eligible st =
  (not st.verify) && (not st.trace_on) && st.irq_period = 0
  && (not st.pending_irq)
  && st.pc_counts = None

(* n [step]s on the fully instrumented reference interpreter *)
let reference_batch st n : step =
  let rec go left =
    if left = 0 then Stepped
    else match step st with Stepped -> go (left - 1) | s -> s
  in
  go n

let uop_batch st n : step =
  match
    let left = ref n in
    while !left > 0 && not st.halted do
      (* instructions that provably cannot exhaust the power budget or
         the fuel; both checks hoist out of the inner loop for that
         stretch *)
      let headroom =
        min
          (st.budget / st.max_step_cost)
          ((st.fuel - st.cycles) / st.max_step_cost)
      in
      let k = min !left headroom in
      if k > 0 then left := !left - exec_batch st ~unchecked:true k
      else begin
        (* within [max_step_cost] of a budget or fuel edge: exact
           per-instruction checks until the edge resolves *)
        ignore (exec_batch st ~unchecked:false 1 : int);
        decr left
      end
    done
  with
  | () -> if st.halted then Halted else Stepped
  | exception Power_failed ->
      (* registers are architectural state shared with the reference path;
         the failing instruction has already published exact counters *)
      power_failure st;
      reboot st;
      Rebooted

(* ------------------------------------------------------------------ *)
(* Block engine                                                         *)
(* ------------------------------------------------------------------ *)

(* Basic blocks of the predecoded uop stream, translated once into fused
   OCaml closures.  Leaders: the image entry, every branch target, the pc
   after any control transfer (call returns included) and every checkpoint
   site — a commit snapshots the registers, cycle counter and flags, so a
   checkpoint must begin its own block with fully published state.  The
   dispatcher pre-checks power budget and fuel against the block's
   worst-case cost, exactly the hoisting [run_batch]'s uop path performs
   per stretch; anywhere the proof fails (power edge, fuel edge, quota
   smaller than the block, or a computed branch landing mid-block) it
   falls back to the checked single-step uop interpreter, which publishes
   reference-exact state per instruction.

   Closures update the cycle/budget/instruction counters with per-exit
   static constants at the block exit only, and capture nothing but ints
   and per-image arrays: the state is passed as the argument, so one
   compiled cache serves every [clone].

   Flags: a [Cmp] feeding the block's own terminating [Bc] skips the four
   flag-field writes entirely when a block-level liveness pass proves the
   flags dead at both successors (checkpoint commits and conditional moves
   count as readers, unknown successors as live), branching instead on the
   equivalent native-int predicate; otherwise the flags are materialized
   bit-for-bit as the reference path would. *)

let max_block_len = 64

let is_terminator = function
  | U_b | U_bc | U_bl | U_bx_lr | U_ckpt | U_svc_print | U_svc_halt
  | U_pseudo ->
      true
  | _ -> false

(* flag readers include the commit sites: [pack_flags] snapshots the flags
   into the checkpoint buffer, which must stay byte-identical *)
let reads_flags = function
  | U_movc_r | U_movc_i | U_bc | U_ckpt | U_svc_print -> true
  | _ -> false

let writes_flags = function U_cmp_r | U_cmp_i -> true | _ -> false

(* out-of-range access inside a block: publish the exact reference state
   (cycles include the faulting instruction, it does not retire), then
   fail through [check_addr] *)
let mfault st pc cyc n ad sz =
  st.pc <- pc;
  st.cycles <- st.cycles + cyc;
  st.budget <- st.budget - cyc;
  st.instrs <- st.instrs + n;
  check_addr st ad sz;
  assert false

(* native-int predicate equivalent to [set_flags a b; cond_holds c] *)
let holds_direct (c : I.cond) (x : int) (y : int) : bool =
  match c with
  | I.EQ -> x = y
  | I.NE -> x <> y
  | I.LT -> x < y
  | I.LE -> x <= y
  | I.GT -> x > y
  | I.GE -> x >= y
  | I.LO -> x land 0xffffffff < y land 0xffffffff
  | I.LS -> x land 0xffffffff <= y land 0xffffffff
  | I.HI -> x land 0xffffffff > y land 0xffffffff
  | I.HS -> x land 0xffffffff >= y land 0xffffffff
  | I.AL -> true

(* Fused two-instruction closures for the block compiler: one closure,
   one indirect call, two architectural updates.  Mechanically
   enumerated over the ALU/mov/flag micro-ops that dominate dynamic
   pair frequency (memory and control micro-ops keep their specialized
   single closures).  Sequential composition through the register file
   and flag fields is semantics-preserving by construction: op1's
   writes land before op2's reads exactly as in the reference
   interpreter.  The one deliberate deviation: a compare whose flags
   are provably dead past its consuming [Movc] ([flags_dead], from the
   caller's block-liveness scan) branches on the native-int predicate
   and skips the flag-field writes — unobservable, because every path
   to the next flag read passes a flag write first, and commits/
   fallback re-entry only happen at block boundaries. *)
let comp_pair op1 op2 a1 b1 c1 cnd1 a2 b2 c2 cnd2 ~flags_dead
    (k : state -> int) : (state -> int) option =
  ignore cnd1;
  match (op1, op2) with
  | U_mov_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_mov_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_mov_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_mov_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_mov_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_mov_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_mov_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_mov_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_mov_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_mov_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_mov_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_mov_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_mov_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_mov_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_mov_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_mov_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_mov_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_mov_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_mov_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_mov_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | (U_mov_i | U_movw), U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | (U_mov_i | U_movw), (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 c2;
          k st)
  | (U_mov_i | U_movw), U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | (U_mov_i | U_movw), U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | (U_mov_i | U_movw), U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | (U_mov_i | U_movw), U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | (U_mov_i | U_movw), U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | (U_mov_i | U_movw), U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | (U_mov_i | U_movw), U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | (U_mov_i | U_movw), U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | (U_mov_i | U_movw), U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | (U_mov_i | U_movw), U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | (U_mov_i | U_movw), U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | (U_mov_i | U_movw), U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | (U_mov_i | U_movw), U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | (U_mov_i | U_movw), U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | (U_mov_i | U_movw), U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | (U_mov_i | U_movw), U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | (U_mov_i | U_movw), U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | (U_mov_i | U_movw), U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 c1;
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_add_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_add_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_add_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_add_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_add_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_add_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_add_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_add_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_add_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_add_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_add_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_add_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_add_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_add_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_add_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_add_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_add_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_add_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_add_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_add_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + Array.unsafe_get r c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_add_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_add_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_add_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_add_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_add_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_add_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_add_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_add_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_add_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_add_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_add_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_add_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_add_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_add_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_add_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_add_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_add_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_add_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_add_i, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_add_i, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 + c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_sub_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_sub_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_sub_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_sub_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_sub_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_sub_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_sub_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_sub_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_sub_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_sub_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_sub_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_sub_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_sub_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_sub_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_sub_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_sub_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_sub_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_sub_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_sub_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_sub_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - Array.unsafe_get r c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_sub_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_sub_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_sub_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_sub_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_sub_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_sub_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_sub_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_sub_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_sub_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_sub_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_sub_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_sub_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_sub_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_sub_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_sub_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_sub_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_sub_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_sub_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_sub_i, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_sub_i, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 - c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_mul_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_mul_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_mul_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_mul_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_mul_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_mul_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_mul_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_mul_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_mul_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_mul_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_mul_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_mul_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_mul_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_mul_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_mul_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_mul_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_mul_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_mul_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_mul_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_mul_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (sext32 (Array.unsafe_get r b1 * Array.unsafe_get r c1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_and_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_and_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_and_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_and_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_and_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_and_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_and_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_and_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_and_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_and_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_and_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_and_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_and_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_and_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_and_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_and_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_and_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_and_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_and_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_and_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_and_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_and_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_and_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_and_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_and_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_and_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_and_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_and_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_and_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_and_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_and_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_and_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_and_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_and_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_and_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_and_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_and_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_and_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_and_i, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_and_i, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 land c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_orr_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_orr_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_orr_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_orr_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_orr_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_orr_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_orr_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_orr_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_orr_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_orr_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_orr_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_orr_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_orr_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_orr_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_orr_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_orr_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_orr_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_orr_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_orr_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_orr_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_orr_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_orr_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_orr_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_orr_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_orr_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_orr_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_orr_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_orr_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_orr_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_orr_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_orr_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_orr_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_orr_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_orr_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_orr_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_orr_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_orr_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_orr_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_orr_i, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_orr_i, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lor c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_eor_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_eor_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_eor_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_eor_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_eor_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_eor_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_eor_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_eor_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_eor_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_eor_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_eor_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_eor_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_eor_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_eor_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_eor_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_eor_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_eor_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_eor_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_eor_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_eor_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_eor_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_eor_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_eor_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_eor_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_eor_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_eor_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_eor_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_eor_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_eor_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_eor_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_eor_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_eor_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_eor_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_eor_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_eor_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_eor_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_eor_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_eor_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_eor_i, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_eor_i, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 lxor c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_lsl_i, U_mov_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_lsl_i, (U_mov_i | U_movw) ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_lsl_i, U_add_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_lsl_i, U_add_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_lsl_i, U_sub_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_lsl_i, U_sub_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_lsl_i, U_mul_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_lsl_i, U_and_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_lsl_i, U_and_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_lsl_i, U_orr_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_lsl_i, U_orr_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_lsl_i, U_eor_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_lsl_i, U_eor_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_lsl_i, U_lsl_i ->
      Some
        (let sh1 = c1 land 255 in let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_lsl_i, U_lsr_i ->
      Some
        (let sh1 = c1 land 255 in let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_lsl_i, U_asr_i ->
      Some
        (let sh1 = c1 land 255 in let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_lsl_i, U_cmp_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_lsl_i, U_cmp_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_lsl_i, U_movc_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_lsl_i, U_movc_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 (Array.unsafe_get r b1 lsl sh1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_lsr_i, U_mov_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_lsr_i, (U_mov_i | U_movw) ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 c2;
          k st)
  | U_lsr_i, U_add_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_lsr_i, U_add_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_lsr_i, U_sub_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_lsr_i, U_sub_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_lsr_i, U_mul_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_lsr_i, U_and_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_lsr_i, U_and_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_lsr_i, U_orr_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_lsr_i, U_orr_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_lsr_i, U_eor_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_lsr_i, U_eor_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_lsr_i, U_lsl_i ->
      Some
        (let sh1 = c1 land 255 in let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_lsr_i, U_lsr_i ->
      Some
        (let sh1 = c1 land 255 in let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_lsr_i, U_asr_i ->
      Some
        (let sh1 = c1 land 255 in let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_lsr_i, U_cmp_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_lsr_i, U_cmp_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_lsr_i, U_movc_r ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_lsr_i, U_movc_i ->
      Some
        (let sh1 = c1 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (if sh1 >= 32 then 0 else sext32 ((Array.unsafe_get r b1 land 0xffffffff) lsr sh1));
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_asr_i, U_mov_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_asr_i, (U_mov_i | U_movw) ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_asr_i, U_add_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_asr_i, U_add_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_asr_i, U_sub_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_asr_i, U_sub_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_asr_i, U_mul_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_asr_i, U_and_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_asr_i, U_and_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_asr_i, U_orr_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_asr_i, U_orr_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_asr_i, U_eor_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_asr_i, U_eor_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_asr_i, U_lsl_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_asr_i, U_lsr_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_asr_i, U_asr_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_asr_i, U_cmp_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_asr_i, U_cmp_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_asr_i, U_movc_r ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_asr_i, U_movc_i ->
      Some
        (let sh1 = min (c1 land 255) 31 in
         fun st ->
          let r = st.regs in
          Array.unsafe_set r a1 (Array.unsafe_get r b1 asr sh1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_cmp_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_cmp_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_cmp_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_cmp_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_cmp_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_cmp_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_cmp_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_cmp_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_cmp_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_cmp_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_cmp_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_cmp_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_cmp_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_cmp_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_cmp_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_cmp_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_cmp_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_cmp_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_cmp_r, U_movc_r ->
      Some
        (if flags_dead then fun st ->
           let r = st.regs in
           let x = Array.unsafe_get r a1 and y = Array.unsafe_get r c1 in
           if holds_direct cnd2 x y then Array.unsafe_set r a2 (Array.unsafe_get r c2);
           k st
         else fun st ->
           let r = st.regs in
           set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
           if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
           k st)
  | U_cmp_r, U_movc_i ->
      Some
        (if flags_dead then fun st ->
           let r = st.regs in
           let x = Array.unsafe_get r a1 and y = Array.unsafe_get r c1 in
           if holds_direct cnd2 x y then Array.unsafe_set r a2 c2;
           k st
         else fun st ->
           let r = st.regs in
           set_flags st (Array.unsafe_get r a1) (Array.unsafe_get r c1);
           if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
           k st)
  | U_cmp_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_cmp_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 c2;
          k st)
  | U_cmp_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_cmp_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_cmp_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_cmp_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_cmp_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_cmp_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_cmp_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_cmp_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_cmp_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_cmp_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_cmp_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_cmp_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_cmp_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_cmp_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_cmp_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_cmp_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          set_flags st (Array.unsafe_get r a1) c1;
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_cmp_i, U_movc_r ->
      Some
        (if flags_dead then fun st ->
           let r = st.regs in
           let x = Array.unsafe_get r a1 and y = c1 in
           if holds_direct cnd2 x y then Array.unsafe_set r a2 (Array.unsafe_get r c2);
           k st
         else fun st ->
           let r = st.regs in
           set_flags st (Array.unsafe_get r a1) c1;
           if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
           k st)
  | U_cmp_i, U_movc_i ->
      Some
        (if flags_dead then fun st ->
           let r = st.regs in
           let x = Array.unsafe_get r a1 and y = c1 in
           if holds_direct cnd2 x y then Array.unsafe_set r a2 c2;
           k st
         else fun st ->
           let r = st.regs in
           set_flags st (Array.unsafe_get r a1) c1;
           if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
           k st)
  | U_movc_r, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_movc_r, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 c2;
          k st)
  | U_movc_r, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_movc_r, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_movc_r, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_movc_r, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_movc_r, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_movc_r, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_movc_r, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_movc_r, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_movc_r, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_movc_r, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_movc_r, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_movc_r, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_movc_r, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_movc_r, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_movc_r, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_movc_r, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_movc_r, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_movc_r, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 (Array.unsafe_get r c1);
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | U_movc_i, U_mov_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_movc_i, (U_mov_i | U_movw) ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 c2;
          k st)
  | U_movc_i, U_add_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + Array.unsafe_get r c2));
          k st)
  | U_movc_i, U_add_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 + c2));
          k st)
  | U_movc_i, U_sub_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - Array.unsafe_get r c2));
          k st)
  | U_movc_i, U_sub_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 - c2));
          k st)
  | U_movc_i, U_mul_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (sext32 (Array.unsafe_get r b2 * Array.unsafe_get r c2));
          k st)
  | U_movc_i, U_and_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land Array.unsafe_get r c2);
          k st)
  | U_movc_i, U_and_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 land c2);
          k st)
  | U_movc_i, U_orr_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor Array.unsafe_get r c2);
          k st)
  | U_movc_i, U_orr_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lor c2);
          k st)
  | U_movc_i, U_eor_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor Array.unsafe_get r c2);
          k st)
  | U_movc_i, U_eor_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 lxor c2);
          k st)
  | U_movc_i, U_lsl_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 (Array.unsafe_get r b2 lsl sh2));
          k st)
  | U_movc_i, U_lsr_i ->
      Some
        (let sh2 = c2 land 255 in
         fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (if sh2 >= 32 then 0 else sext32 ((Array.unsafe_get r b2 land 0xffffffff) lsr sh2));
          k st)
  | U_movc_i, U_asr_i ->
      Some
        (let sh2 = min (c2 land 255) 31 in
         fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          Array.unsafe_set r a2 (Array.unsafe_get r b2 asr sh2);
          k st)
  | U_movc_i, U_cmp_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          set_flags st (Array.unsafe_get r a2) (Array.unsafe_get r c2);
          k st)
  | U_movc_i, U_cmp_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          set_flags st (Array.unsafe_get r a2) c2;
          k st)
  | U_movc_i, U_movc_r ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          if cond_holds st cnd2 then Array.unsafe_set r a2 (Array.unsafe_get r c2);
          k st)
  | U_movc_i, U_movc_i ->
      Some
        (fun st ->
          let r = st.regs in
          if cond_holds st cnd1 then Array.unsafe_set r a1 c1;
          if cond_holds st cnd2 then Array.unsafe_set r a2 c2;
          k st)
  | _ -> None

let compile_blocks (st : state) : bcache =
  let img = st.img in
  let code = img.Image.code in
  let n = Array.length code in
  let fop = st.fop
  and fa = st.fa
  and fb = st.fb
  and fc = st.fc
  and fcond = st.fcond
  and cost = st.cost
  and eff_mask = st.eff_mask in
  let msize = Image.mem_size in
  (* ---- pass 1: leaders ---- *)
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(img.Image.entry) <- true;
  let mark t = if t >= 0 && t < n then leader.(t) <- true in
  for pc = 0 to n - 1 do
    match fop.(pc) with
    | U_b | U_bc | U_bl ->
        mark fc.(pc);
        mark (pc + 1)
    | U_bx_lr | U_svc_halt | U_pseudo -> mark (pc + 1)
    | U_ckpt | U_svc_print ->
        mark pc;
        mark (pc + 1)
    | _ -> ()
  done;
  (* cap straight-line runs so a block's worst-case cost stays small
     relative to realistic on-periods (a split point is itself a leader) *)
  let len = ref 0 in
  for pc = 0 to n - 1 do
    if leader.(pc) then len := 1
    else begin
      incr len;
      if !len > max_block_len then begin
        leader.(pc) <- true;
        len := 1
      end
    end
  done;
  let bidx = Array.make (max n 1) (-1) in
  let nbk = ref 0 in
  for pc = 0 to n - 1 do
    if leader.(pc) then begin
      bidx.(pc) <- !nbk;
      incr nbk
    end
  done;
  let nbk = !nbk in
  let starts = Array.make (max nbk 1) 0 in
  for pc = 0 to n - 1 do
    if leader.(pc) then starts.(bidx.(pc)) <- pc
  done;
  (* ---- pass 2: block spans ---- *)
  (* [body_end] is exclusive and never includes the terminator;
     [term_pc.(i) = -1] marks a fallthrough block (next pc is a leader) *)
  let body_end = Array.make (max nbk 1) 0
  and term_pc = Array.make (max nbk 1) (-1) in
  for i = 0 to nbk - 1 do
    let s = starts.(i) in
    let limit = if i + 1 < nbk then starts.(i + 1) else n in
    let rec scan pc =
      if pc >= limit then begin
        body_end.(i) <- limit;
        term_pc.(i) <- -1
      end
      else if is_terminator fop.(pc) then begin
        body_end.(i) <- pc;
        term_pc.(i) <- pc
      end
      else scan (pc + 1)
    in
    scan s
  done;
  (* ---- pass 3: block-level flags liveness ---- *)
  let uses = Array.make (max nbk 1) false
  and defs = Array.make (max nbk 1) false
  and succs = Array.make (max nbk 1) []
  and unknown = Array.make (max nbk 1) false
  and live_in = Array.make (max nbk 1) false in
  for i = 0 to nbk - 1 do
    let s = starts.(i) in
    let stop = if term_pc.(i) >= 0 then term_pc.(i) else body_end.(i) - 1 in
    (let rec scan pc =
       if pc > stop then ()
       else if reads_flags fop.(pc) then uses.(i) <- true
       else if writes_flags fop.(pc) then defs.(i) <- true
       else scan (pc + 1)
     in
     scan s);
    let limit = if i + 1 < nbk then starts.(i + 1) else n in
    match term_pc.(i) with
    | -1 -> if limit < n then succs.(i) <- [ bidx.(limit) ]
    | t -> (
        match fop.(t) with
        | U_b | U_bl -> succs.(i) <- [ bidx.(fc.(t)) ]
        | U_bc ->
            succs.(i) <-
              (bidx.(fc.(t)) :: (if t + 1 < n then [ bidx.(t + 1) ] else []))
        | U_ckpt | U_svc_print | U_pseudo ->
            if t + 1 < n then succs.(i) <- [ bidx.(t + 1) ]
        | U_bx_lr -> unknown.(i) <- true
        | _ -> ())
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nbk - 1 downto 0 do
      if not live_in.(i) then begin
        let live_out =
          unknown.(i) || List.exists (fun s -> live_in.(s)) succs.(i)
        in
        if uses.(i) || ((not defs.(i)) && live_out) then begin
          live_in.(i) <- true;
          changed := true
        end
      end
    done
  done;
  let live_out i = unknown.(i) || List.exists (fun s -> live_in.(s)) succs.(i) in
  (* ---- pass 4: translate each block to one fused closure ---- *)
  let compile_one i =
    let s = starts.(i) in
    let e = body_end.(i) in
    let t = term_pc.(i) in
    let limit = if i + 1 < nbk then starts.(i + 1) else n in
    (* a [Cmp] immediately feeding the terminating [Bc]: always fused into
       the branch; the flag fields are skipped when provably dead *)
    let fuse_cmp =
      t >= 0
      && fop.(t) = U_bc
      && e > s
      && (match fop.(e - 1) with U_cmp_r | U_cmp_i -> true | _ -> false)
    in
    let body_stop = if fuse_cmp then e - 1 else e in
    (* [flags_dead_from pc]: entering body position [pc], every path to
       the next architectural flag read passes a flag write first — so a
       compare just before [pc] may skip materializing the flag fields.
       Within the block this is a forward scan; past the end it defers to
       the terminator ([Bc]/[Ckpt]/[Svc_print] read, a [fuse_cmp]d
       compare writes) and then to the interblock liveness fixpoint. *)
    let rec flags_dead_from pc =
      if pc < body_stop then
        if writes_flags fop.(pc) then true
        else if reads_flags fop.(pc) then false
        else flags_dead_from (pc + 1)
      else if fuse_cmp then true
      else
        match t with
        | -1 -> not (live_out i)
        | t ->
            if reads_flags fop.(t) then false
            else if writes_flags fop.(t) then true
            else not (live_out i)
    in
    let body_cost = ref 0 in
    for pc = s to e - 1 do
      body_cost := !body_cost + cost.(pc)
    done;
    let bc_ = !body_cost in
    let bn = e - s in
    (* ---- terminator ---- *)
    let tail : state -> int =
      match t with
      | -1 ->
          let tc = bc_ and tn = bn in
          if limit < n then begin
            let nb = bidx.(limit) in
            fun st ->
              st.cycles <- st.cycles + tc;
              st.budget <- st.budget - tc;
              st.instrs <- st.instrs + tn;
              nb
          end
          else fun st ->
            st.cycles <- st.cycles + tc;
            st.budget <- st.budget - tc;
            st.instrs <- st.instrs + tn;
            st.pc <- limit;
            -1
      | t -> (
          match fop.(t) with
          | U_b ->
              let tc = bc_ + 3 and tn = bn + 1 in
              let nb = bidx.(fc.(t)) in
              fun st ->
                st.cycles <- st.cycles + tc;
                st.budget <- st.budget - tc;
                st.instrs <- st.instrs + tn;
                nb
          | U_bl ->
              let tc = bc_ + 4 and tn = bn + 1 in
              let nb = bidx.(fc.(t)) in
              let slot = fa.(t) and ret = t + 1 in
              fun st ->
                Array.unsafe_set st.regs 14 ret;
                Array.unsafe_set st.fn_calls slot
                  (Array.unsafe_get st.fn_calls slot + 1);
                st.cycles <- st.cycles + tc;
                st.budget <- st.budget - tc;
                st.instrs <- st.instrs + tn;
                nb
          | U_bx_lr ->
              let tc = bc_ + 3 and tn = bn + 1 in
              let me = t in
              fun st ->
                st.cycles <- st.cycles + tc;
                st.budget <- st.budget - tc;
                st.instrs <- st.instrs + tn;
                let l = Array.unsafe_get st.regs 14 in
                if l = halt_magic_i then begin
                  st.pc <- me;
                  st.halted <- true;
                  st.exit_code <- Int32.of_int (Array.unsafe_get st.regs 0);
                  -1
                end
                else begin
                  st.pc <- l;
                  if l >= 0 && l < n then Array.unsafe_get bidx l else -1
                end
          | U_svc_halt ->
              let tc = bc_ + 1 and tn = bn + 1 in
              let me = t in
              fun st ->
                st.cycles <- st.cycles + tc;
                st.budget <- st.budget - tc;
                st.instrs <- st.instrs + tn;
                st.pc <- me;
                st.halted <- true;
                st.exit_code <- Int32.of_int (Array.unsafe_get st.regs 0);
                -1
          | U_pseudo ->
              (* the pseudo's cycle is spent, the instruction never
                 retires — exactly the uop path's accounting *)
              let tc = bc_ + 1 and tn = bn in
              let me = t in
              fun st ->
                st.cycles <- st.cycles + tc;
                st.budget <- st.budget - tc;
                st.instrs <- st.instrs + tn;
                st.pc <- me;
                raise
                  (Emu_error
                     ("pseudo instruction in linked code: "
                     ^ I.string_of_instr code.(me)))
          | U_ckpt ->
              (* its own single-instruction block (checkpoint sites are
                 leaders), so every counter is exact at the commit *)
              let cst = cost.(t) and mask = eff_mask.(t) in
              let cause =
                match code.(t) with I.Ckpt (c, _) -> c | _ -> assert false
              in
              let oc = obs_cause cause in
              let me = t in
              let nb = if t + 1 < n then bidx.(t + 1) else -1 in
              fun st ->
                st.pc <- me;
                st.cycles <- st.cycles + cst;
                st.budget <- st.budget - cst;
                commit_checkpoint st ~cause:oc mask (me + 1);
                (match cause with
                | I.Function_entry -> st.counts.c_entry <- st.counts.c_entry + 1
                | I.Function_exit -> st.counts.c_exit <- st.counts.c_exit + 1
                | I.Middle_end_war ->
                    st.counts.c_middle <- st.counts.c_middle + 1
                | I.Back_end_war ->
                    st.counts.c_backend <- st.counts.c_backend + 1);
                st.instrs <- st.instrs + 1;
                if nb >= 0 then nb
                else begin
                  st.pc <- me + 1;
                  -1
                end
          | U_svc_print ->
              let cst = cost.(t) and mask = eff_mask.(t) in
              let me = t in
              let nb = if t + 1 < n then bidx.(t + 1) else -1 in
              fun st ->
                st.pc <- me;
                st.cycles <- st.cycles + cst;
                st.budget <- st.budget - cst;
                st.out_rev <-
                  Int32.of_int (Array.unsafe_get st.regs 0) :: st.out_rev;
                commit_checkpoint st ~cause:Tr.Console mask (me + 1);
                st.instrs <- st.instrs + 1;
                if nb >= 0 then nb
                else begin
                  st.pc <- me + 1;
                  -1
                end
          | U_bc when fuse_cmp ->
              (* cmp+bc superinstruction: native-int predicate; flag
                 fields written only when live at a successor *)
              let cp = e - 1 in
              let xa = fa.(cp) and xc = fc.(cp) in
              let cmp_reg = fop.(cp) = U_cmp_r in
              let cnd = fcond.(t) in
              let live = live_out i in
              let tcT = bc_ + 3 and tcN = bc_ + 1 and tn = bn + 1 in
              let tgt = bidx.(fc.(t)) in
              let nbn = if t + 1 < n then bidx.(t + 1) else -1 in
              let me = t in
              fun st ->
                let x = Array.unsafe_get st.regs xa in
                let y = if cmp_reg then Array.unsafe_get st.regs xc else xc in
                if live then set_flags st x y;
                if holds_direct cnd x y then begin
                  st.cycles <- st.cycles + tcT;
                  st.budget <- st.budget - tcT;
                  st.instrs <- st.instrs + tn;
                  tgt
                end
                else begin
                  st.cycles <- st.cycles + tcN;
                  st.budget <- st.budget - tcN;
                  st.instrs <- st.instrs + tn;
                  if nbn >= 0 then nbn
                  else begin
                    st.pc <- me + 1;
                    -1
                  end
                end
          | U_bc ->
              let cnd = fcond.(t) in
              let tcT = bc_ + 3 and tcN = bc_ + 1 and tn = bn + 1 in
              let tgt = bidx.(fc.(t)) in
              let nbn = if t + 1 < n then bidx.(t + 1) else -1 in
              let me = t in
              fun st ->
                if cond_holds st cnd then begin
                  st.cycles <- st.cycles + tcT;
                  st.budget <- st.budget - tcT;
                  st.instrs <- st.instrs + tn;
                  tgt
                end
                else begin
                  st.cycles <- st.cycles + tcN;
                  st.budget <- st.budget - tcN;
                  st.instrs <- st.instrs + tn;
                  if nbn >= 0 then nbn
                  else begin
                    st.pc <- me + 1;
                    -1
                  end
                end
          | _ -> assert false)
    in
    (* ---- body, folded right-to-left into the terminator ----
       [cc]/[cn] are the cycles/instructions already retired within the
       block before [pc] — the constants a fault must publish. *)
    (* Continuations are built bottom-up ([conts.(i)] executes body
       position [s + i] onward, ending in [tail]) so each position is
       translated exactly once; the chain entered at [s] pairs fusible
       ALU/mov micro-ops greedily left to right. *)
    let conts = Array.make (body_stop - s + 1) tail in
    let comp pc (k1 : state -> int) (k2 : (state -> int) option) :
        state -> int =
      let a = fa.(pc) and b = fb.(pc) and c = fc.(pc) in
      let me = pc in
      let cc = ref 0 in
      for p = s to pc - 1 do
        cc := !cc + cost.(p)
      done;
      let cn = pc - s in
      let fcy = !cc + cost.(pc) in
      (* two fusible ALU/mov/flag micro-ops: one closure for both (none
         of them fault, so the pair needs no intermediate fault state) *)
      match
        match k2 with
        | None -> None
        | Some k2 ->
            comp_pair fop.(pc)
              fop.(pc + 1)
              a b c fcond.(pc)
              fa.(pc + 1)
              fb.(pc + 1)
              fc.(pc + 1)
              fcond.(pc + 1)
              ~flags_dead:(flags_dead_from (pc + 2))
              k2
      with
      | Some fused -> fused
      | None -> (
        let k = k1 in
        match fop.(pc) with
        | U_add_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (sext32 (Array.unsafe_get r b + Array.unsafe_get r c));
              k st
        | U_add_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (sext32 (Array.unsafe_get r b + c));
              k st
        | U_sub_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (sext32 (Array.unsafe_get r b - Array.unsafe_get r c));
              k st
        | U_sub_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (sext32 (Array.unsafe_get r b - c));
              k st
        | U_rsb_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (sext32 (Array.unsafe_get r c - Array.unsafe_get r b));
              k st
        | U_rsb_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (sext32 (c - Array.unsafe_get r b));
              k st
        | U_mul_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (sext32 (Array.unsafe_get r b * Array.unsafe_get r c));
              k st
        | U_mul_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (sext32 (Array.unsafe_get r b * c));
              k st
        | U_sdiv_r ->
            fun st ->
              let r = st.regs in
              let x = Array.unsafe_get r b and y = Array.unsafe_get r c in
              Array.unsafe_set r a
                (if y = 0 then 0
                 else if x = -0x80000000 && y = -1 then -0x80000000
                 else x / y);
              k st
        | U_sdiv_i ->
            fun st ->
              let r = st.regs in
              let x = Array.unsafe_get r b in
              Array.unsafe_set r a
                (if c = 0 then 0
                 else if x = -0x80000000 && c = -1 then -0x80000000
                 else x / c);
              k st
        | U_udiv_r ->
            fun st ->
              let r = st.regs in
              let x = Array.unsafe_get r b land 0xffffffff
              and y = Array.unsafe_get r c land 0xffffffff in
              Array.unsafe_set r a (if y = 0 then 0 else sext32 (x / y));
              k st
        | U_udiv_i ->
            let y = c land 0xffffffff in
            fun st ->
              let r = st.regs in
              let x = Array.unsafe_get r b land 0xffffffff in
              Array.unsafe_set r a (if y = 0 then 0 else sext32 (x / y));
              k st
        | U_and_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (Array.unsafe_get r b land Array.unsafe_get r c);
              k st
        | U_and_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (Array.unsafe_get r b land c);
              k st
        | U_orr_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (Array.unsafe_get r b lor Array.unsafe_get r c);
              k st
        | U_orr_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (Array.unsafe_get r b lor c);
              k st
        | U_eor_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (Array.unsafe_get r b lxor Array.unsafe_get r c);
              k st
        | U_eor_i ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (Array.unsafe_get r b lxor c);
              k st
        | U_lsl_r ->
            fun st ->
              let r = st.regs in
              let sh = Array.unsafe_get r c land 255 in
              Array.unsafe_set r a
                (if sh >= 32 then 0 else sext32 (Array.unsafe_get r b lsl sh));
              k st
        | U_lsl_i ->
            let sh = c land 255 in
            if sh >= 32 then fun st ->
              Array.unsafe_set st.regs a 0;
              k st
            else fun st ->
              let r = st.regs in
              Array.unsafe_set r a (sext32 (Array.unsafe_get r b lsl sh));
              k st
        | U_lsr_r ->
            fun st ->
              let r = st.regs in
              let sh = Array.unsafe_get r c land 255 in
              Array.unsafe_set r a
                (if sh >= 32 then 0
                 else sext32 ((Array.unsafe_get r b land 0xffffffff) lsr sh));
              k st
        | U_lsr_i ->
            let sh = c land 255 in
            if sh >= 32 then fun st ->
              Array.unsafe_set st.regs a 0;
              k st
            else fun st ->
              let r = st.regs in
              Array.unsafe_set r a
                (sext32 ((Array.unsafe_get r b land 0xffffffff) lsr sh));
              k st
        | U_asr_r ->
            fun st ->
              let r = st.regs in
              let sh = Array.unsafe_get r c land 255 in
              Array.unsafe_set r a
                (if sh >= 32 then Array.unsafe_get r b asr 31
                 else Array.unsafe_get r b asr sh);
              k st
        | U_asr_i ->
            let sh = min (c land 255) 31 in
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (Array.unsafe_get r b asr sh);
              k st
        | U_mov_r ->
            fun st ->
              let r = st.regs in
              Array.unsafe_set r a (Array.unsafe_get r c);
              k st
        | U_mov_i | U_movw ->
            fun st ->
              Array.unsafe_set st.regs a c;
              k st
        | U_movc_r ->
            let cnd = fcond.(pc) in
            fun st ->
              let r = st.regs in
              if cond_holds st cnd then
                Array.unsafe_set r a (Array.unsafe_get r c);
              k st
        | U_movc_i ->
            let cnd = fcond.(pc) in
            fun st ->
              if cond_holds st cnd then Array.unsafe_set st.regs a c;
              k st
        | U_cmp_r ->
            fun st ->
              let r = st.regs in
              set_flags st (Array.unsafe_get r a) (Array.unsafe_get r c);
              k st
        | U_cmp_i ->
            fun st ->
              set_flags st (Array.unsafe_get st.regs a) c;
              k st
        | U_ldr8 ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 1 > msize then mfault st me fcy cn ad 1;
              Array.unsafe_set r a (Char.code (Bytes.unsafe_get st.mem ad));
              k st
        | U_ldrr8 ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 1 > msize then mfault st me fcy cn ad 1;
              Array.unsafe_set r a (Char.code (Bytes.unsafe_get st.mem ad));
              k st
        | U_ldr8s ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 1 > msize then mfault st me fcy cn ad 1;
              Array.unsafe_set r a
                ((Char.code (Bytes.unsafe_get st.mem ad) lxor 0x80) - 0x80);
              k st
        | U_ldrr8s ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 1 > msize then mfault st me fcy cn ad 1;
              Array.unsafe_set r a
                ((Char.code (Bytes.unsafe_get st.mem ad) lxor 0x80) - 0x80);
              k st
        | U_ldr16 ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 2 > msize then mfault st me fcy cn ad 2;
              Array.unsafe_set r a (ld16 st.mem ad);
              k st
        | U_ldrr16 ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 2 > msize then mfault st me fcy cn ad 2;
              Array.unsafe_set r a (ld16 st.mem ad);
              k st
        | U_ldr16s ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 2 > msize then mfault st me fcy cn ad 2;
              Array.unsafe_set r a ((ld16 st.mem ad lxor 0x8000) - 0x8000);
              k st
        | U_ldrr16s ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 2 > msize then mfault st me fcy cn ad 2;
              Array.unsafe_set r a ((ld16 st.mem ad lxor 0x8000) - 0x8000);
              k st
        | U_ldr32 ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 4 > msize then mfault st me fcy cn ad 4;
              Array.unsafe_set r a (ld32 st.mem ad);
              k st
        | U_ldrr32 ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 4 > msize then mfault st me fcy cn ad 4;
              Array.unsafe_set r a (ld32 st.mem ad);
              k st
        | U_str8 ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 1 > msize then mfault st me fcy cn ad 1;
              Bytes.unsafe_set st.mem ad
                (Char.unsafe_chr (Array.unsafe_get r a land 0xff));
              k st
        | U_strr8 ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 1 > msize then mfault st me fcy cn ad 1;
              Bytes.unsafe_set st.mem ad
                (Char.unsafe_chr (Array.unsafe_get r a land 0xff));
              k st
        | U_str16 ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 2 > msize then mfault st me fcy cn ad 2;
              st16 st.mem ad (Array.unsafe_get r a);
              k st
        | U_strr16 ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 2 > msize then mfault st me fcy cn ad 2;
              st16 st.mem ad (Array.unsafe_get r a);
              k st
        | U_str32 ->
            fun st ->
              let r = st.regs in
              let ad = (Array.unsafe_get r b + c) land 0xffffffff in
              if ad < 0x40 || ad + 4 > msize then mfault st me fcy cn ad 4;
              st32 st.mem ad (Array.unsafe_get r a);
              k st
        | U_strr32 ->
            fun st ->
              let r = st.regs in
              let ad =
                (Array.unsafe_get r b + Array.unsafe_get r c) land 0xffffffff
              in
              if ad < 0x40 || ad + 4 > msize then mfault st me fcy cn ad 4;
              st32 st.mem ad (Array.unsafe_get r a);
              k st
        | U_push ->
            let rs =
              match code.(pc) with I.Push rs -> rs | _ -> assert false
            in
            let nr = a in
            fun st ->
              let r = st.regs in
              let sp = Array.unsafe_get r 13 - (4 * nr) in
              if sp < 0x40 || sp + (4 * nr) > msize then
                mfault st me fcy cn sp (4 * nr);
              let mem = st.mem in
              List.iteri
                (fun i rg -> st32 mem (sp + (4 * i)) (Array.unsafe_get r rg))
                rs;
              Array.unsafe_set r 13 sp;
              k st
        | U_cpsid ->
            fun st ->
              st.primask <- true;
              k st
        | U_cpsie ->
            fun st ->
              st.primask <- false;
              k st
        | U_b | U_bc | U_bl | U_bx_lr | U_ckpt | U_svc_print | U_svc_halt
        | U_pseudo ->
            (* terminators never appear in a block body *)
            assert false)
    in
    for i = body_stop - 1 - s downto 0 do
      let pc = s + i in
      let k2 = if pc + 1 < body_stop then Some conts.(i + 2) else None in
      conts.(i) <- comp pc conts.(i + 1) k2
    done;
    let maxcost =
      bc_
      +
      match t with
      | -1 -> 0
      | t -> (
          match fop.(t) with
          | U_b | U_bx_lr -> 3
          | U_bc -> 3
          | U_bl -> 4
          | U_svc_halt | U_pseudo -> 1
          | U_ckpt | U_svc_print -> cost.(t)
          | _ -> assert false)
    in
    let ninstr = bn + if t >= 0 then 1 else 0 in
    { b_pc = s; b_ninstr = ninstr; b_maxcost = maxcost; b_exec = conts.(0) }
  in
  let blocks = Array.init nbk compile_one in
  { bc_blocks = blocks; bc_index = bidx; bc_compile_ms = 0. }

(* The compiled cache depends only on the image and the save-all toggle
   (closures capture operand constants, checkpoint costs/masks — which
   [WARIO_SAVE_ALL] inflates — and the image's code array, never other
   instance state), so it is shared process-wide: one translation serves
   every instance, clone and rerun of the same image — a campaign probing
   10^5 schedules compiles once.  Keyed by physical identity plus the
   save-all flag; bounded, evicting oldest first. *)
let shared_bcaches : ((Image.t * bool) * bcache) list ref = ref []
let shared_bcaches_max = 32

let get_bcache st =
  match st.bcache with
  | Some c -> c
  | None -> (
      match
        List.find_opt
          (fun ((img, sa), _) -> img == st.img && sa = st.save_all)
          !shared_bcaches
      with
      | Some (_, c) ->
          st.bcache <- Some c;
          c
      | None ->
          let t0 = Sys.time () in
          let c = compile_blocks st in
          let c = { c with bc_compile_ms = (Sys.time () -. t0) *. 1000. } in
          st.bcache <- Some c;
          let kept =
            List.filteri
              (fun i _ -> i < shared_bcaches_max - 1)
              !shared_bcaches
          in
          shared_bcaches := ((st.img, st.save_all), c) :: kept;
          c)

let block_batch st n : step =
  let bc = get_bcache st in
  let blocks = bc.bc_blocks and bidx = bc.bc_index in
  let ncode = Array.length st.fop in
  (* direct-threaded dispatch: each terminator returns its successor's
     block index, so the chain never re-derives it from [st.pc]; [st.pc]
     is published whenever the chain breaks *)
  let rec drive cur left disp =
    let b = Array.unsafe_get blocks cur in
    if left < b.b_ninstr || st.budget < b.b_maxcost
       || st.fuel - st.cycles < b.b_maxcost
    then begin
      st.pc <- b.b_pc;
      st.n_dispatch <- st.n_dispatch + disp;
      left
    end
    else
      let nxt = b.b_exec st in
      if nxt >= 0 then drive nxt (left - b.b_ninstr) (disp + 1)
      else begin
        st.n_dispatch <- st.n_dispatch + disp + 1;
        left - b.b_ninstr
      end
  in
  match
    let left = ref n in
    while !left > 0 && not st.halted do
      let pc = st.pc in
      let cur =
        if pc >= 0 && pc < ncode then Array.unsafe_get bidx pc else -1
      in
      let advanced =
        cur >= 0
        &&
        let left' = drive cur !left 0 in
        let adv = left' < !left in
        left := left';
        adv
      in
      if (not advanced) && !left > 0 && not st.halted then begin
        (* power/fuel edge, quota smaller than the next block, or a pc
           inside a block (dynamic branch): checked single-step fallback
           with reference-exact per-instruction state *)
        st.n_fallback <- st.n_fallback + 1;
        ignore (exec_batch st ~unchecked:false 1 : int);
        decr left
      end
    done
  with
  | () -> if st.halted then Halted else Stepped
  | exception Power_failed ->
      power_failure st;
      reboot st;
      Rebooted

type engine =
  | Auto  (** best eligible engine: block when possible, reference else *)
  | Reference  (** force the fully instrumented per-step interpreter *)
  | Uop  (** the predecoded micro-op loop (PR 4's fast path) *)
  | Block  (** basic blocks fused into closures (falls back when ineligible) *)

let run_batch ?(engine = Auto) st n : step =
  if st.halted then Halted
  else if n <= 0 then invalid_arg "Emulator.run_batch: non-positive batch size"
  else
    match engine with
    | Reference -> reference_batch st n
    | Uop -> if fast_eligible st then uop_batch st n else reference_batch st n
    | Auto | Block ->
        if fast_eligible st then block_batch st n else reference_batch st n

let clone st =
  {
    st with
    mem = Bytes.copy st.mem;
    regs = Array.copy st.regs;
    power = Power.copy st.power;
    epoch = Array.copy st.epoch;
    kinds = Bytes.copy st.kinds;
    counts =
      {
        c_entry = st.counts.c_entry;
        c_exit = st.counts.c_exit;
        c_middle = st.counts.c_middle;
        c_backend = st.counts.c_backend;
      };
    fn_calls = Array.copy st.fn_calls;
    pc_counts = Option.map Array.copy st.pc_counts;
    (* cost/eff_mask/push_n/call_fn/fn_names are immutable: shared *)
  }

(* Fold the per-pc counts to per-block entry counts: the count of a block's
   first pc is the number of times execution entered it (jumps always
   target block starts; a fall-through enters at the start too).  This is
   exactly the [Wario_analysis.Costmodel.profile] shape. *)
let block_counts st : (string * int) list option =
  Option.map
    (fun counts ->
      List.map
        (fun (lbl, pc) -> (lbl, counts.(pc)))
        (Image.block_starts st.img))
    st.pc_counts

let halted st = st.halted
let cycles st = st.cycles
let pc st = st.pc
let current_function st = st.img.Image.func_of_pc.(st.pc)
let boots st = st.boots
let memory st = Bytes.copy st.mem

(* FNV-1a over every byte outside the checkpoint double buffer: the
   non-volatile state an idempotent run must reproduce exactly.  The buffers
   are excluded because their sequence numbers and saved register images
   legitimately depend on how often power failed. *)
let nv_digest st =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length st.mem - 1 do
    if not (in_ckpt_area i) then begin
      h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get st.mem i)));
      h := Int64.mul !h 0x100000001b3L
    end
  done;
  !h

let result st : result =
  {
    output = List.rev st.out_rev;
    exit_code = st.exit_code;
    cycles = st.cycles;
    instrs = st.instrs;
    checkpoints = st.counts;
    checkpoints_total =
      st.counts.c_entry + st.counts.c_exit + st.counts.c_middle
      + st.counts.c_backend;
    region_sizes = List.rev ((st.cycles - st.region_start) :: st.regions_rev);
    power_failures = st.failures;
    failure_sites = List.rev st.fail_sites_rev;
    boots = st.boots;
    violations = List.rev st.violations;
    irqs_taken = st.irqs_taken;
    call_counts =
      (let acc = ref [] in
       for i = Array.length st.fn_calls - 1 downto 0 do
         if st.fn_calls.(i) > 0 then
           acc := (st.fn_names.(i), st.fn_calls.(i)) :: !acc
       done;
       List.sort compare !acc);
    waste =
      {
        w_useful = st.cycles - st.acc_boot - st.acc_restore - st.acc_reexec;
        w_boot = st.acc_boot;
        w_restore = st.acc_restore;
        w_reexec = st.acc_reexec;
      };
  }

let output st = List.rev st.out_rev

type engine_stats = {
  es_blocks : int;  (** basic blocks compiled (0 if never block-dispatched) *)
  es_compile_ms : float;  (** wall time spent translating blocks *)
  es_dispatches : int;  (** fused closures executed *)
  es_fallback_steps : int;  (** checked single steps at block-engine edges *)
}

let engine_stats st =
  let blocks, ms =
    match st.bcache with
    | None -> (0, 0.)
    | Some c -> (Array.length c.bc_blocks, c.bc_compile_ms)
  in
  {
    es_blocks = blocks;
    es_compile_ms = ms;
    es_dispatches = st.n_dispatch;
    es_fallback_steps = st.n_fallback;
  }

let batch_size = 4096

let run ?fuel ?supply ?irq_period ?verify ?tracer ?(engine = Auto)
    (img : Image.t) : result =
  let st = create ?fuel ?supply ?irq_period ?verify ?tracer img in
  (match engine with
  | Reference ->
      while not st.halted do
        ignore (step st)
      done
  | Auto | Uop | Block ->
      (* [run_batch] falls back to the reference path per batch whenever the
         configuration makes the fast engines ineligible (verify/trace/irq),
         so every engine shares one loop *)
      while not st.halted do
        ignore (run_batch ~engine st batch_size)
      done);
  result st
