(* Cortex-M-class emulator for TM2 images (the paper's custom Unicorn-based
   emulator, §5.1.1, rebuilt as an interpreter).

   Modelled:
   - a three-stage-pipeline cycle model (taken branches pay a refill);
   - non-volatile main memory, volatile registers/flags;
   - the double-buffered checkpoint runtime: [Ckpt] saves the live
     registers (mask) + sp/pc/flags into the inactive buffer and commits by
     bumping its sequence number — a power failure mid-checkpoint leaves the
     previous checkpoint intact;
   - intermittent power ([Power]): every instruction (and the checkpoint
     commit, atomically) spends from the current on-period budget; running
     dry is a power failure: volatile state clears, and on the next
     on-period the boot sequence and checkpoint restore replay;
   - optional periodic interrupts: exception entry pushes eight words at sp
     exactly like the hardware, which is the WAR hazard the pop converter
     and epilog optimizer exist for; [Cpsid]/[Cpsie] defer delivery;
   - WAR-violation-absence verification (paper §5.1.1): per idempotent
     region, a write to a byte first accessed by a read is a violation —
     checked on *every* access including back-end stack traffic;
   - statistics: executed checkpoints by cause, idempotent region sizes in
     cycles, power failures, cycle/instruction totals. *)

module I = Wario_machine.Isa
module Tr = Wario_obs.Trace

exception Emu_error of string
exception No_forward_progress of string

let no_forward_progress_threshold = 2000
let boot_cycles = 400
let halt_magic = 0x7fffffffl

type violation = { v_pc : int; v_func : string; v_addr : int; v_instr : string }

type cause_counts = {
  mutable c_entry : int;
  mutable c_exit : int;
  mutable c_middle : int;
  mutable c_backend : int;
}

type waste = {
  w_useful : int;  (** first-execution work that survived to a commit/halt *)
  w_boot : int;  (** boot sequences (400 cycles each) *)
  w_restore : int;  (** checkpoint restore replays *)
  w_reexec : int;  (** work discarded by power failures, later redone *)
}

type result = {
  output : int32 list;
  exit_code : int32;
  cycles : int;  (** total active cycles, incl. boot/restore/re-execution *)
  instrs : int;
  checkpoints : cause_counts;
  checkpoints_total : int;
  region_sizes : int list;  (** cycles between region boundaries *)
  power_failures : int;
  boots : int;
  violations : violation list;
  irqs_taken : int;
  call_counts : (string * int) list;
      (** dynamic calls per callee (a profile for the Expander) *)
  waste : waste;
      (** decomposition of [cycles]: useful + boot + restore + re-executed *)
}

type state = {
  img : Image.t;
  supply_desc : string;  (** for diagnostics (No_forward_progress) *)
  mem : Bytes.t;
  regs : int32 array;
  mutable nf : bool;
  mutable zf : bool;
  mutable cf : bool;
  mutable vf : bool;
  mutable pc : int;
  mutable primask : bool;  (** true = interrupts disabled *)
  mutable pending_irq : bool;
  mutable halted : bool;
  mutable exit_code : int32;
  (* power *)
  power : Power.t;
  mutable budget : int option;
  mutable cycles : int;
  mutable instrs : int;
  fuel : int;
  (* interrupts *)
  irq_period : int;
  mutable next_irq_at : int;
  mutable irqs_taken : int;
  (* verification *)
  verify : bool;
  epoch : int array;
  kinds : Bytes.t;
  mutable cur_epoch : int;
  mutable violations : violation list;
  (* stats *)
  counts : cause_counts;
  mutable region_start : int;
  mutable regions_rev : int list;
  mutable failures : int;
  mutable boots : int;
  mutable boots_since_commit : int;
  mutable out_rev : int32 list;
  calls : (string, int) Hashtbl.t;
  (* observability *)
  tracer : Tr.sink;
  trace_on : bool;
  mutable trace_func : string;  (** last function attributed on the tracer *)
  mutable acc_boot : int;  (** cycles spent in boot sequences *)
  mutable acc_restore : int;  (** cycles spent replaying restores *)
  mutable acc_reexec : int;  (** work cycles discarded by power failures *)
  mutable work_at_commit : int;  (** work-cycle counter at the last commit *)
}

(* Work cycles: everything except boot and restore replay.  Work done since
   the last commit is provisionally useful; a power failure discards it
   (it will re-execute), which is the wasted-cycle accounting behind
   [result.waste]. *)
let work_total st = st.cycles - st.acc_boot - st.acc_restore

(* ------------------------------------------------------------------ *)
(* Memory with WAR tracking                                             *)
(* ------------------------------------------------------------------ *)

let in_ckpt_area a = a >= Image.ckpt_base && a < Image.ckpt_base + 0x100

let check_addr st a n =
  if a < 0x40 || a + n > Image.mem_size then
    raise
      (Emu_error
         (Printf.sprintf "memory fault at 0x%x (pc=%d, %s)" a st.pc
            (I.string_of_instr st.img.Image.code.(st.pc))))

let track_read st a n =
  if st.verify && not (in_ckpt_area a) then
    for i = a to a + n - 1 do
      if st.epoch.(i) <> st.cur_epoch then begin
        st.epoch.(i) <- st.cur_epoch;
        Bytes.unsafe_set st.kinds i 'r'
      end
    done

let track_write st a n =
  if st.verify && not (in_ckpt_area a) then
    for i = a to a + n - 1 do
      if st.epoch.(i) <> st.cur_epoch then begin
        st.epoch.(i) <- st.cur_epoch;
        Bytes.unsafe_set st.kinds i 'w'
      end
      else if Bytes.unsafe_get st.kinds i = 'r' then begin
        st.violations <-
          {
            v_pc = st.pc;
            v_func = st.img.Image.func_of_pc.(st.pc);
            v_addr = i;
            v_instr = I.string_of_instr st.img.Image.code.(st.pc);
          }
          :: st.violations;
        (* only report each byte once per region *)
        Bytes.unsafe_set st.kinds i 'w'
      end
    done

let region_boundary st =
  st.cur_epoch <- st.cur_epoch + 1;
  st.regions_rev <- (st.cycles - st.region_start) :: st.regions_rev;
  st.region_start <- st.cycles

let load st w a =
  let a = Int32.to_int a land 0xffffffff in
  let n = I.bytes_of_width w in
  check_addr st a n;
  track_read st a n;
  match w with
  | I.W8 -> Int32.of_int (Char.code (Bytes.get st.mem a))
  | I.S8 ->
      let v = Char.code (Bytes.get st.mem a) in
      Int32.of_int (if v >= 0x80 then v - 0x100 else v)
  | I.W16 -> Int32.of_int (Bytes.get_uint16_le st.mem a)
  | I.S16 -> Int32.of_int (Bytes.get_int16_le st.mem a)
  | I.W32 -> Bytes.get_int32_le st.mem a

let store st w a v =
  let a = Int32.to_int a land 0xffffffff in
  let n = I.bytes_of_width w in
  check_addr st a n;
  track_write st a n;
  match w with
  | I.W8 | I.S8 -> Bytes.set st.mem a (Char.chr (Int32.to_int v land 0xff))
  | I.W16 | I.S16 -> Bytes.set_uint16_le st.mem a (Int32.to_int v land 0xffff)
  | I.W32 -> Bytes.set_int32_le st.mem a v

(* raw accesses for the checkpoint runtime (never tracked) *)
let raw_store32 st a v = Bytes.set_int32_le st.mem a v
let raw_load32 st a = Bytes.get_int32_le st.mem a

(* ------------------------------------------------------------------ *)
(* ALU and flags                                                        *)
(* ------------------------------------------------------------------ *)

let eval_alu op (a : int32) (b : int32) : int32 =
  let sh = Int32.to_int b land 255 in
  let shift f = if sh >= 32 then 0l else f a sh in
  match op with
  | I.ADD -> Int32.add a b
  | I.SUB -> Int32.sub a b
  | I.RSB -> Int32.sub b a
  | I.MUL -> Int32.mul a b
  | I.SDIV ->
      (* Cortex-M semantics: division by zero yields 0 (DIV_0_TRP clear) *)
      if Int32.equal b 0l then 0l
      else if Int32.equal a Int32.min_int && Int32.equal b (-1l) then
        Int32.min_int
      else Int32.div a b
  | I.UDIV -> if Int32.equal b 0l then 0l else Int32.unsigned_div a b
  | I.AND -> Int32.logand a b
  | I.ORR -> Int32.logor a b
  | I.EOR -> Int32.logxor a b
  | I.LSL -> shift Int32.shift_left
  | I.LSR -> shift Int32.shift_right_logical
  | I.ASR -> if sh >= 32 then Int32.shift_right a 31 else Int32.shift_right a sh

let set_flags st (a : int32) (b : int32) =
  let d = Int32.sub a b in
  st.nf <- Int32.compare d 0l < 0;
  st.zf <- Int32.equal d 0l;
  st.cf <- Int32.unsigned_compare a b >= 0;
  st.vf <-
    (Int32.compare a 0l < 0 && Int32.compare b 0l >= 0 && Int32.compare d 0l >= 0)
    || (Int32.compare a 0l >= 0 && Int32.compare b 0l < 0 && Int32.compare d 0l < 0)

let cond_holds st = function
  | I.EQ -> st.zf
  | I.NE -> not st.zf
  | I.LT -> st.nf <> st.vf
  | I.LE -> st.zf || st.nf <> st.vf
  | I.GT -> (not st.zf) && st.nf = st.vf
  | I.GE -> st.nf = st.vf
  | I.LO -> not st.cf
  | I.LS -> (not st.cf) || st.zf
  | I.HI -> st.cf && not st.zf
  | I.HS -> st.cf
  | I.AL -> true

let pack_flags st =
  (if st.nf then 1 else 0)
  lor (if st.zf then 2 else 0)
  lor (if st.cf then 4 else 0)
  lor if st.vf then 8 else 0

let unpack_flags st v =
  st.nf <- v land 1 <> 0;
  st.zf <- v land 2 <> 0;
  st.cf <- v land 4 <> 0;
  st.vf <- v land 8 <> 0

(* ------------------------------------------------------------------ *)
(* Checkpoint runtime (double buffered)                                 *)
(* ------------------------------------------------------------------ *)

let buffer_stride = 0x80
let buf_addr i = Image.ckpt_base + (i * buffer_stride)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let ckpt_cost mask = 12 + (2 * (popcount mask + 3)) (* + sp, pc, flags *)
let restore_cost mask = 8 + (2 * (popcount mask + 3))

let active_buffer st =
  let s0 = raw_load32 st (buf_addr 0) and s1 = raw_load32 st (buf_addr 1) in
  if Int32.equal s0 0l && Int32.equal s1 0l then None
  else if Int32.unsigned_compare s0 s1 >= 0 then Some 0
  else Some 1

let obs_cause : I.ckpt_cause -> Tr.cause = function
  | I.Function_entry -> Tr.Entry
  | I.Function_exit -> Tr.Exit
  | I.Middle_end_war -> Tr.Middle
  | I.Back_end_war -> Tr.Backend

(* Bytes a commit writes into its buffer: seq, mask, pc, sp, flags + the
   masked registers. *)
let ckpt_bytes mask = 4 * (popcount mask + 5)

let commit_checkpoint st ~(cause : Tr.cause) mask resume_pc =
  let target =
    match active_buffer st with Some 0 -> 1 | Some _ -> 0 | None -> 0
  in
  let base = buf_addr target in
  raw_store32 st (base + 4) (Int32.of_int mask);
  raw_store32 st (base + 8) (Int32.of_int resume_pc);
  raw_store32 st (base + 12) st.regs.(I.sp);
  raw_store32 st (base + 16) (Int32.of_int (pack_flags st));
  for r = 0 to 14 do
    if mask land (1 lsl r) <> 0 then
      raw_store32 st (base + 20 + (4 * r)) st.regs.(r)
  done;
  (* commit: bump the sequence number last *)
  let seq =
    Int32.add 1l
      (match active_buffer st with
      | None -> 0l
      | Some i -> raw_load32 st (buf_addr i))
  in
  raw_store32 st base seq;
  st.boots_since_commit <- 0;
  st.work_at_commit <- work_total st;
  if st.trace_on then
    Tr.emit st.tracer st.cycles
      (Tr.Checkpoint
         {
           cause;
           pc = st.pc;
           func = st.img.Image.func_of_pc.(st.pc);
           mask;
           bytes = ckpt_bytes mask;
           cost = ckpt_cost mask;
         });
  region_boundary st

(* Returns the replay cost in cycles, or [None] when there is no committed
   checkpoint to restore (cold start). *)
let restore_checkpoint st : int option =
  match active_buffer st with
  | None -> None
  | Some i ->
      let base = buf_addr i in
      let mask = Int32.to_int (raw_load32 st (base + 4)) in
      st.pc <- Int32.to_int (raw_load32 st (base + 8));
      st.regs.(I.sp) <- raw_load32 st (base + 12);
      unpack_flags st (Int32.to_int (raw_load32 st (base + 16)));
      for r = 0 to 14 do
        if r <> I.sp then
          st.regs.(r) <-
            (if mask land (1 lsl r) <> 0 then raw_load32 st (base + 20 + (4 * r))
             else 0l)
      done;
      let cost = restore_cost mask in
      st.cycles <- st.cycles + cost;
      Some cost

(* ------------------------------------------------------------------ *)
(* Power                                                                *)
(* ------------------------------------------------------------------ *)

exception Power_failed

(* Spend [c] cycles atomically; raises [Power_failed] if the budget cannot
   cover them (the action does not take place). *)
let spend st c =
  (match st.budget with
  | Some b when b < c ->
      st.budget <- Some 0;
      raise Power_failed
  | Some b -> st.budget <- Some (b - c)
  | None -> ());
  st.cycles <- st.cycles + c;
  if st.cycles > st.fuel then
    raise (Emu_error "cycle budget exhausted (no termination?)")

let cold_start st =
  st.pc <- st.img.Image.entry;
  Array.fill st.regs 0 16 0l;
  st.regs.(I.sp) <- Int32.of_int Image.stack_top;
  st.regs.(I.lr) <- halt_magic;
  st.nf <- false;
  st.zf <- false;
  st.cf <- false;
  st.vf <- false

let power_on st =
  st.boots <- st.boots + 1;
  st.boots_since_commit <- st.boots_since_commit + 1;
  if st.boots_since_commit > no_forward_progress_threshold then
    raise (No_forward_progress st.supply_desc);
  st.budget <- Power.next_budget st.power;
  st.primask <- false;
  st.pending_irq <- false;
  (* boot + restore; failing inside these just burns the period *)
  spend st boot_cycles;
  st.acc_boot <- st.acc_boot + boot_cycles;
  let restored =
    match restore_checkpoint st with
    | Some cost ->
        st.acc_restore <- st.acc_restore + cost;
        Some cost
    | None ->
        cold_start st;
        None
  in
  if Sys.getenv_opt "WARIO_DEBUG_EMU" <> None && (st.boots < 50 || st.boots mod 10000 = 0) then
    Printf.eprintf "boot %d: pc=%d (%s) cycles=%d\n%!" st.boots st.pc
      st.img.Image.func_of_pc.(st.pc) st.cycles;
  if st.trace_on then begin
    let func = st.img.Image.func_of_pc.(st.pc) in
    Tr.emit st.tracer st.cycles
      (Tr.Boot
         {
           seq = st.boots;
           restored = restored <> None;
           boot_cost = boot_cycles;
           restore_cost = Option.value restored ~default:0;
           func;
         });
    st.trace_func <- func
  end;
  st.cur_epoch <- st.cur_epoch + 1;
  st.region_start <- st.cycles;
  (* the interrupt timer starts once the application code resumes *)
  st.next_irq_at <- st.cycles + st.irq_period

let power_failure st =
  st.failures <- st.failures + 1;
  (* work since the last commit is discarded: it will be re-executed *)
  let lost = work_total st - st.work_at_commit in
  st.acc_reexec <- st.acc_reexec + lost;
  st.work_at_commit <- work_total st;
  if st.trace_on then
    Tr.emit st.tracer st.cycles (Tr.Power_failure { lost_cycles = lost });
  Array.fill st.regs 0 16 0l

(* ------------------------------------------------------------------ *)
(* Interrupts                                                           *)
(* ------------------------------------------------------------------ *)

(* Hardware exception entry/exit: push {r0-r3, r12, lr, pc, xpsr} at sp,
   run an empty handler, pop, return.  The pushes are real tracked writes:
   this is precisely the ISR WAR hazard of paper §3.1.3. *)
let take_irq st =
  spend st 24;
  let sp = Int32.to_int st.regs.(I.sp) in
  let frame = sp - 32 in
  let values =
    [|
      st.regs.(0); st.regs.(1); st.regs.(2); st.regs.(3); st.regs.(12);
      st.regs.(I.lr); Int32.of_int st.pc; Int32.of_int (pack_flags st);
    |]
  in
  check_addr st frame 32;
  Array.iteri
    (fun i v ->
      track_write st (frame + (4 * i)) 4;
      raw_store32 st (frame + (4 * i)) v)
    values;
  (* empty handler; exception return reads the frame back *)
  for i = 0 to 7 do
    track_read st (frame + (4 * i)) 4;
    ignore (raw_load32 st (frame + (4 * i)))
  done;
  st.irqs_taken <- st.irqs_taken + 1;
  if st.trace_on then
    Tr.emit st.tracer st.cycles
      (Tr.Irq { pc = st.pc; func = st.img.Image.func_of_pc.(st.pc) })

let maybe_irq st =
  if st.irq_period > 0 && st.cycles >= st.next_irq_at then begin
    st.next_irq_at <- st.cycles + st.irq_period;
    if st.primask then st.pending_irq <- true else take_irq st
  end
  else if st.pending_irq && not st.primask then begin
    st.pending_irq <- false;
    take_irq st
  end

(* ------------------------------------------------------------------ *)
(* Instruction execution                                                *)
(* ------------------------------------------------------------------ *)

let op2 st = function I.R r -> st.regs.(r) | I.I i -> i

let exec_instr st (ins : I.instr) =
  let next = st.pc + 1 in
  match ins with
  | I.Alu (op, rd, rn, o) ->
      spend st (match op with I.SDIV | I.UDIV -> 6 | _ -> 1);
      st.regs.(rd) <- eval_alu op st.regs.(rn) (op2 st o);
      st.pc <- next
  | I.Mov (rd, o) ->
      spend st 1;
      st.regs.(rd) <- op2 st o;
      st.pc <- next
  | I.Movw32 (rd, v) ->
      spend st 2;
      st.regs.(rd) <- v;
      st.pc <- next
  | I.Movc (c, rd, o) ->
      spend st 1;
      if cond_holds st c then st.regs.(rd) <- op2 st o;
      st.pc <- next
  | I.Cmp (rn, o) ->
      spend st 1;
      set_flags st st.regs.(rn) (op2 st o);
      st.pc <- next
  | I.Ldr (w, rd, rn, off) ->
      spend st 2;
      st.regs.(rd) <- load st w (Int32.add st.regs.(rn) off);
      st.pc <- next
  | I.LdrR (w, rd, rn, rm) ->
      spend st 2;
      st.regs.(rd) <- load st w (Int32.add st.regs.(rn) st.regs.(rm));
      st.pc <- next
  | I.Str (w, rd, rn, off) ->
      spend st 2;
      store st w (Int32.add st.regs.(rn) off) st.regs.(rd);
      st.pc <- next
  | I.StrR (w, rd, rn, rm) ->
      spend st 2;
      store st w (Int32.add st.regs.(rn) st.regs.(rm)) st.regs.(rd);
      st.pc <- next
  | I.AdrData (rd, _, _) ->
      spend st 2;
      st.regs.(rd) <- st.img.Image.adr.(st.pc);
      st.pc <- next
  | I.Push rs ->
      spend st (1 + List.length rs);
      let n = List.length rs in
      let sp = Int32.to_int st.regs.(I.sp) - (4 * n) in
      check_addr st sp (4 * n);
      List.iteri
        (fun i r ->
          track_write st (sp + (4 * i)) 4;
          raw_store32 st (sp + (4 * i)) st.regs.(r))
        rs;
      st.regs.(I.sp) <- Int32.of_int sp;
      st.pc <- next
  | I.B _ ->
      spend st 3;
      st.pc <- st.img.Image.target.(st.pc)
  | I.Bc (c, _) ->
      if cond_holds st c then begin
        spend st 3;
        st.pc <- st.img.Image.target.(st.pc)
      end
      else begin
        spend st 1;
        st.pc <- next
      end
  | I.Bl _ ->
      spend st 4;
      let callee = st.img.Image.func_of_pc.(st.img.Image.target.(st.pc)) in
      Hashtbl.replace st.calls callee
        (1 + try Hashtbl.find st.calls callee with Not_found -> 0);
      st.regs.(I.lr) <- Int32.of_int next;
      st.pc <- st.img.Image.target.(st.pc)
  | I.Bx_lr ->
      spend st 3;
      if Int32.equal st.regs.(I.lr) halt_magic then begin
        st.halted <- true;
        st.exit_code <- st.regs.(0);
        if st.trace_on then
          Tr.emit st.tracer st.cycles (Tr.Halt { exit_code = st.exit_code })
      end
      else st.pc <- Int32.to_int st.regs.(I.lr)
  | I.Ckpt (cause, mask) ->
      let mask = if Sys.getenv_opt "WARIO_SAVE_ALL" <> None then 0x7fff else mask in
      spend st (ckpt_cost mask);
      commit_checkpoint st ~cause:(obs_cause cause) mask next;
      (match cause with
      | I.Function_entry -> st.counts.c_entry <- st.counts.c_entry + 1
      | I.Function_exit -> st.counts.c_exit <- st.counts.c_exit + 1
      | I.Middle_end_war -> st.counts.c_middle <- st.counts.c_middle + 1
      | I.Back_end_war -> st.counts.c_backend <- st.counts.c_backend + 1);
      st.pc <- next
  | I.Cpsid ->
      spend st 1;
      st.primask <- true;
      st.pc <- next
  | I.Cpsie ->
      spend st 1;
      st.primask <- false;
      st.pc <- next
  | I.Svc 0 ->
      (* console output, made atomic with an implicit checkpoint (the
         standard treatment of peripheral output; not counted in the cause
         statistics) *)
      let mask = 0x5fff in
      spend st (2 + ckpt_cost mask);
      st.out_rev <- st.regs.(0) :: st.out_rev;
      commit_checkpoint st ~cause:Tr.Console mask next;
      st.pc <- next
  | I.Svc _ ->
      spend st 1;
      st.halted <- true;
      st.exit_code <- st.regs.(0);
      if st.trace_on then
        Tr.emit st.tracer st.cycles (Tr.Halt { exit_code = st.exit_code })
  | I.FrameAddr _ | I.SpillLd _ | I.SpillSt _ ->
      raise (Emu_error ("pseudo instruction in linked code: " ^ I.string_of_instr ins))

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let init_memory st =
  List.iter
    (fun (a, n, v) ->
      match n with
      | 1 -> Bytes.set st.mem a (Char.chr (Int32.to_int v land 0xff))
      | 2 -> Bytes.set_uint16_le st.mem a (Int32.to_int v land 0xffff)
      | _ -> Bytes.set_int32_le st.mem a v)
    st.img.Image.init_image

type t = state

let create ?(fuel = 2_000_000_000) ?(supply = Power.Continuous)
    ?(irq_period = 0) ?(verify = true) ?(tracer = Tr.null) (img : Image.t) : t
    =
  let st =
    {
      img;
      supply_desc = Power.describe supply;
      mem = Bytes.make Image.mem_size '\000';
      regs = Array.make 16 0l;
      nf = false;
      zf = false;
      cf = false;
      vf = false;
      pc = img.Image.entry;
      primask = false;
      pending_irq = false;
      halted = false;
      exit_code = 0l;
      power = Power.create supply;
      budget = None;
      cycles = 0;
      instrs = 0;
      fuel;
      irq_period;
      next_irq_at = irq_period;
      irqs_taken = 0;
      verify;
      epoch = Array.make Image.mem_size (-1);
      kinds = Bytes.make Image.mem_size ' ';
      cur_epoch = 0;
      violations = [];
      counts = { c_entry = 0; c_exit = 0; c_middle = 0; c_backend = 0 };
      region_start = 0;
      regions_rev = [];
      failures = 0;
      boots = 0;
      boots_since_commit = 0;
      out_rev = [];
      calls = Hashtbl.create 16;
      tracer;
      trace_on = Tr.enabled tracer;
      trace_func = "";
      acc_boot = 0;
      acc_restore = 0;
      acc_reexec = 0;
      work_at_commit = 0;
    }
  in
  init_memory st;
  (* first power-on; failing inside boot/restore just burns the period *)
  let rec boot () =
    try power_on st
    with Power_failed ->
      power_failure st;
      boot ()
  in
  boot ();
  st

let rec reboot st =
  try power_on st
  with Power_failed ->
    power_failure st;
    reboot st

type step = Stepped | Rebooted | Halted

let step st : step =
  if st.halted then Halted
  else
    try
      maybe_irq st;
      exec_instr st st.img.Image.code.(st.pc);
      st.instrs <- st.instrs + 1;
      if st.halted then Halted
      else begin
        if st.trace_on then begin
          let f = st.img.Image.func_of_pc.(st.pc) in
          if f != st.trace_func && f <> st.trace_func then begin
            Tr.emit st.tracer st.cycles
              (Tr.Func_transition { from_func = st.trace_func; to_func = f });
            st.trace_func <- f
          end
        end;
        Stepped
      end
    with Power_failed ->
      power_failure st;
      reboot st;
      Rebooted

let cut_power st =
  if not st.halted then begin
    st.budget <- Some 0;
    power_failure st;
    reboot st
  end

let clone st =
  {
    st with
    mem = Bytes.copy st.mem;
    regs = Array.copy st.regs;
    power = Power.copy st.power;
    epoch = Array.copy st.epoch;
    kinds = Bytes.copy st.kinds;
    counts =
      {
        c_entry = st.counts.c_entry;
        c_exit = st.counts.c_exit;
        c_middle = st.counts.c_middle;
        c_backend = st.counts.c_backend;
      };
    calls = Hashtbl.copy st.calls;
  }

let halted st = st.halted
let cycles st = st.cycles
let pc st = st.pc
let current_function st = st.img.Image.func_of_pc.(st.pc)
let boots st = st.boots
let memory st = Bytes.copy st.mem

(* FNV-1a over every byte outside the checkpoint double buffer: the
   non-volatile state an idempotent run must reproduce exactly.  The buffers
   are excluded because their sequence numbers and saved register images
   legitimately depend on how often power failed. *)
let nv_digest st =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length st.mem - 1 do
    if not (in_ckpt_area i) then begin
      h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get st.mem i)));
      h := Int64.mul !h 0x100000001b3L
    end
  done;
  !h

let result st : result =
  {
    output = List.rev st.out_rev;
    exit_code = st.exit_code;
    cycles = st.cycles;
    instrs = st.instrs;
    checkpoints = st.counts;
    checkpoints_total =
      st.counts.c_entry + st.counts.c_exit + st.counts.c_middle
      + st.counts.c_backend;
    region_sizes = List.rev ((st.cycles - st.region_start) :: st.regions_rev);
    power_failures = st.failures;
    boots = st.boots;
    violations = List.rev st.violations;
    irqs_taken = st.irqs_taken;
    call_counts =
      List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) st.calls []);
    waste =
      {
        w_useful = st.cycles - st.acc_boot - st.acc_restore - st.acc_reexec;
        w_boot = st.acc_boot;
        w_restore = st.acc_restore;
        w_reexec = st.acc_reexec;
      };
  }

let run ?fuel ?supply ?irq_period ?verify ?tracer (img : Image.t) : result =
  let st = create ?fuel ?supply ?irq_period ?verify ?tracer img in
  while not st.halted do
    ignore (step st)
  done;
  result st
