(* Power-supply models for intermittent execution (paper §5.1.4).

   The emulator only needs the *on-durations*: during an off period nothing
   executes and volatile state is lost, so off-time never appears in cycle
   accounting (only in the count of power failures).

   [Schedule] is the adversarial injection mode used by the verification
   harness (lib/verify): a finite sequence of on-durations — i.e. chosen
   cut points, each measured in active cycles from the corresponding
   power-on — after which power stays on forever, so every scheduled run
   terminates. *)

type supply =
  | Continuous
  | Periodic of int  (** fixed on-period, in clock cycles *)
  | Trace of int array  (** sequence of on-durations, repeated cyclically *)
  | Trace_once of int array
      (** sequence of on-durations played exactly once; once exhausted the
          harvester yields no further energy, so the device can never boot
          again (the emulator raises [No_forward_progress]).  The
          fail-when-short counterpart of the wrapping [Trace]. *)
  | Schedule of int array
      (** finite sequence of on-durations (injected cut points); continuous
          once exhausted *)

type t = { supply : supply; mutable index : int }

let create supply =
  (match supply with
  | Continuous -> ()
  | Periodic n ->
      if n <= 0 then
        invalid_arg
          (Printf.sprintf "Power.create: non-positive on-period %d" n)
  | Trace arr | Trace_once arr ->
      if Array.length arr = 0 then invalid_arg "Power.create: empty trace";
      Array.iter
        (fun d ->
          if d <= 0 then
            invalid_arg
              (Printf.sprintf "Power.create: non-positive trace on-duration %d"
                 d))
        arr
  | Schedule arr ->
      Array.iter
        (fun d ->
          if d <= 0 then
            invalid_arg
              (Printf.sprintf
                 "Power.create: non-positive scheduled on-duration %d" d))
        arr);
  { supply; index = 0 }

let copy t = { t with index = t.index }

(** Cycles of energy available in the next on-period; [None] = unlimited. *)
let next_budget t : int option =
  match t.supply with
  | Continuous -> None
  | Periodic n -> Some n
  | Trace arr ->
      let v = arr.(t.index mod Array.length arr) in
      t.index <- t.index + 1;
      Some v
  | Trace_once arr ->
      if t.index >= Array.length arr then
        (* harvester depleted: no period ever again.  A zero budget cannot
           even cover the boot sequence, so every subsequent power-on is
           fruitless and the emulator's forward-progress watchdog trips. *)
        Some 0
      else begin
        let v = arr.(t.index) in
        t.index <- t.index + 1;
        Some v
      end
  | Schedule arr ->
      if t.index >= Array.length arr then None
      else begin
        let v = arr.(t.index) in
        t.index <- t.index + 1;
        Some v
      end

let is_continuous t = t.supply = Continuous

let describe = function
  | Continuous -> "continuous"
  | Periodic n -> Printf.sprintf "periodic(%d)" n
  | Trace arr ->
      let sum = Array.fold_left ( + ) 0 arr in
      Printf.sprintf "trace(%d periods, mean %d)" (Array.length arr)
        (sum / max 1 (Array.length arr))
  | Trace_once arr ->
      let sum = Array.fold_left ( + ) 0 arr in
      Printf.sprintf "trace-once(%d periods, mean %d)" (Array.length arr)
        (sum / max 1 (Array.length arr))
  | Schedule arr ->
      let shown = Array.to_list (Array.sub arr 0 (min 8 (Array.length arr))) in
      Printf.sprintf "schedule(%d cuts: %s%s)" (Array.length arr)
        (String.concat "," (List.map string_of_int shown))
        (if Array.length arr > 8 then ",..." else "")
