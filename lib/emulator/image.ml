(* ELF-lite linking: flatten a machine program into an executable image.

   Code lives in its own (flash) space addressed by instruction index; data
   is laid out in the byte-addressable non-volatile main memory:

       0x00000 .. 0x0003f   reserved (catches null dereferences)
       0x00040 .. 0x0013f   checkpoint double buffer (see Emulator)
       0x00200 ..           globals (.data/.rodata)
       ...                  heapless gap
       mem_size - 8         initial stack pointer (descending)

   Branch targets and data symbols are resolved at link time into side
   arrays indexed by pc, so the emulator never does string lookups. *)

module I = Wario_machine.Isa
module Util = Wario_support.Util

exception Link_error of string

let mem_size = 1 lsl 20 (* 1 MiB NVM *)
let ckpt_base = 0x40
let globals_base = 0x200
let stack_top = mem_size - 8

type t = {
  code : I.instr array;
  target : int array;  (** resolved branch/call target per pc; -1 if none *)
  adr : int32 array;  (** resolved AdrData value per pc; 0 if none *)
  entry : int;  (** pc of [main] *)
  symbols : (string * int) list;  (** data symbol -> address *)
  func_of_pc : string array;  (** enclosing function name per pc *)
  label_of_pc : string array;  (** enclosing machine block label per pc *)
  init_image : (int * int * int32) list;  (** (addr, bytes, value) *)
  text_bytes : int;
  data_bytes : int;
  frame_meta : (string * I.frame_meta) list;
      (** per-function frame layout recorded by frame lowering, carried
          through the link for the static certifier *)
  symbol_sizes : (string * int) list;  (** data symbol -> object size *)
}

let link (p : I.mprog) : t =
  (* lay out data *)
  let next = ref globals_base in
  let symbols =
    List.map
      (fun (d : I.data) ->
        let a = Util.align_up !next (max 1 d.dalign) in
        next := a + d.dsize;
        (d.dname, a))
      p.mdata
  in
  let data_bytes = !next - globals_base in
  if !next >= stack_top - 65536 then raise (Link_error "data section too large");
  let init_image =
    List.concat_map
      (fun (d : I.data) ->
        let base = List.assoc d.dname symbols in
        List.map (fun (off, w, v) -> (base + off, w, v)) d.dinit)
      p.mdata
  in
  (* flatten code *)
  let instrs = ref [] and labels = Hashtbl.create 256 in
  let counter = ref 0 in
  List.iter
    (fun (f : I.mfunc) ->
      List.iter
        (fun (b : I.mblock) ->
          if Hashtbl.mem labels b.I.mlabel then
            raise (Link_error ("duplicate label " ^ b.I.mlabel));
          Hashtbl.replace labels b.I.mlabel !counter;
          List.iter
            (fun ins ->
              instrs := (ins, f.I.mname, b.I.mlabel) :: !instrs;
              incr counter)
            b.I.mcode)
        f.I.mblocks)
    p.mfuncs;
  let triples = Array.of_list (List.rev !instrs) in
  let code = Array.map (fun (i, _, _) -> i) triples in
  let func_of_pc = Array.map (fun (_, f, _) -> f) triples in
  let label_of_pc = Array.map (fun (_, _, l) -> l) triples in
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> raise (Link_error ("undefined label " ^ l))
  in
  let target =
    Array.map
      (function
        | I.B l | I.Bc (_, l) | I.Bl l -> resolve l
        | _ -> -1)
      code
  in
  let adr =
    Array.map
      (function
        | I.AdrData (_, s, off) -> (
            match List.assoc_opt s symbols with
            | Some a -> Int32.add (Int32.of_int a) off
            | None -> raise (Link_error ("undefined data symbol " ^ s)))
        | _ -> 0l)
      code
  in
  let entry =
    match Hashtbl.find_opt labels "main" with
    | Some i -> i
    | None -> raise (Link_error "no main function")
  in
  {
    code;
    target;
    adr;
    entry;
    symbols;
    func_of_pc;
    label_of_pc;
    init_image;
    text_bytes =
      Array.fold_left (fun a i -> a + Wario_machine.Encode.size_bytes i) 0 code;
    data_bytes;
    frame_meta =
      List.filter_map
        (fun (f : I.mfunc) ->
          match f.I.mframe with Some m -> Some (f.I.mname, m) | None -> None)
        p.mfuncs;
    symbol_sizes = List.map (fun (d : I.data) -> (d.dname, d.dsize)) p.mdata;
  }

(** Address of a data symbol (for tests and examples). *)
let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some a -> a
  | None -> raise (Link_error ("unknown symbol " ^ name))

(* ------------------------------------------------------------------ *)
(* Machine-CFG recovery (for the static certifier)                      *)
(* ------------------------------------------------------------------ *)

let instr_count t = Array.length t.code

(** Intra-procedural control successors of [pc]: fall-through and resolved
    branch targets.  [Bl] falls through to the return continuation (the
    call edge is [target.(pc)], the return edges come from [return_sites]);
    [Bx_lr] and halting [Svc]s have none. *)
let succs t pc : int list =
  let n = Array.length t.code in
  let next = if pc + 1 < n then [ pc + 1 ] else [] in
  match t.code.(pc) with
  | I.B _ -> [ t.target.(pc) ]
  | I.Bc _ -> t.target.(pc) :: next
  | I.Bl _ -> next
  | I.Bx_lr -> []
  | I.Svc 0 -> next
  | I.Svc _ -> []
  | _ -> next

(** The pc of the first instruction of [fname]. *)
let function_entry t fname : int =
  let rec go i =
    if i >= Array.length t.func_of_pc then
      raise (Link_error ("no function " ^ fname))
    else if t.func_of_pc.(i) = fname then i
    else go (i + 1)
  in
  go 0

(** Return continuations of [fname]: the pc after every [Bl] that targets
    it.  [main] has none (its return halts the machine). *)
let return_sites t fname : int list =
  let acc = ref [] in
  Array.iteri
    (fun pc ins ->
      match ins with
      | I.Bl _
        when t.func_of_pc.(t.target.(pc)) = fname
             && pc + 1 < Array.length t.code ->
          acc := (pc + 1) :: !acc
      | _ -> ())
    t.code;
  List.rev !acc

let frame_meta_of t fname : I.frame_meta option =
  List.assoc_opt fname t.frame_meta

(** Machine block labels in layout order with their start pcs (labels of
    empty blocks own no pc and are omitted).  This is the key set of the
    profiles the cost model consumes: a pilot run's per-pc execution counts
    fold to per-block entry counts by sampling each start pc. *)
let block_starts t : (string * int) list =
  let acc = ref [] in
  Array.iteri
    (fun pc l ->
      if pc = 0 || t.label_of_pc.(pc - 1) <> l then acc := (l, pc) :: !acc)
    t.label_of_pc;
  List.rev !acc
