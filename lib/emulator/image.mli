(** ELF-lite linking: flatten a machine program into an executable image
    with resolved branch targets and data-symbol addresses.

    Memory map: a reserved null page, the checkpoint double buffer at
    [ckpt_base], globals from [globals_base], and a descending stack from
    [stack_top]. *)

exception Link_error of string

val mem_size : int
val ckpt_base : int
val globals_base : int
val stack_top : int

type t = {
  code : Wario_machine.Isa.instr array;
  target : int array;  (** resolved branch/call target per pc; -1 if none *)
  adr : int32 array;  (** resolved AdrData value per pc *)
  entry : int;  (** pc of [main] *)
  symbols : (string * int) list;
  func_of_pc : string array;
  label_of_pc : string array;  (** enclosing machine block label per pc *)
  init_image : (int * int * int32) list;  (** (addr, bytes, value) *)
  text_bytes : int;
  data_bytes : int;
  frame_meta : (string * Wario_machine.Isa.frame_meta) list;
      (** per-function frame layout recorded by frame lowering, carried
          through the link for the static certifier *)
  symbol_sizes : (string * int) list;  (** data symbol -> object size *)
}

val link : Wario_machine.Isa.mprog -> t

val symbol : t -> string -> int
(** Address of a data symbol (tests and examples). *)

(** {2 Machine-CFG recovery}

    The certifier (lib/certify) reconstructs the machine-level control-flow
    graph of the linked image from these accessors. *)

val instr_count : t -> int

val succs : t -> int -> int list
(** Intra-procedural control successors of a pc: fall-through and resolved
    branch targets.  [Bl] falls through to its return continuation (the
    call edge is [target.(pc)]); [Bx_lr] and halting [Svc]s have none. *)

val function_entry : t -> string -> int
(** Pc of the first instruction of a function. *)

val return_sites : t -> string -> int list
(** Return continuations of a function: the pc after every [Bl] targeting
    it.  Empty for [main] (its return halts the machine). *)

val frame_meta_of : t -> string -> Wario_machine.Isa.frame_meta option

val block_starts : t -> (string * int) list
(** Machine block labels in layout order with their start pcs (labels of
    empty blocks own no pc and are omitted) — the key set of the profiles
    {!Wario_analysis.Costmodel} consumes. *)
