(* Small MiniC programs used by the test suite and the examples: each is
   fast enough to run across every software environment (and under
   crash-everywhere power sweeps) while still exercising a distinct part of
   the language and of the WAR-protection machinery. *)

type t = { name : string; source : string; expected : int32 list }

let arith = {
  name = "arith";
  expected = [ -2l; 2l; 2l; 2147483647l; -2147483648l; 1l; 0l; 3l; -56l; 200l ];
  source = {|
int main(void) {
  print_int(5 / -2);                 /* C truncation: -2 */
  print_int(-5 / -2);
  print_int(5 % -3 - 0);             /* truncated: 2 */
  print_int(2147483647);
  print_int(-2147483647 - 1);
  print_int((unsigned)0xFFFFFFFFu > 0u);
  print_int(-1 > 1);                 /* signed: 0 */
  print_int(13 >> 2);
  print_int((char)200);              /* sign extension: -56 */
  print_int((int)(unsigned char)200);
  return 0;
}
|};
}

let rmw_loop = {
  name = "rmw_loop";
  expected = [ 4950l; 1275l ];
  source = {|
unsigned acc[100];
int main(void) {
  int i; int s = 0; int t = 0;
  for (i = 0; i < 100; i++) acc[i] = (unsigned)i;
  for (i = 0; i < 100; i++) acc[i] = acc[i] + 1;   /* WAR per iteration */
  for (i = 0; i < 100; i++) s = s + (int)acc[i] - 1;
  for (i = 0; i < 50; i++) t = t + (int)acc[i];
  print_int(s);
  print_int(t);
  return 0;
}
|};
}

let fib = {
  name = "fib";
  expected = [ 6765l ];
  source = {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main(void) { print_int(fib(20)); return 0; }
|};
}

let struct_list = {
  name = "struct_list";
  expected = [ 190l; 19l ];
  source = {|
struct node { struct node *next; int v; };
struct node pool[20];
int main(void) {
  int i;
  struct node *head = (struct node *)0;
  for (i = 0; i < 20; i++) { pool[i].v = i; pool[i].next = head; head = &pool[i]; }
  int sum = 0; int len = -1;
  struct node *p = head;
  while (p != (struct node *)0) { sum = sum + p->v; len = len + 1; p = p->next; }
  print_int(sum);
  print_int(len + 1 - 1);
  return 0;
}
|};
}

let sort_prog = {
  name = "sort";
  expected = [ 0l; 99l; 4950l ];
  source = {|
int a[100];
unsigned seed = 7;
unsigned rnd(void) { seed = seed * 1103515245u + 12345u; return seed >> 16; }
int main(void) {
  int i, j;
  for (i = 0; i < 100; i++) a[i] = i;
  /* shuffle */
  for (i = 99; i > 0; i--) {
    j = (int)(rnd() % (unsigned)(i + 1));
    int t = a[i]; a[i] = a[j]; a[j] = t;
  }
  /* insertion sort: dense WARs on the array */
  for (i = 1; i < 100; i++) {
    int key = a[i];
    j = i - 1;
    while (j >= 0 && a[j] > key) { a[j + 1] = a[j]; j--; }
    a[j + 1] = key;
  }
  int sum = 0;
  for (i = 0; i < 100; i++) sum = sum + a[i];
  print_int(a[0]);
  print_int(a[99]);
  print_int(sum);
  return 0;
}
|};
}

let string_rev = {
  name = "byte_ops";
  expected = [ 255l; 4l ];
  source = {|
unsigned char buf[16];
short counts[4];
int main(void) {
  int i;
  for (i = 0; i < 16; i++) buf[i] = (unsigned char)(i * 17);
  /* reverse in place: paired WARs */
  for (i = 0; i < 8; i++) {
    unsigned char t = buf[i];
    buf[i] = buf[15 - i];
    buf[15 - i] = t;
  }
  for (i = 0; i < 4; i++) counts[i] = 0;
  for (i = 0; i < 16; i++) counts[buf[i] & 3]++;
  print_int((int)buf[0]);
  print_int((int)counts[1]);
  return 0;
}
|};
}

let sensor = {
  name = "sensor";
  expected = [ 32670l; 198l; 0l ];
  source = {|
/* A moving-average sensor filter: the shape of an intermittent sensing app. */
int ring[8];
int history[256];
int ring_pos = 0;
unsigned seed = 99;
int read_sensor(void) {
  seed = seed * 1103515245u + 12345u;
  return (int)((seed >> 20) & 0xFF);
}
int main(void) {
  int i, t;
  int n_alerts = 0;
  for (i = 0; i < 8; i++) ring[i] = 0;
  for (t = 0; t < 256; t++) {
    int sample = read_sensor();
    ring[ring_pos] = sample;
    ring_pos = (ring_pos + 1) & 7;
    int avg = 0;
    for (i = 0; i < 8; i++) avg = avg + ring[i];
    avg = avg / 8;
    history[t] = avg;
    if (avg > 250) n_alerts++;
  }
  int total = 0; int peak = 0;
  for (t = 0; t < 256; t++) {
    total = total + history[t];
    if (history[t] > peak) peak = history[t];
  }
  print_int(total);
  print_int(peak);
  print_int(n_alerts);
  return 0;
}
|};
}

let all = [ arith; rmw_loop; fib; struct_list; sort_prog; string_rev; sensor ]

(* The three fastest programs: what tier-1 property tests sweep. *)
let tiny = [ arith; rmw_loop; string_rev ]

let find name =
  match List.find_opt (fun m -> m.name = name) all with
  | Some m -> m
  | None -> invalid_arg ("Micro.find: unknown program " ^ name)
