(** Small MiniC programs used by the test suite and examples, each with its
    expected output (checked against the IR interpreter). *)

type t = { name : string; source : string; expected : int32 list }

val all : t list

val tiny : t list
(** The three fastest micro programs ([arith], [rmw_loop], [byte_ops]);
    used by tier-1 property tests that sweep every environment. *)

val find : string -> t
(** @raise Invalid_argument on an unknown name *)
