(* iclang: the WARio compilation driver (paper §4.6).

   Replaces `clang` for intermittently-powered targets: compiles MiniC
   sources through a selected software environment and can run the result on
   the emulator under a chosen power supply.

     iclang compile prog.mc -e wario --dump-asm
     iclang run prog.mc -e ratchet --power 50000 --stats
     iclang run --benchmark sha -e wario-expander --trace rf
     iclang trace -e wario -b crc --out t.json --metrics m.jsonl --profile
     iclang pgo -b dijkstra -e wario --stats
     iclang list-benchmarks
     iclang verify                          # fault-injection sweep
     iclang verify --repro '(repro (workload rmw_loop) (env wario) ...)'
     iclang dump-ir prog.mc -e wario *)

module P = Wario.Pipeline
module R = Wario.Run
module E = Wario_emulator
module W = Wario_workloads.Programs
module V = Wario_verify
module O = Wario_obs
module X = Wario_exec.Exec
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_source file benchmark =
  match (file, benchmark) with
  | Some f, None -> Ok (read_file f)
  | None, Some b -> (
      match List.find_opt (fun (x : W.benchmark) -> x.name = b) W.all with
      | Some x -> Ok x.source
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %s (see list-benchmarks)" b))
  | _ -> Error "provide exactly one of FILE or --benchmark"

(* --- common options --- *)

let env_conv =
  let parse s =
    match P.environment_of_name s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown environment %s (choose from: %s)" s
               (String.concat ", "
                  (List.map P.environment_name P.all_environments))))
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt (P.environment_name e))

let env_arg =
  Arg.(
    value
    & opt env_conv P.Wario
    & info [ "e"; "environment" ] ~docv:"ENV"
        ~doc:"Software environment (plain-c, ratchet, r-pdg, ..., wario).")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let benchmark_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "benchmark"; "b" ] ~docv:"NAME" ~doc:"Use a built-in benchmark.")

let unroll_arg =
  Arg.(
    value & opt int 8
    & info [ "unroll"; "N" ] ~docv:"N"
        ~doc:"Loop Write Clusterer unroll factor (paper default 8).")

let max_region_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-region" ] ~docv:"CYCLES"
        ~doc:
          "Bound idempotent regions to roughly CYCLES estimated cycles            (location-specific checkpoints, an extension of the paper's §6).")

let profile_guided_arg =
  Arg.(
    value & flag
    & info [ "profile-guided" ]
        ~doc:
          "Run once to collect a call-count profile, then recompile with the            profile-guided Expander (only meaningful with -e wario-expander).")

let no_opt_arg =
  Arg.(
    value & flag
    & info [ "O0"; "no-opt" ]
        ~doc:
          "Skip the generic -O3 substitute (mem2reg/inlining/folding) before            the WARio transformations.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel work (default and 0: auto — the            host's recommended domain count, which on a single-core host is            the sequential path; 1 = sequential).  Results and output            ordering are identical for every N.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Content-addressed compile cache (created if missing; bounded,            LRU-evicted).  Defaults to $(b,WARIO_CACHE_DIR) when that is set;            without either the compile is uncached.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ignore --cache-dir and WARIO_CACHE_DIR: always recompile.")

let cache_of ~cache_dir ~no_cache =
  if no_cache then Wario.Cache.disabled
  else
    match cache_dir with
    | Some dir -> Wario.Cache.create dir
    | None -> Wario.Cache.from_env ()

(* default and 0 = auto (host-sized); anything below 0 is a usage error *)
let resolve_jobs = function
  | None | Some 0 -> Ok (X.default_jobs ())
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "--jobs must be >= 0 (got %d; 0 = auto)" n)

let engine_arg =
  let engines =
    [
      ("auto", E.Emulator.Auto);
      ("reference", E.Emulator.Reference);
      ("uop", E.Emulator.Uop);
      ("block", E.Emulator.Block);
    ]
  in
  Arg.(
    value
    & opt (enum engines) E.Emulator.Auto
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Emulator engine: $(b,auto) (default — the block translator when            the run is eligible, the instrumented reference interpreter            otherwise), $(b,reference), $(b,uop) (the predecoded micro-op            loop), or $(b,block) (basic blocks fused into closures).  Every            engine produces byte-identical results; the selection only            changes throughput.")

let opts_of ?max_region ?profile ~no_opt unroll =
  {
    P.default_options with
    unroll_factor = unroll;
    max_region;
    expander_profile = profile;
    optimize = not no_opt;
  }

let placement_conv =
  Arg.enum [ ("greedy", `Greedy); ("cost", `Cost); ("inter", `Inter) ]

let placement_arg =
  Arg.(
    value
    & opt placement_conv `Cost
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:
          "Checkpoint placement policy: greedy (unweighted baseline), cost            (static cost model, the default) or inter (interprocedural            call-graph weights with cost-coupled expansion and            certifier-validated elision and motion).")

let apply_placement pl (opts : P.options) =
  let module T = Wario_transforms.Checkpoint_inserter in
  match pl with
  | `Greedy -> { opts with P.placement = T.Greedy }
  | `Cost -> opts
  | `Inter ->
      {
        opts with
        P.placement = T.Interprocedural;
        elide = true;
        motion = true;
      }

let supply_of power trace =
  match (power, trace) with
  | Some p, _ -> Ok (E.Power.Periodic p)
  | None, Some "rf" -> Ok (E.Power.Trace (E.Traces.rf_trace ()))
  | None, Some "solar" -> Ok (E.Power.Trace (E.Traces.solar_trace ()))
  | None, Some t -> Error ("unknown trace " ^ t ^ " (rf|solar)")
  | None, None -> Ok E.Power.Continuous

(* --- span output (--span-out / --span-jsonl) --- *)

let span_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "span-out" ] ~docv:"FILE"
        ~doc:
          "Write the hierarchical span trace of this invocation (pipeline            stages, certifier rechecks, PGO auditions, campaign phases,            worker utilization) as Chrome trace-event JSON to FILE (load in            Perfetto or chrome://tracing).")

let span_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "span-jsonl" ] ~docv:"FILE"
        ~doc:
          "Write the same spans as JSONL (one span per line) to FILE — the            input format of $(b,iclang stats --spans).")

(* A live recorder exactly when some span output was requested; everywhere
   else the disabled recorder keeps the instrumentation free. *)
let span_recorder span_out span_jsonl =
  if span_out <> None || span_jsonl <> None then O.Span.create ()
  else O.Span.disabled

let write_span_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Self-check before writing: a trace whose children overflow their
   parents is an attribution bug, and shipping it would poison every
   downstream trend report. *)
let flush_spans ~process_name spans span_out span_jsonl =
  if O.Span.is_enabled spans then begin
    let roots = O.Span.roots spans in
    (match O.Span.check roots with
    | Ok () -> ()
    | Error e -> failwith ("span self-check failed: " ^ e));
    Option.iter
      (fun p ->
        write_span_file p (O.Span.to_chrome_json ~process_name roots);
        Printf.printf "spans: wrote Chrome trace to %s\n" p)
      span_out;
    Option.iter
      (fun p ->
        write_span_file p (O.Span.to_jsonl roots);
        Printf.printf "spans: wrote JSONL to %s\n" p)
      span_jsonl
  end

(* --- --explain: per-checkpoint placement rationale --- *)

let write_text path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSON object per compile: where every middle-end checkpoint went and
   why (solver weight, interprocedural frequency, WAR sets covered), plus
   what the certifier-validated elision/motion passes did about it. *)
let explain_json (c : P.compiled) : string =
  let module T = Wario_transforms.Checkpoint_inserter in
  let module M = Wario.Motion in
  let b = Buffer.create 4096 in
  let freqs = c.P.middle.P.func_freqs in
  let freq f =
    match List.assoc_opt f freqs with Some x -> x | None -> 1.0
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"environment\": \"%s\",\n"
       (json_escape (P.environment_name c.P.env)));
  Buffer.add_string b "  \"function_frequencies\": {";
  let nf = List.length freqs in
  List.iteri
    (fun i (f, x) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %.6g%s"
           (if i = 0 then "" else " ")
           (json_escape f) x
           (if i = nf - 1 then "" else ",")))
    freqs;
  Buffer.add_string b "},\n";
  Buffer.add_string b "  \"checkpoints\": [\n";
  let ps = c.P.middle.P.placements in
  let np = List.length ps in
  List.iteri
    (fun i (p : T.placement_info) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"function\": \"%s\", \"block\": \"%s\", \"index\": %d, \
            \"weight\": %.6g, \"function_frequency\": %.6g, \
            \"wars_covered\": %d}%s\n"
           (json_escape p.T.pi_func) (json_escape p.T.pi_block) p.T.pi_index
           p.T.pi_weight (freq p.T.pi_func) p.T.pi_wars
           (if i = np - 1 then "" else ",")))
    ps;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"elided\": %d,\n"
       (match c.P.elision with
       | Some s -> s.Wario.Elide.elided
       | None -> 0));
  Buffer.add_string b
    (Printf.sprintf "  \"boundary_elided\": %d,\n"
       (match c.P.elision with
       | Some s -> s.Wario.Elide.boundary_elided
       | None -> 0));
  (match c.P.motion with
  | None -> Buffer.add_string b "  \"motion\": null\n"
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf
           "  \"motion\": {\"proposed\": %d, \"applied\": %d, \"hoisted\": \
            %d, \"sunk\": %d, \"rejected\": %d, \"moves\": [\n"
           s.M.proposed s.M.applied s.M.hoisted s.M.sunk s.M.rejected);
      let nm = List.length s.M.moves in
      List.iteri
        (fun i (m : M.move) ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"function\": \"%s\", \"kind\": \"%s\", \"cause\": \
                \"%s\", \"from\": \"%s\", \"to\": \"%s\", \"weight_from\": \
                %.6g, \"weight_to\": %.6g, \"applied\": %b, \"verdict\": \
                \"%s\"}%s\n"
               (json_escape m.M.mv_func)
               (match m.M.mv_kind with M.Hoist -> "hoist" | M.Sink -> "sink")
               (match m.M.mv_cause with
               | Wario_machine.Isa.Middle_end_war -> "middle-end-war"
               | Wario_machine.Isa.Back_end_war -> "back-end-war"
               | Wario_machine.Isa.Function_entry -> "entry"
               | Wario_machine.Isa.Function_exit -> "exit")
               (json_escape m.M.mv_from) (json_escape m.M.mv_to) m.M.mv_w_from
               m.M.mv_w_to m.M.mv_applied
               (json_escape m.M.mv_verdict)
               (if i = nm - 1 then "" else ",")))
        s.M.moves;
      Buffer.add_string b "  ]}\n");
  Buffer.add_string b "}\n";
  Buffer.contents b

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"FILE"
        ~doc:
          "Write the per-checkpoint placement rationale as JSON to FILE:            solver weight, interprocedural function frequency and WAR sets            covered for every middle-end checkpoint, plus every            elision/motion decision with its certifier verdict.")

(* --- compile --- *)

let do_compile file benchmark env unroll max_region no_opt placement explain
    dump_ir dump_asm cache_dir no_cache =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok src -> (
      try
        let opts =
          apply_placement placement (opts_of ?max_region ~no_opt unroll)
        in
        let cache = cache_of ~cache_dir ~no_cache in
        let c = P.compile ~opts ~cache env src in
        if dump_ir then
          print_string (Wario_ir.Ir_printer.program_to_string c.P.ir);
        if dump_asm then
          List.iter
            (fun f ->
              Format.printf "%a@." Wario_machine.Isa.pp_mfunc f)
            c.P.mprog.Wario_machine.Isa.mfuncs;
        Printf.printf
          "compiled [%s]: %d bytes of text, %d data, %d middle-end WARs, %d \
           middle-end checkpoints, %d spill WARs, %d spill checkpoints\n"
          (P.environment_name env) c.P.text_bytes
          c.P.image.E.Image.data_bytes c.P.middle.P.wars_found
          c.P.middle.P.middle_ckpts c.P.backend.spill_wars
          c.P.backend.spill_ckpts;
        (match c.P.elision with
        | None -> ()
        | Some e when e.Wario.Elide.boundary_tried > 0 ->
            Printf.printf
              "elision: %d coalesced, %d of %d entry/exit brackets removed \
               (certifier-validated)\n"
              e.Wario.Elide.elided e.Wario.Elide.boundary_elided
              e.Wario.Elide.boundary_tried
        | Some _ -> ());
        (match c.P.motion with
        | None -> ()
        | Some m ->
            Printf.printf
              "motion: %d proposed, %d applied (%d hoisted, %d sunk), %d \
               rejected by the certifier\n"
              m.Wario.Motion.proposed m.Wario.Motion.applied
              m.Wario.Motion.hoisted m.Wario.Motion.sunk
              m.Wario.Motion.rejected);
        (match explain with
        | None -> ()
        | Some path ->
            write_text path (explain_json c);
            Printf.printf "placement rationale written to %s\n" path);
        `Ok ()
      with
      | Wario_minic.Minic.Error e -> `Error (false, e)
      | Wario_backend.Isel.Isel_error e -> `Error (false, e))

let compile_cmd =
  let dump_ir =
    Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the final WIR.")
  in
  let dump_asm =
    Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the TM2 assembly.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile MiniC through a software environment")
    Term.(
      ret
        (const do_compile $ file_arg $ benchmark_arg $ env_arg $ unroll_arg
       $ max_region_arg $ no_opt_arg $ placement_arg $ explain_arg $ dump_ir
       $ dump_asm $ cache_dir_arg $ no_cache_arg))

(* --- run --- *)

let do_run file benchmark env unroll max_region no_opt profile_guided power
    trace irq stats no_verify engine =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok src -> (
      try
        let c = P.compile ~opts:(opts_of ?max_region ~no_opt unroll) env src in
        let c =
          if not profile_guided then c
          else begin
            (* pilot run: collect the call-count profile, then recompile *)
            let pilot = E.Emulator.run ~verify:false ~engine c.P.image in
            P.compile
              ~opts:
                (opts_of ?max_region ~no_opt
                   ~profile:pilot.E.Emulator.call_counts unroll)
              env src
          end
        in
        let supply =
          match supply_of power trace with
          | Ok s -> s
          | Error e -> failwith e
        in
        let r =
          E.Emulator.run ~supply ~irq_period:irq ~verify:(not no_verify)
            ~engine c.P.image
        in
        List.iter (fun v -> Printf.printf "%ld\n" v) r.E.Emulator.output;
        Printf.printf "exit=%ld\n" r.E.Emulator.exit_code;
        if stats then begin
          let ck = r.E.Emulator.checkpoints in
          Printf.printf
            "cycles=%d instrs=%d checkpoints=%d (entry=%d exit=%d \
             middle-end=%d back-end=%d) power-failures=%d boots=%d irqs=%d\n"
            r.E.Emulator.cycles r.E.Emulator.instrs
            r.E.Emulator.checkpoints_total ck.c_entry ck.c_exit ck.c_middle
            ck.c_backend r.E.Emulator.power_failures r.E.Emulator.boots
            r.E.Emulator.irqs_taken;
          match r.E.Emulator.region_sizes with
          | [] -> ()
          | rs ->
              Printf.printf
                "idempotent regions: n=%d median=%d mean=%.0f max=%d cycles\n"
                (List.length rs)
                (Wario_support.Util.percentile 50. rs)
                (Wario_support.Util.mean rs)
                (List.fold_left max 0 rs)
        end;
        (match r.E.Emulator.violations with
        | [] -> `Ok ()
        | v ->
            Printf.printf "*** %d WAR violations detected!\n" (List.length v);
            `Error (false, "WAR violations detected"))
      with
      | Wario_minic.Minic.Error e -> `Error (false, e)
      | E.Emulator.No_forward_progress supply ->
          `Error
            (false, "no forward progress under power supply " ^ supply))

let run_cmd =
  let power =
    Arg.(
      value
      & opt (some int) None
      & info [ "power" ] ~docv:"CYCLES" ~doc:"Intermittent power: fixed on-period.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"NAME" ~doc:"Harvester trace: rf or solar.")
  in
  let irq =
    Arg.(
      value & opt int 0
      & info [ "irq" ] ~docv:"CYCLES" ~doc:"Fire an interrupt every N cycles.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print run statistics.") in
  let no_verify =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Disable the WAR verifier.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and run on the emulator")
    Term.(
      ret
        (const do_run $ file_arg $ benchmark_arg $ env_arg $ unroll_arg
       $ max_region_arg $ no_opt_arg $ profile_guided_arg $ power $ trace
       $ irq $ stats $ no_verify $ engine_arg))

(* --- trace --- *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let do_trace file benchmark env unroll max_region no_opt power trace irq out
    metrics_out folded_out show_profile ring_cap jobs span_out span_jsonl
    engine =
  match resolve_jobs jobs with
  | Error e -> `Error (true, e)
  | Ok jobs -> (
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok src -> (
      try
        let metrics = O.Metrics.create () in
        let spans = span_recorder span_out span_jsonl in
        let c =
          P.compile ~opts:(opts_of ?max_region ~no_opt unroll) ~metrics ~spans
            env src
        in
        let supply =
          match supply_of power trace with Ok s -> s | Error e -> failwith e
        in
        let sink = O.Trace.ring ~capacity:ring_cap () in
        let r =
          O.Span.with_span spans "emulator.run" (fun () ->
              let r =
                E.Emulator.run ~supply ~irq_period:irq ~tracer:sink ~engine
                  c.P.image
              in
              O.Span.add_counter ~by:r.E.Emulator.cycles spans "cycles";
              O.Span.add_counter ~by:r.E.Emulator.checkpoints_total spans
                "dyn_ckpts";
              r)
        in
        O.Metrics.set metrics "run.cycles" r.E.Emulator.cycles;
        O.Metrics.set metrics "run.instrs" r.E.Emulator.instrs;
        O.Metrics.set metrics "run.checkpoints_total"
          r.E.Emulator.checkpoints_total;
        O.Metrics.set metrics "run.power_failures" r.E.Emulator.power_failures;
        O.Metrics.set metrics "run.boots" r.E.Emulator.boots;
        O.Metrics.set metrics "run.irqs_taken" r.E.Emulator.irqs_taken;
        let w = r.E.Emulator.waste in
        O.Metrics.set metrics "run.useful_cycles" w.E.Emulator.w_useful;
        O.Metrics.set metrics "run.boot_cycles" w.E.Emulator.w_boot;
        O.Metrics.set metrics "run.restore_cycles" w.E.Emulator.w_restore;
        O.Metrics.set metrics "run.reexec_cycles" w.E.Emulator.w_reexec;
        O.Metrics.set metrics "trace.events" (O.Trace.length sink);
        O.Metrics.set metrics "trace.dropped" (O.Trace.dropped sink);
        let evs = O.Trace.events sink in
        let name =
          match (benchmark, file) with
          | Some b, _ -> b
          | None, Some f -> Filename.basename f
          | None, None -> "?"
        in
        let prof = O.Profile.of_events evs in
        (* render the requested artefacts on parallel domains — each is a
           pure function of the already-collected run data — then write and
           report from here, in input order, so output never interleaves *)
        let requested =
          List.filter_map Fun.id
            [
              Option.map (fun p -> (`Chrome, p)) out;
              Option.map (fun p -> (`Metrics, p)) metrics_out;
              Option.map (fun p -> (`Folded, p)) folded_out;
            ]
        in
        let rendered =
          X.map ~jobs ~spans ~label:"trace.render"
            (fun (kind, path) ->
              let body =
                match kind with
                | `Chrome ->
                    O.Trace.to_chrome_json
                      ~process_name:
                        (name ^ " [" ^ P.environment_name env ^ "]")
                      evs
                | `Metrics -> O.Metrics.to_jsonl metrics
                | `Folded -> O.Profile.folded prof
              in
              (kind, path, body))
            requested
        in
        List.iter
          (fun (kind, path, body) ->
            write_file path body;
            match kind with
            | `Chrome ->
                Printf.printf "trace: wrote %d events to %s%s\n"
                  (O.Trace.length sink) path
                  (match O.Trace.dropped sink with
                  | 0 -> ""
                  | n -> Printf.sprintf " (%d dropped by the ring)" n)
            | `Metrics ->
                Printf.printf "metrics: wrote %d entries to %s\n"
                  (List.length (O.Metrics.items metrics))
                  path
            | `Folded -> Printf.printf "folded stacks: %s\n" path)
          rendered;
        if show_profile then begin
          print_newline ();
          print_string (Wario.Report.waste_table w);
          print_newline ();
          print_string (Wario.Report.profile_table prof);
          print_newline ();
          print_string (Wario.Report.regions_table ~top:10 prof);
          print_newline ()
        end;
        Printf.printf
          "run: %d cycles (%d useful, %d boot, %d restore, %d re-executed), \
           %d checkpoints, %d power failures\n"
          r.E.Emulator.cycles w.E.Emulator.w_useful w.E.Emulator.w_boot
          w.E.Emulator.w_restore w.E.Emulator.w_reexec
          r.E.Emulator.checkpoints_total r.E.Emulator.power_failures;
        (* self-check: trace contents must agree with the statistics
           (checkpoint commits and — with a complete trace — the
           per-function cycle attribution) *)
        let module Pr = O.Profile in
        if O.Trace.dropped sink = 0 then begin
          if prof.Pr.checkpoints <> r.E.Emulator.checkpoints_total then
            failwith
              (Printf.sprintf
                 "trace inconsistency: %d checkpoint events vs %d in stats"
                 prof.Pr.checkpoints r.E.Emulator.checkpoints_total);
          let attributed =
            List.fold_left
              (fun acc (row : Pr.fn_row) -> acc + row.Pr.fn_cycles)
              0 prof.Pr.rows
          in
          if attributed <> r.E.Emulator.cycles then
            failwith
              (Printf.sprintf
                 "trace inconsistency: %d attributed cycles vs %d total"
                 attributed r.E.Emulator.cycles)
        end;
        flush_spans
          ~process_name:("iclang trace " ^ name) spans span_out span_jsonl;
        `Ok ()
      with
      | Wario_minic.Minic.Error e -> `Error (false, e)
      | Failure e -> `Error (false, e)
      | E.Emulator.No_forward_progress supply ->
          `Error (false, "no forward progress under power supply " ^ supply)))

let trace_cmd =
  let power =
    Arg.(
      value
      & opt (some int) None
      & info [ "power" ] ~docv:"CYCLES" ~doc:"Intermittent power: fixed on-period.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"NAME" ~doc:"Harvester trace: rf or solar.")
  in
  let irq =
    Arg.(
      value & opt int 0
      & info [ "irq" ] ~docv:"CYCLES" ~doc:"Fire an interrupt every N cycles.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the Chrome trace-event JSON here (load in Perfetto or            chrome://tracing).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write compile-time metrics as JSONL here.")
  in
  let folded_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"Write flamegraph folded-stack lines here.")
  in
  let show_profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print the per-function and per-region profile tables and the            wasted-cycle decomposition.")
  in
  let ring_cap =
    Arg.(
      value & opt int 0
      & info [ "ring" ] ~docv:"N"
          ~doc:
            "Keep only the newest N events (0 = unbounded).  A capped ring            disables the profile's completeness self-checks.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Compile, run on the emulator with the execution tracer, and emit            Chrome trace JSON / metrics JSONL / profile tables")
    Term.(
      ret
        (const do_trace $ file_arg $ benchmark_arg $ env_arg $ unroll_arg
       $ max_region_arg $ no_opt_arg $ power $ trace $ irq $ out $ metrics_out
       $ folded_out $ show_profile $ ring_cap $ jobs_arg $ span_out_arg
       $ span_jsonl_arg $ engine_arg))

(* --- verify --- *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* machine-readable coverage artifact for CI upload *)
let coverage_json (reports : V.Campaign.case_report list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf "  \"min_boundary_pct\": %.1f,\n"
       (V.Campaign.min_boundary_pct reports));
  Buffer.add_string b
    (Printf.sprintf "  \"total_failures\": %d,\n"
       (V.Campaign.total_failures reports));
  Buffer.add_string b "  \"cases\": [\n";
  let n = List.length reports in
  List.iteri
    (fun i (r : V.Campaign.case_report) ->
      let c = r.V.Campaign.k_coverage in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"workload\": \"%s\", \"env\": \"%s\", \"schedules\": %d, \
            \"probes\": %d, \"boundaries\": %d, \"boundaries_cut\": %d, \
            \"boundary_pct\": %.1f, \"regions\": %d, \"regions_cut\": %d, \
            \"boot_cut\": %b, \"worst_reexec\": %d, \"failures\": %d}%s\n"
           r.V.Campaign.k_workload
           (P.environment_name r.V.Campaign.k_env)
           r.V.Campaign.k_schedules r.V.Campaign.k_probes
           c.V.Campaign.cov_boundaries c.V.Campaign.cov_boundaries_cut
           (V.Campaign.boundary_pct c) c.V.Campaign.cov_regions
           c.V.Campaign.cov_regions_cut c.V.Campaign.cov_boot_cut
           r.V.Campaign.k_worst_reexec r.V.Campaign.k_failures_total
           (if i = n - 1 then "" else ",")))
    reports;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* replay a persisted regression corpus; the CI hard gate *)
let do_corpus dir =
  let entries, errs = V.Corpus.load_dir dir in
  Printf.printf "corpus %s: %d entr(ies)%s\n%!" dir (List.length entries)
    (match errs with
    | [] -> ""
    | es -> Printf.sprintf ", %d unreadable" (List.length es));
  List.iter
    (fun (path, e) -> Printf.printf "  FAIL %s — cannot parse: %s\n%!" path e)
    errs;
  let bad = ref (List.length errs) and stale_paths = ref [] in
  List.iter
    (fun (path, entry) ->
      let v = V.Corpus.replay entry in
      if v.V.Corpus.v_stale then stale_paths := path :: !stale_paths;
      if not v.V.Corpus.v_ok then incr bad;
      Printf.printf "  %s %s — %s\n%!"
        (if v.V.Corpus.v_ok then "ok  " else "FAIL")
        (Filename.basename path) v.V.Corpus.v_message)
    entries;
  (* stale entries still replay, but their fingerprint no longer matches
     what the compiler produces today — surface them loudly so they get
     re-recorded instead of silently rotting *)
  (match List.rev !stale_paths with
  | [] -> ()
  | ps ->
      Printf.printf
        "warning: %d stale entr(ies) — the recorded program fingerprint no \
         longer matches the current compiler output:\n%!"
        (List.length ps);
      List.iter
        (fun p -> Printf.printf "  STALE %s\n%!" (Filename.basename p))
        ps;
      Printf.printf
        "  re-record with `iclang verify --campaign --corpus-out %s` to \
         refresh the expectations\n%!"
        dir);
  Printf.printf "corpus replay: %d ok, %d failed, %d stale\n"
    (List.length entries + List.length errs - !bad)
    !bad
    (List.length !stale_paths);
  if !bad = 0 then `Ok ()
  else `Error (false, "corpus replay: expectations not upheld")

let do_campaign ~config_envs ~workloads ~schedules ~small ~min_coverage
    ~corpus_out ~coverage_out ~seed ~opts ~jobs ~engine ~spans =
  let budget =
    match schedules with
    | Some n -> n
    | None ->
        if small then V.Campaign.small_budget else V.Campaign.default_budget
  in
  let config =
    {
      V.Campaign.envs = config_envs;
      workloads;
      budget;
      seed;
      opts;
      jobs;
      max_shrunk_per_case = 5;
      engine;
    }
  in
  let log = X.serialized (fun s -> Printf.printf "  %s\n%!" s) in
  Printf.printf
    "campaign: %d environment(s) × %d workload(s), budget %d schedules per \
     case, seed %Ld, %d job(s)\n%!"
    (List.length config_envs) (List.length workloads) budget seed jobs;
  let reports = V.Campaign.run ~log ~spans config in
  print_string (Wario.Report.campaign_table (V.Campaign.report_rows reports));
  (match coverage_out with
  | None -> ()
  | Some path ->
      write_file path (coverage_json reports);
      Printf.printf "coverage report written to %s\n%!" path);
  (match corpus_out with
  | None -> ()
  | Some dir ->
      let entries = V.Campaign.corpus_entries reports in
      let added =
        List.filter
          (fun e ->
            match V.Corpus.save ~dir e with
            | `Added _ -> true
            | `Exists _ -> false)
          entries
      in
      Printf.printf "corpus: %d new entr(ies) in %s (%d already present)\n%!"
        (List.length added) dir
        (List.length entries - List.length added));
  let minpct = V.Campaign.min_boundary_pct reports in
  let failures = V.Campaign.total_failures reports in
  Printf.printf
    "campaign: %d case(s), minimum commit-boundary coverage %.1f%% (gate \
     %d%%), %d consistency failure(s)\n"
    (List.length reports) minpct min_coverage failures;
  if failures > 0 then `Error (false, "crash-consistency violations detected")
  else if minpct < float_of_int min_coverage then
    `Error
      ( false,
        Printf.sprintf "coverage gate not met: %.1f%% < %d%%" minpct
          min_coverage )
  else `Ok ()

let do_verify envs workloads schedules seed exhaustive_limit unroll max_region
    drop_ckpt placement jobs repro campaign small min_coverage corpus_out
    coverage_out corpus span_out span_jsonl engine =
  match resolve_jobs jobs with
  | Error e -> `Error (true, e)
  | Ok jobs -> (
  let spans = span_recorder span_out span_jsonl in
  let finish name r =
    match r with
    | `Ok () ->
        (try
           flush_spans ~process_name:name spans span_out span_jsonl;
           `Ok ()
         with Failure e -> `Error (false, e))
    | err ->
        (* still flush on gate failures: the trace of a failing campaign is
           exactly the one worth keeping *)
        (try flush_spans ~process_name:name spans span_out span_jsonl
         with Failure e -> Printf.eprintf "%s\n" e);
        err
  in
  match repro with
  | Some line -> (
      match V.Repro.of_string line with
      | Error e -> `Error (false, "bad reproducer: " ^ e)
      | Ok r -> (
          Printf.printf "replaying %s\n%!" (V.Repro.to_string r);
          match V.Harness.replay r with
          | Ok () ->
              Printf.printf "reproducer no longer fails (fixed?)\n";
              `Ok ()
          | Error d -> `Error (false, "reproduced: " ^ d)))
  | None -> (
  match corpus with
  | Some dir -> do_corpus dir
  | None -> (
      let config_envs =
        match envs with
        | [] -> V.Harness.instrumented_environments
        | es -> es
      in
      let named_workloads =
        match workloads with
        | [] -> Ok V.Harness.default_config.V.Harness.workloads
        | ws ->
            List.fold_left
              (fun acc w ->
                match (acc, V.Repro.source_of_workload w) with
                | Error e, _ -> Error e
                | _, Error e -> Error e
                | Ok l, Ok src -> Ok (l @ [ (w, src) ]))
              (Ok []) ws
      in
      match named_workloads with
      | Error e -> `Error (false, e)
      | Ok workloads when campaign ->
          finish "iclang verify --campaign"
            (do_campaign ~config_envs ~workloads ~schedules ~small
               ~min_coverage ~corpus_out ~coverage_out ~seed
               ~opts:
                 (apply_placement placement
                    {
                      P.default_options with
                      unroll_factor = unroll;
                      max_region;
                      drop_middle_ckpt = drop_ckpt;
                    })
               ~jobs ~engine ~spans)
      | Ok workloads ->
          let schedules = Option.value schedules ~default:200 in
          let config =
            {
              V.Harness.envs = config_envs;
              workloads;
              schedules_per_case = schedules;
              exhaustive_limit;
              max_failures_per_case = 3;
              seed;
              opts =
                (apply_placement placement
                   {
                     P.default_options with
                     unroll_factor = unroll;
                     max_region;
                     drop_middle_ckpt = drop_ckpt;
                   });
              jobs;
              engine;
            }
          in
          (* progress lines may be emitted while worker domains are live:
             funnel them through one mutex so lines never interleave *)
          let log = X.serialized (fun s -> Printf.printf "  %s\n%!" s) in
          Printf.printf
            "static pre-check: certifying %d environment(s) × %d workload(s)\n%!"
            (List.length config_envs) (List.length workloads);
          let rejected = V.Harness.static_precheck ~log config in
          Printf.printf "static pre-check: %d rejection(s)\n%!"
            (List.length rejected);
          Printf.printf
            "fault-injection sweep: %d environment(s) × %d workload(s), ≥%d \
             schedules each, seed %Ld, %d job(s)\n%!"
            (List.length config_envs) (List.length workloads) schedules seed
            jobs;
          let reports =
            O.Span.with_span spans "verify.sweep" (fun () ->
                let reports = V.Harness.sweep ~log config in
                O.Span.add_counter spans "schedules"
                  ~by:
                    (List.fold_left
                       (fun acc r -> acc + r.V.Harness.c_schedules)
                       0 reports);
                reports)
          in
          let total =
            List.fold_left
              (fun acc r -> acc + r.V.Harness.c_schedules)
              0 reports
          in
          let failures = V.Harness.total_failures reports in
          Printf.printf
            "%d case(s), %d schedule(s) injected, %d consistency failure(s), \
             %d static rejection(s)\n"
            (List.length reports) total failures (List.length rejected);
          finish "iclang verify"
            (if failures = 0 && rejected = [] then `Ok ()
             else if failures = 0 then
               `Error (false, "static certifier rejected some builds")
             else `Error (false, "crash-consistency violations detected")))))

let verify_cmd =
  let envs =
    Arg.(
      value & opt_all env_conv []
      & info [ "e"; "environment" ] ~docv:"ENV"
          ~doc:
            "Environment(s) to verify (repeatable; default: every            instrumented environment).")
  in
  let workloads =
    Arg.(
      value & opt_all string []
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            "Workload(s) to verify: a micro program or benchmark name            (repeatable; default: all micro programs).")
  in
  let schedules =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "schedules" ] ~docv:"N"
          ~doc:
            "Injected failure schedules per (environment, workload) case            (default: 200 for the sweep; the campaign budget for            --campaign).")
  in
  let seed =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "PRNG seed (printed with every reproducer; the same seed            regenerates the same schedules).")
  in
  let exhaustive_limit =
    Arg.(
      value & opt int 600
      & info [ "exhaustive-limit" ] ~docv:"N"
          ~doc:
            "Also cut exhaustively at every checkpoint commit ±1 when that            set has at most N schedules.")
  in
  let drop_ckpt =
    Arg.(
      value
      & opt (some int) None
      & info [ "drop-ckpt" ] ~docv:"N"
          ~doc:
            "TEST-ONLY: sabotage the pipeline by deleting the N-th            middle-end checkpoint, to demonstrate that the harness catches            a broken schedule.")
  in
  let repro =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"SEXPR"
          ~doc:
            "Replay a shrunk counterexample emitted by a previous sweep,            e.g. '(repro (workload rmw_loop) (env wario) (unroll 8)            (cuts 413 879))'.")
  in
  let campaign =
    Arg.(
      value & flag
      & info [ "campaign" ]
          ~doc:
            "Run the fleet-scale adversarial campaign instead of the basic            sweep: exhaustive boundary cuts, boundary-bisecting adversary,            harvester-style supply models and seeded random fill, with            cut-coverage accounting per case.")
  in
  let small =
    Arg.(
      value & flag
      & info [ "small" ]
          ~doc:
            "With --campaign: use the smoke-test budget (2000 schedules per            case) instead of the fleet default (100000).")
  in
  let min_coverage =
    Arg.(
      value & opt int 95
      & info [ "min-coverage" ] ~docv:"PCT"
          ~doc:
            "With --campaign: fail unless every case reaches at least PCT%            commit-boundary cut coverage.")
  in
  let corpus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-out" ] ~docv:"DIR"
          ~doc:
            "With --campaign: persist every shrunk counterexample into DIR            as a deduplicated regression-corpus entry.")
  in
  let coverage_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-out" ] ~docv:"FILE"
          ~doc:"With --campaign: write the coverage report as JSON to FILE.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Replay every regression-corpus entry in DIR and check each            against its recorded expectation (the CI hard gate).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Adversarial fault injection: sweep power-cut schedules over            workloads × environments and check crash consistency")
    Term.(
      ret
        (const do_verify $ envs $ workloads $ schedules $ seed
       $ exhaustive_limit $ unroll_arg $ max_region_arg $ drop_ckpt
       $ placement_arg $ jobs_arg $ repro $ campaign $ small $ min_coverage
       $ corpus_out $ coverage_out $ corpus $ span_out_arg $ span_jsonl_arg
       $ engine_arg))

(* --- certify --- *)

let do_certify file benchmark envs unroll max_region no_opt drop_ckpt verbose
    jobs =
  match resolve_jobs jobs with
  | Error e -> `Error (true, e)
  | Ok jobs -> (
  let sources =
    match (file, benchmark) with
    | None, None ->
        (* default: every built-in benchmark *)
        Ok (List.map (fun (b : W.benchmark) -> (b.name, b.source)) W.all)
    | _ -> (
        match load_source file benchmark with
        | Error e -> Error e
        | Ok src ->
            let name =
              match (benchmark, file) with
              | Some b, _ -> b
              | None, Some f -> f
              | None, None -> assert false
            in
            Ok [ (name, src) ])
  in
  match sources with
  | Error e -> `Error (false, e)
  | Ok sources ->
      let envs =
        match envs with
        | [] -> V.Harness.instrumented_environments
        | es -> es
      in
      let opts =
        {
          (opts_of ?max_region ~no_opt unroll) with
          P.drop_middle_ckpt = drop_ckpt;
        }
      in
      let tasks =
        List.concat_map
          (fun (name, src) -> List.map (fun env -> (name, src, env)) envs)
          sources
      in
      (* each job compiles and certifies its own build (nothing shared);
         the rendered verdicts come back in input order and are printed
         from here, so output is byte-identical for any --jobs *)
      let verdicts =
        X.map ~jobs
          (fun (name, src, env) ->
            try
              let c = P.compile ~opts env src in
              match P.certify c with
              | Wario_certify.Certify.Certified s as v ->
                  ( false,
                    Printf.sprintf
                      "certify %-10s [%-14s]: CERTIFIED  (%d pairs discharged, \
                       %d barriers, %d loads/%d stores)\n"
                      name (P.environment_name env) s.s_pairs s.s_barriers
                      s.s_loads s.s_stores
                    ^ if verbose then P.certify_report c v else "" )
              | Wario_certify.Certify.Rejected (rs, _) as v ->
                  ( true,
                    Printf.sprintf
                      "certify %-10s [%-14s]: REJECTED  (%d problem(s))\n" name
                      (P.environment_name env) (List.length rs)
                    ^ P.certify_report c v )
            with Wario_minic.Minic.Error e ->
              (true, Printf.sprintf "certify %-10s: front-end error: %s\n" name e))
          tasks
      in
      List.iter (fun (_, s) -> print_string s) verdicts;
      let rejected =
        List.length (List.filter (fun (bad, _) -> bad) verdicts)
      in
      if rejected = 0 then `Ok ()
      else `Error (false, Printf.sprintf "%d build(s) rejected" rejected))

let certify_cmd =
  let envs =
    Arg.(
      value & opt_all env_conv []
      & info [ "e"; "environment" ] ~docv:"ENV"
          ~doc:
            "Environment(s) to certify (repeatable; default: every            instrumented environment).")
  in
  let drop_ckpt =
    Arg.(
      value
      & opt (some int) None
      & info [ "drop-ckpt" ] ~docv:"N"
          ~doc:
            "TEST-ONLY: sabotage the pipeline by deleting the N-th            middle-end checkpoint; the certifier must reject the build            with a path witness.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print the full certificate, not a summary.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Statically certify the linked image WAR-free (translation            validation of the pipeline), or print a path witness")
    Term.(
      ret
        (const do_certify $ file_arg $ benchmark_arg $ envs $ unroll_arg
       $ max_region_arg $ no_opt_arg $ drop_ckpt $ verbose $ jobs_arg))

(* --- pgo --- *)

let do_pgo file benchmark env unroll max_region no_opt power trace stats
    explain span_out span_jsonl engine cache_dir no_cache =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok src -> (
      try
        if env = P.Plain then
          failwith
            "pgo needs an instrumented environment (plain-c places no \
             checkpoints)";
        let spans = span_recorder span_out span_jsonl in
        let cache = cache_of ~cache_dir ~no_cache in
        let opts =
          {
            (opts_of ?max_region ~no_opt unroll) with
            P.elide = true;
            motion = true;
          }
        in
        let cs =
          Wario.Pgo.compile_candidates ~opts ~spans ~engine ~cache env src
        in
        let pilot = cs.Wario.Pgo.pilot in
        Printf.printf "pilot: %d cycles under continuous power\n"
          pilot.Wario.Pgo.pilot_cycles;
        let rejected = ref 0 in
        List.iter
          (fun v ->
            let c = Wario.Pgo.compiled_of cs v in
            let cert =
              match P.certify c with
              | Wario_certify.Certify.Certified _ -> "CERTIFIED"
              | Wario_certify.Certify.Rejected _ ->
                  incr rejected;
                  "REJECTED"
            in
            let elided =
              match c.P.elision with
              | Some s -> s.Wario.Elide.elided + s.Wario.Elide.boundary_elided
              | None -> 0
            in
            let moved =
              match c.P.motion with
              | Some s -> s.Wario.Motion.applied
              | None -> 0
            in
            Printf.printf
              "%-16s %6s dynamic checkpoints on the pilot input, %d elided, \
               %d moved, %s%s\n"
              (Wario.Pgo.variant_name v)
              (match List.assoc_opt v pilot.Wario.Pgo.measured with
              | Some k -> string_of_int k
              | None -> "?")
              elided moved cert
              (if v = pilot.Wario.Pgo.selected then "  <- selected" else ""))
          [ Wario.Pgo.Greedy; Wario.Pgo.Static; Wario.Pgo.Profile;
            Wario.Pgo.Inter ];
        let supply =
          match supply_of power trace with Ok s -> s | Error e -> failwith e
        in
        let best = Wario.Pgo.compiled_of cs pilot.Wario.Pgo.selected in
        (match explain with
        | None -> ()
        | Some path ->
            write_text path (explain_json best);
            Printf.printf "placement rationale for %s written to %s\n"
              (Wario.Pgo.variant_name pilot.Wario.Pgo.selected)
              path);
        let r =
          O.Span.with_span spans "pgo.final_run" (fun () ->
              let r = E.Emulator.run ~supply ~engine best.P.image in
              O.Span.add_counter ~by:r.E.Emulator.cycles spans "cycles";
              O.Span.add_counter ~by:r.E.Emulator.checkpoints_total spans
                "dyn_ckpts";
              r)
        in
        List.iter (fun v -> Printf.printf "%ld\n" v) r.E.Emulator.output;
        Printf.printf "exit=%ld\n" r.E.Emulator.exit_code;
        if stats then begin
          let ck = r.E.Emulator.checkpoints in
          Printf.printf
            "cycles=%d instrs=%d checkpoints=%d (entry=%d exit=%d \
             middle-end=%d back-end=%d) power-failures=%d boots=%d\n"
            r.E.Emulator.cycles r.E.Emulator.instrs
            r.E.Emulator.checkpoints_total ck.c_entry ck.c_exit ck.c_middle
            ck.c_backend r.E.Emulator.power_failures r.E.Emulator.boots;
          print_newline ();
          print_string (Wario.Report.profile_table pilot.Wario.Pgo.summary)
        end;
        (match r.E.Emulator.violations with
        | _ :: _ as v ->
            Printf.printf "*** %d WAR violations detected!\n" (List.length v)
        | [] -> ());
        if !rejected > 0 then
          `Error (false, "static certifier rejected a candidate build")
        else if r.E.Emulator.violations <> [] then
          `Error (false, "WAR violations detected")
        else begin
          flush_spans ~process_name:"iclang pgo" spans span_out span_jsonl;
          `Ok ()
        end
      with
      | Wario_minic.Minic.Error e -> `Error (false, e)
      | Failure e -> `Error (false, e)
      | E.Emulator.No_forward_progress supply ->
          `Error (false, "no forward progress under power supply " ^ supply))

let pgo_cmd =
  let power =
    Arg.(
      value
      & opt (some int) None
      & info [ "power" ] ~docv:"CYCLES"
          ~doc:"Intermittent power for the final run: fixed on-period.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"NAME" ~doc:"Harvester trace: rf or solar.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print run statistics and the pilot's profile table.")
  in
  Cmd.v
    (Cmd.info "pgo"
       ~doc:
         "Profile-guided checkpoint placement: compile with the static cost            model, measure one pilot run, recompile with measured block            weights, certify every candidate, keep the measured-best binary            and run it")
    Term.(
      ret
        (const do_pgo $ file_arg $ benchmark_arg $ env_arg $ unroll_arg
       $ max_region_arg $ no_opt_arg $ power $ trace $ stats $ explain_arg
       $ span_out_arg $ span_jsonl_arg $ engine_arg $ cache_dir_arg
       $ no_cache_arg))

(* --- serve --- *)

(* The batch front end: JSONL (program, options) jobs in, JSONL results
   out.  Jobs are canonicalized to pipeline image keys and deduplicated;
   only distinct keys compile, fanned over an Exec pool, and every job —
   including the deduplicated aliases and the lines that failed to parse
   — gets exactly one result line, in input order.  Protocol lives in
   Wario.Serve; see README "Compile service". *)
let do_serve input output jobs cache_dir no_cache stats_only span_out
    span_jsonl =
  match resolve_jobs jobs with
  | Error e -> `Error (true, e)
  | Ok jobs -> (
      try
        let module Sv = Wario.Serve in
        let cache = cache_of ~cache_dir ~no_cache in
        let spans = span_recorder span_out span_jsonl in
        let metrics = O.Metrics.create () in
        let read_lines ic =
          let rec loop acc =
            match input_line ic with
            | line -> loop (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          loop []
        in
        let lines =
          match input with
          | None | Some "-" -> read_lines stdin
          | Some path ->
              let ic = open_in path in
              Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                  read_lines ic)
        in
        (* blank lines are separators, not jobs *)
        let lines =
          List.filteri (fun _ l -> String.trim l <> "") lines
        in
        let lookup b =
          Option.map
            (fun (x : W.benchmark) -> x.source)
            (List.find_opt (fun (x : W.benchmark) -> x.name = b) W.all)
        in
        let parsed =
          List.mapi (fun i l -> Sv.job_of_line ~lookup ~index:i l) lines
        in
        let oks =
          List.filteri (fun _ r -> Result.is_ok r) parsed
          |> List.map Result.get_ok |> Array.of_list
        in
        let plan =
          O.Span.with_span spans "serve.plan" (fun () ->
              Sv.plan (Array.to_list oks))
        in
        O.Metrics.set metrics "serve.jobs" (Array.length oks);
        O.Metrics.set metrics "serve.distinct" (List.length plan.Sv.p_distinct);
        (* compile each distinct job once; private metrics registries are
           merged deterministically at the join, so the cache.<stage>.*
           counters are reproducible for any --jobs *)
        let compiled =
          X.map_with_metrics ~jobs ~spans ~label:"serve.map" ~metrics
            (fun metrics idx ->
              let job = oks.(idx) in
              let t0 = Unix.gettimeofday () in
              let c, report =
                P.compile_with_report ~opts:job.Sv.j_opts ~metrics ~cache
                  job.Sv.j_env job.Sv.j_source
              in
              (idx, c, report, (Unix.gettimeofday () -. t0) *. 1000.))
            plan.Sv.p_distinct
        in
        let by_idx = Hashtbl.create 64 in
        List.iter
          (fun (idx, c, report, ms) -> Hashtbl.replace by_idx idx (c, report, ms))
          compiled;
        let emit =
          match output with
          | None | Some "-" -> fun line -> print_endline line
          | Some path ->
              let oc = open_out path in
              at_exit (fun () -> try close_out oc with _ -> ());
              fun line ->
                output_string oc line;
                output_char oc '\n'
        in
        let ok_pos = ref 0 in
        List.iteri
          (fun i r ->
            match r with
            | Error msg ->
                emit (Sv.error_line ~id:(Printf.sprintf "job-%d" i) msg)
            | Ok (job : Sv.job) ->
                let p = !ok_pos in
                incr ok_pos;
                let canon = plan.Sv.p_canonical.(p) in
                let c, report, ms = Hashtbl.find by_idx canon in
                let dedup_of =
                  if canon = p then None else Some oks.(canon).Sv.j_id
                in
                emit
                  (Sv.result_line ~stats_only ~job ~key:plan.Sv.p_keys.(p)
                     ~dedup_of ~stages:report ~wall_ms:ms c))
          parsed;
        let ctr = Wario.Cache.counters cache in
        Printf.eprintf
          "serve: %d job(s), %d distinct, %d error line(s); cache: %d hit(s), \
           %d miss(es), %d eviction(s)\n"
          (List.length parsed)
          (List.length plan.Sv.p_distinct)
          (List.length parsed - Array.length oks)
          ctr.Wario.Cache.hits ctr.Wario.Cache.misses
          ctr.Wario.Cache.evictions;
        flush_spans ~process_name:"iclang serve" spans span_out span_jsonl;
        `Ok ()
      with
      | Sys_error e -> `Error (false, e)
      | Wario_minic.Minic.Error e -> `Error (false, e)
      | Wario_backend.Isel.Isel_error e -> `Error (false, e))

let serve_cmd =
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "in"; "i" ] ~docv:"FILE"
          ~doc:"JSONL job stream (default and $(b,-): stdin).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"JSONL result stream (default and $(b,-): stdout).")
  in
  let stats_only =
    Arg.(
      value & flag
      & info [ "stats-only" ]
          ~doc:
            "Omit the run-varying result fields (per-stage cache outcomes,            wall time), leaving only fields that are a pure function of the            job — two serve runs over the same batch, cached or not, then            produce byte-identical output.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch compile service: read JSONL (program, options) jobs,            deduplicate them by canonical pipeline stage key, compile each            distinct job once over a parallel pool (reusing the            content-addressed cache), and stream one JSONL result per job in            input order")
    Term.(
      ret
        (const do_serve $ input $ output $ jobs_arg $ cache_dir_arg
       $ no_cache_arg $ stats_only $ span_out_arg $ span_jsonl_arg))

(* --- stats --- *)

let do_stats bench_files span_files coverage_files budgets_file gate_flag top =
  let module J = Wario_support.Json in
  let module St = Wario.Stats in
  try
    (* BENCH generations, in the order given (pass oldest first) *)
    let gens =
      List.map
        (fun path ->
          let label = Filename.remove_extension (Filename.basename path) in
          match St.load_generation ~label (read_file path) with
          | Ok g -> g
          | Error e -> failwith e)
        bench_files
    in
    if gens <> [] then print_string (St.render_trend gens);
    (* span JSONL: rebuild the trees, re-run the attribution self-check,
       then report the slowest spans and per-worker utilization *)
    List.iter
      (fun path ->
        match O.Span.of_jsonl (read_file path) with
        | Error e -> failwith (path ^ ": " ^ e)
        | Ok roots ->
            (match O.Span.check roots with
            | Ok () -> ()
            | Error e -> failwith (path ^ ": span self-check failed: " ^ e));
            Printf.printf "\n-- spans: %s --\n" path;
            print_string (St.render_spans ~k:top roots))
      span_files;
    (* campaign coverage artifacts: the one-line fleet summary *)
    List.iter
      (fun path ->
        let doc =
          match J.parse (read_file path) with
          | Ok d -> d
          | Error e -> failwith (path ^ ": " ^ e)
        in
        let get name f = Option.bind (J.member name doc) f in
        Printf.printf
          "\ncampaign %s: %d case(s), min boundary coverage %.1f%%, %d \
           failure(s)\n"
          path
          (match get "cases" J.to_list with
          | Some l -> List.length l
          | None -> 0)
          (Option.value ~default:0. (get "min_boundary_pct" J.to_float))
          (Option.value ~default:0 (get "total_failures" J.to_int)))
      coverage_files;
    match budgets_file with
    | None ->
        if gate_flag then
          `Error (false, "--gate needs a budget file (--budgets FILE)")
        else `Ok ()
    | Some path ->
        let doc =
          match J.parse (read_file path) with
          | Ok d -> d
          | Error e -> failwith (path ^ ": " ^ e)
        in
        let budgets =
          match St.budgets_of_json doc with
          | Ok b -> b
          | Error e -> failwith (path ^ ": " ^ e)
        in
        let breaches = St.gate ~budgets gens in
        print_newline ();
        print_string (St.render_breaches breaches);
        if breaches <> [] && gate_flag then
          `Error (false, "regression budget breached")
        else `Ok ()
  with
  | Failure e -> `Error (false, e)
  | Sys_error e -> `Error (false, e)

let stats_cmd =
  let bench_files =
    Arg.(
      value & opt_all string []
      & info [ "bench" ] ~docv:"FILE"
          ~doc:
            "A BENCH_*.json generation (repeatable; pass oldest first —            deltas run oldest to newest).")
  in
  let span_files =
    Arg.(
      value & opt_all string []
      & info [ "spans" ] ~docv:"FILE"
          ~doc:
            "A span JSONL file written by --span-jsonl (repeatable).  Each            file is self-checked (child time must fit its parent) before            the top-k and worker-utilization tables are printed.")
  in
  let coverage_files =
    Arg.(
      value & opt_all string []
      & info [ "coverage" ] ~docv:"FILE"
          ~doc:
            "A campaign coverage JSON written by verify --coverage-out            (repeatable).")
  in
  let budgets_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "budgets" ] ~docv:"FILE"
          ~doc:
            "Regression budgets: {\"budgets\": [{\"program\": NAME,            \"max_dyn_ckpts\": N, \"max_cycles\": N}, ...]}.  Each program            is checked against its newest generation; a budgeted program            missing from every generation is itself a breach.")
  in
  let gate_flag =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:"Exit nonzero when any budget is breached (the CI gate).")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Slowest spans to list (default 10).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Ingest run artifacts (BENCH_*.json generations, span JSONL,            campaign coverage JSON) and print a trend report: per-program            dyn-ckpt/cycle deltas, top-k slowest spans, worker utilization            — optionally gated against regression budgets")
    Term.(
      ret
        (const do_stats $ bench_files $ span_files $ coverage_files
       $ budgets_file $ gate_flag $ top))

(* --- list-benchmarks --- *)

let list_cmd =
  Cmd.v (Cmd.info "list-benchmarks" ~doc:"List the built-in benchmarks")
    Term.(
      const (fun () ->
          List.iter
            (fun (b : W.benchmark) ->
              Printf.printf "%-10s %s\n" b.name b.description)
            W.all)
      $ const ())

let main =
  Cmd.group
    (Cmd.info "iclang" ~version:"1.0"
       ~doc:"WARio: efficient code generation for intermittent computing")
    [ compile_cmd; run_cmd; trace_cmd; verify_cmd; certify_cmd; pgo_cmd;
      serve_cmd; stats_cmd; list_cmd ]

let () = exit (Cmd.eval main)
