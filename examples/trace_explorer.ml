(* Explore how power-supply conditions interact with checkpoint placement.

     dune exec examples/trace_explorer.exe

   Reproduces the methodology of the paper's Table 3 interactively on one
   benchmark: sweep fixed on-periods and the two synthetic harvester traces,
   and report re-execution overhead and failure counts, plus the
   idempotent-region statistics that bound the minimum usable on-time. *)

module P = Wario.Pipeline
module R = Wario.Run
module E = Wario_emulator
module Report = Wario.Report

let () =
  let bench = Wario_workloads.Programs.find "sha" in
  Printf.printf "== power exploration: %s ==\n\n" bench.name;
  let c = P.compile P.Wario_expander bench.source in
  let cont = (R.continuous c).R.result in
  Printf.printf "continuous: %d cycles, %d checkpoints\n\n"
    cont.E.Emulator.cycles cont.E.Emulator.checkpoints_total;

  (* region statistics determine the minimum viable on-period *)
  let s = Report.summarize_regions cont.E.Emulator.region_sizes in
  Printf.printf
    "idempotent regions: p25=%d median=%d p75=%d mean=%.0f max=%d cycles\n"
    s.rs_p25 s.rs_median s.rs_p75 s.rs_mean s.rs_max;
  Printf.printf
    "=> any on-period above ~%d cycles (max region + boot + restore)\n\
    \   guarantees forward progress; that is %.1f ms at 8 MHz.\n\n"
    (s.rs_max + 500)
    (float_of_int (s.rs_max + 500) /. 8000.);

  let row name supply =
    match
      E.Emulator.run ~supply c.P.image
    with
    | r ->
        Printf.printf "%-24s overhead %6.2f%%   power failures %6d\n" name
          (100.
          *. float_of_int (r.E.Emulator.cycles - cont.E.Emulator.cycles)
          /. float_of_int cont.E.Emulator.cycles)
          r.E.Emulator.power_failures;
        assert (r.E.Emulator.output = cont.E.Emulator.output)
    | exception E.Emulator.No_forward_progress _ ->
        Printf.printf "%-24s no forward progress\n" name
  in
  print_endline "-- fixed on-periods (paper Table 3) --";
  List.iter
    (fun cycles ->
      row
        (Printf.sprintf "%d cycles" cycles)
        (E.Power.Periodic cycles))
    [ 50_000; 100_000; 1_000_000; 5_000_000 ];
  print_endline "\n-- synthetic harvester traces --";
  row "rf harvester (theta)" (E.Power.Trace (E.Traces.rf_trace ()));
  row "solar harvester (beta)" (E.Power.Trace (E.Traces.solar_trace ()))
