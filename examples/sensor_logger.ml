(* A battery-free sensor logger running off synthetic harvested energy.

     dune exec examples/sensor_logger.exe

   The motivating scenario of the paper's introduction: a sensing loop on a
   device powered by an energy harvester.  We compile the moving-average
   filter from the workload library for every software environment and
   replay the synthetic RF-harvester trace, comparing how much of the energy
   each environment wastes on checkpoints and re-execution. *)

module P = Wario.Pipeline
module R = Wario.Run
module E = Wario_emulator

let () =
  let m = Wario_workloads.Micro.find "sensor" in
  print_endline "== sensor logger on an RF energy harvester ==\n";
  let trace = E.Traces.rf_trace ~n:2048 () in
  Printf.printf
    "trace: %d on-periods, mean %d cycles (bursty RF harvesting)\n\n"
    (Array.length trace) (E.Traces.mean trace);

  (* baseline cost under continuous power *)
  let plain_cycles =
    (R.continuous (P.compile P.Plain m.source)).R.result.E.Emulator.cycles
  in

  Printf.printf "%-22s %10s %8s %9s %10s %9s\n" "environment" "cycles"
    "ckpts" "failures" "overhead" "output ok";
  List.iter
    (fun env ->
      let c = P.compile env m.source in
      let o = (R.with_trace ~trace c).R.result in
      R.check_no_violations { R.result = o; compiled = c };
      Printf.printf "%-22s %10d %8d %9d %9.1f%% %9b\n"
        (P.environment_name env) o.E.Emulator.cycles
        o.E.Emulator.checkpoints_total o.E.Emulator.power_failures
        (100.
        *. float_of_int (o.E.Emulator.cycles - plain_cycles)
        /. float_of_int plain_cycles)
        (o.E.Emulator.output = m.expected))
    [ P.Ratchet; P.R_pdg; P.Wario; P.Wario_expander ];

  print_endline
    "\nEvery environment computes the same history checksum across dozens\n\
     of power failures; WARio just gets there on less energy.";

  (* show the forward-progress guarantee: even very short on-times work *)
  print_endline "\n-- forward progress at short activity times --";
  let c = P.compile P.Wario m.source in
  List.iter
    (fun on ->
      match R.periodic ~on_cycles:on c with
      | o ->
          Printf.printf
            "  on-period %6d cycles: finished after %4d power failures\n" on
            o.R.result.E.Emulator.power_failures
      | exception E.Emulator.No_forward_progress _ ->
          Printf.printf "  on-period %6d cycles: no forward progress\n" on)
    [ 2500; 12_000; 20_000; 50_000; 100_000 ]
