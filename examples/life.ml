(* A battery-free Game of Life (a nod to the paper's battery-free Game Boy
   citation [13]): the whole world state lives in non-volatile memory and
   the simulation steps forward through dozens of power failures.

     dune exec examples/life.exe

   The double-buffered world update is WAR-free by itself, but the
   generation counter, population accounting and activity histogram are all
   read-modify-write on NVM — without checkpointing, re-execution after a
   power failure would corrupt them. *)

module P = Wario.Pipeline
module R = Wario.Run
module E = Wario_emulator

let source =
  {|
/* Conway's Game of Life on a 24x16 torus, double buffered in NVM. */
unsigned char world[384];     /* current generation */
unsigned char scratch[384];   /* next generation */
int generation = 0;
int activity[8];              /* population histogram over time */
unsigned census = 0;

int idx(int x, int y) {
  /* torus wrap */
  int xx = (x + 24) % 24;
  int yy = (y + 16) % 16;
  return yy * 24 + xx;
}

int neighbours(int x, int y) {
  int n = 0;
  int dx, dy;
  for (dy = -1; dy <= 1; dy++) {
    for (dx = -1; dx <= 1; dx++) {
      if (dx != 0 || dy != 0) {
        n = n + (int)world[idx(x + dx, y + dy)];
      }
    }
  }
  return n;
}

void step(void) {
  int x, y;
  for (y = 0; y < 16; y++) {
    for (x = 0; x < 24; x++) {
      int n = neighbours(x, y);
      int alive = (int)world[idx(x, y)];
      int next = 0;
      if (alive && (n == 2 || n == 3)) next = 1;
      if (!alive && n == 3) next = 1;
      scratch[idx(x, y)] = (unsigned char)next;
    }
  }
  /* commit: WARs on every live cell */
  for (y = 0; y < 384; y++) world[y] = scratch[y];
  generation = generation + 1;
}

int population(void) {
  int p = 0;
  int i;
  for (i = 0; i < 384; i++) p = p + (int)world[i];
  return p;
}

int main(void) {
  int i, g;
  /* seed: a glider, a blinker, and an R-pentomino */
  world[idx(2, 1)] = 1; world[idx(3, 2)] = 1;
  world[idx(1, 3)] = 1; world[idx(2, 3)] = 1; world[idx(3, 3)] = 1;
  world[idx(10, 8)] = 1; world[idx(11, 8)] = 1; world[idx(12, 8)] = 1;
  world[idx(18, 5)] = 1; world[idx(19, 5)] = 1;
  world[idx(17, 6)] = 1; world[idx(18, 6)] = 1;
  world[idx(18, 7)] = 1;
  for (i = 0; i < 8; i++) activity[i] = 0;
  for (g = 0; g < 24; g++) {
    step();
    int p = population();
    activity[(p >> 2) & 7] = activity[(p >> 2) & 7] + 1;
    census = census * 31u + (unsigned)p;
  }
  print_int(generation);
  print_int(population());
  print_int((int)census);
  return 0;
}
|}

let () =
  print_endline "== battery-free Game of Life ==\n";
  let wario = P.compile P.Wario source in
  let cont = (R.continuous wario).R.result in
  Printf.printf
    "continuous run: %d generations, final population %s, census %s\n"
    (Int32.to_int (List.nth cont.E.Emulator.output 0))
    (Int32.to_string (List.nth cont.E.Emulator.output 1))
    (Int32.to_string (List.nth cont.E.Emulator.output 2));
  Printf.printf "  (%d cycles, %d checkpoints)\n\n" cont.E.Emulator.cycles
    cont.E.Emulator.checkpoints_total;

  print_endline "-- now on harvested energy --";
  List.iter
    (fun (name, supply) ->
      match E.Emulator.run ~supply wario.P.image with
      | r ->
          assert (r.E.Emulator.output = cont.E.Emulator.output);
          assert (r.E.Emulator.violations = []);
          Printf.printf
            "%-22s identical world after %4d power failures (+%.1f%% cycles)\n"
            name r.E.Emulator.power_failures
            (100.
            *. float_of_int (r.E.Emulator.cycles - cont.E.Emulator.cycles)
            /. float_of_int cont.E.Emulator.cycles)
      | exception E.Emulator.No_forward_progress _ ->
          Printf.printf "%-22s no forward progress\n" name)
    [
      ("20k-cycle on-periods", E.Power.Periodic 20_000);
      ("100k-cycle on-periods", E.Power.Periodic 100_000);
      ("rf harvester trace", E.Power.Trace (E.Traces.rf_trace ()));
      ("solar harvester trace", E.Power.Trace (E.Traces.solar_trace ()));
    ];

  (* the punchline: the same program UNPROTECTED cannot survive; its RMW
     counters are corrupted by re-execution (the verifier proves the hazard
     even under continuous power) *)
  let plain = P.compile P.Plain source in
  let unprotected = E.Emulator.run plain.P.image in
  Printf.printf
    "\nunprotected build: %d WAR corruption sites flagged by the verifier\n"
    (List.length unprotected.E.Emulator.violations);
  print_endline "(every one is a location a power failure could corrupt)"
