(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) on the TM2 emulator, plus Bechamel micro-benchmarks of
   the compiler itself (one Test.make per table/figure family).

     dune exec bench/main.exe                     # everything
     dune exec bench/main.exe fig4                # one artefact
     dune exec bench/main.exe fig4 tab3           # several
     dune exec bench/main.exe -- --list           # artefact names
     dune exec bench/main.exe -- --out-dir d fig4 # write d/fig4.txt
     dune exec bench/main.exe -- --jobs 8 perf    # perf + BENCH_4.json
     dune exec bench/main.exe -- --small --artefact perf   # CI smoke

   Artefacts: fig4 fig5 tab1 tab2 fig6 fig7 tab3 tab4 ext cert profile
   bechamel perf emu place place6.  The compile+run cache is prefilled on --jobs
   domains (default and 0: the host's domain count; results are identical
   for any value).
   Absolute numbers differ from the paper (different substrate,
   scaled inputs — see DESIGN.md §7); the comparisons and shapes are the
   result. *)

module P = Wario.Pipeline
module E = Wario_emulator
module O = Wario_obs
module Report = Wario.Report
module W = Wario_workloads.Programs
module X = Wario_exec.Exec

let benchmarks = W.all

(* Span recording: live exactly when --span-out/--span-jsonl was given.
   The driver wraps every artefact in a "bench.<name>" span and the
   parallel fan-outs below contribute pool/worker utilization spans; the
   recorder is only ever touched by the driver domain. *)
let opt_span_out : string option ref = ref None
let opt_span_jsonl : string option ref = ref None
let spans = ref O.Span.disabled

let instrumented_envs =
  [ P.Ratchet; P.R_pdg; P.Epilog_opt; P.Write_cluster; P.Loop_cluster;
    P.Wario; P.Wario_expander ]

(* ------------------------------------------------------------------ *)
(* Cached compile+run                                                   *)
(* ------------------------------------------------------------------ *)

type entry = { compiled : P.compiled; run : E.Emulator.result }

let cache : (string * string, entry) Hashtbl.t = Hashtbl.create 64

let key_of ~unroll (b : W.benchmark) env =
  (b.W.name, P.environment_name env ^ "@" ^ string_of_int unroll)

let compute ~unroll (b : W.benchmark) (env : P.environment) : entry =
  let opts = { P.default_options with unroll_factor = unroll } in
  let compiled = P.compile ~opts env b.source in
  let run = E.Emulator.run ~verify:(env <> P.Plain) compiled.P.image in
  { compiled; run }

let warn_violations (b : W.benchmark) env e =
  match e.run.E.Emulator.violations with
  | _ :: _ when env <> P.Plain ->
      Printf.eprintf "*** %s [%s]: %d WAR violations!\n" b.name
        (P.environment_name env)
        (List.length e.run.E.Emulator.violations)
  | _ -> ()

let get ?(unroll = 8) (b : W.benchmark) (env : P.environment) : entry =
  let key = key_of ~unroll b env in
  match Hashtbl.find_opt cache key with
  | Some e -> e
  | None ->
      let e = compute ~unroll b env in
      warn_violations b env e;
      Hashtbl.replace cache key e;
      e

(* Warm the cache for a grid of cases on [jobs] domains.  The Hashtbl is
   not domain-safe, so the jobs only compile and run (each builds its own
   program and emulator); the fill — and the violation warnings — happen
   here, sequentially, in input order. *)
let prefill ~jobs ?(unroll = 8) (grid : (W.benchmark * P.environment) list) =
  let missing =
    List.filter (fun (b, env) -> not (Hashtbl.mem cache (key_of ~unroll b env))) grid
  in
  X.map ~jobs ~spans:!spans ~label:"bench.prefill"
    (fun (b, env) -> compute ~unroll b env)
    missing
  |> List.iter2
       (fun (b, env) e ->
         warn_violations b env e;
         Hashtbl.replace cache (key_of ~unroll b env) e)
       missing

let norm_time b env =
  let plain = (get b P.Plain).run.E.Emulator.cycles in
  float_of_int (get b env).run.E.Emulator.cycles /. float_of_int plain

(* ------------------------------------------------------------------ *)
(* Figure 4: normalized execution time                                  *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  print_endline
    "\n=== Figure 4: execution time normalized to uninstrumented C ===\n";
  let header = "benchmark" :: List.map P.environment_name instrumented_envs in
  let rows =
    List.map
      (fun b ->
        b.W.name
        :: List.map
             (fun env -> Printf.sprintf "%.3f" (norm_time b env))
             instrumented_envs)
      benchmarks
  in
  let avg env =
    let xs = List.map (fun b -> norm_time b env) benchmarks in
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  let avg_row =
    "AVERAGE"
    :: List.map (fun env -> Printf.sprintf "%.3f" (avg env)) instrumented_envs
  in
  print_string (Report.table header (rows @ [ avg_row ]));
  let overhead env = avg env -. 1. in
  let reduction base target =
    100. *. (overhead base -. overhead target) /. overhead base
  in
  Printf.printf
    "\ncheckpoint overhead of WARio vs Ratchet: %.1f%% lower (paper: 45.6%%)\n"
    (reduction P.Ratchet P.Wario);
  Printf.printf
    "checkpoint overhead of WARio vs R-PDG:  %.1f%% lower (paper: 27.7%%)\n"
    (reduction P.R_pdg P.Wario);
  Printf.printf
    "WARio+Expander vs Ratchet: %.1f%% lower (paper: 58.1%%); vs R-PDG: %.1f%% \
     (paper: 44.3%%)\n"
    (reduction P.Ratchet P.Wario_expander)
    (reduction P.R_pdg P.Wario_expander);
  (* decompose the overhead: which cycles are first-execution work and
     which are the intermittent tax (boot, restore replay, re-execution)?
     Under continuous power only the initial boot is overhead, so the
     interesting split needs an intermittent supply. *)
  print_endline
    "\n-- wasted-cycle decomposition (wario-expander, periodic 100k-cycle \
     on-period) --";
  let rows =
    List.map
      (fun b ->
        match
          E.Emulator.run
            ~supply:(E.Power.Periodic 100_000)
            ~verify:false
            (get b P.Wario_expander).compiled.P.image
        with
        | r ->
            let w = r.E.Emulator.waste in
            let pct n =
              Printf.sprintf "%.2f%%"
                (100. *. float_of_int n /. float_of_int r.E.Emulator.cycles)
            in
            [
              b.W.name;
              string_of_int r.E.Emulator.cycles;
              pct w.E.Emulator.w_useful;
              pct w.E.Emulator.w_boot;
              pct w.E.Emulator.w_restore;
              pct w.E.Emulator.w_reexec;
            ]
        | exception E.Emulator.No_forward_progress _ ->
            [ b.W.name; "stuck"; "-"; "-"; "-"; "-" ])
      benchmarks
  in
  print_string
    (Report.table
       [ "benchmark"; "cycles"; "useful"; "boot"; "restore"; "re-executed" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Figure 5: checkpoint causes, relative to R-PDG                       *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  print_endline
    "\n=== Figure 5: executed checkpoints by cause (% of R-PDG total) ===\n";
  List.iter
    (fun b ->
      let base =
        float_of_int (get b P.R_pdg).run.E.Emulator.checkpoints_total
      in
      Printf.printf "%s:\n" b.W.name;
      let header =
        [ "environment"; "fn exit %"; "fn entry %"; "back-end %";
          "middle-end %"; "total %" ]
      in
      let rows =
        List.map
          (fun env ->
            let c = (get b env).run.E.Emulator.checkpoints in
            let pct n =
              Printf.sprintf "%.1f" (100. *. float_of_int n /. base)
            in
            [
              P.environment_name env;
              pct c.E.Emulator.c_exit;
              pct c.E.Emulator.c_entry;
              pct c.E.Emulator.c_backend;
              pct c.E.Emulator.c_middle;
              pct
                (c.E.Emulator.c_exit + c.E.Emulator.c_entry
               + c.E.Emulator.c_backend + c.E.Emulator.c_middle);
            ])
          [ P.R_pdg; P.Epilog_opt; P.Write_cluster; P.Loop_cluster; P.Wario;
            P.Wario_expander ]
      in
      print_string (Report.table header rows);
      print_newline ())
    benchmarks

(* ------------------------------------------------------------------ *)
(* Table 1: executed checkpoints vs Ratchet                             *)
(* ------------------------------------------------------------------ *)

let tab1 () =
  print_endline
    "\n=== Table 1: change in executed checkpoints vs Ratchet ===\n";
  let delta b env =
    let r = float_of_int (get b P.Ratchet).run.E.Emulator.checkpoints_total in
    let v = float_of_int (get b env).run.E.Emulator.checkpoints_total in
    100. *. (v -. r) /. r
  in
  let rows =
    List.map
      (fun b ->
        [
          b.W.name;
          Printf.sprintf "%.1f%%" (delta b P.Wario);
          Printf.sprintf "%.1f%%" (delta b P.Wario_expander);
        ])
      benchmarks
  in
  let avg env =
    let xs = List.map (fun b -> delta b env) benchmarks in
    Printf.sprintf "%.1f%%"
      (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
  in
  print_string
    (Report.table
       [ "benchmark"; "WARio"; "WARio+Expander" ]
       (rows @ [ [ "average"; avg P.Wario; avg P.Wario_expander ] ]));
  print_endline "(paper: average -47.6% / -50.2%)"

(* ------------------------------------------------------------------ *)
(* Table 2: code size                                                   *)
(* ------------------------------------------------------------------ *)

let tab2 () =
  print_endline "\n=== Table 2: .text size increase vs uninstrumented C ===\n";
  let delta b env =
    let plain = float_of_int (get b P.Plain).compiled.P.text_bytes in
    let v = float_of_int (get b env).compiled.P.text_bytes in
    100. *. (v -. plain) /. plain
  in
  let rows =
    List.map
      (fun b ->
        [
          b.W.name;
          string_of_int (get b P.Plain).compiled.P.text_bytes;
          Printf.sprintf "%+.1f%%" (delta b P.Ratchet);
          Printf.sprintf "%+.1f%%" (delta b P.Wario);
          Printf.sprintf "%+.1f%%" (delta b P.Wario_expander);
          Printf.sprintf "+%dB"
            ((get b P.Wario).compiled.P.text_bytes
            - (get b P.Plain).compiled.P.text_bytes);
        ])
      benchmarks
  in
  let avg env =
    let xs = List.map (fun b -> delta b env) benchmarks in
    Printf.sprintf "%+.1f%%"
      (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))
  in
  print_string
    (Report.table
       [ "benchmark"; "plain B"; "Ratchet"; "WARio"; "WARio+Expander";
         "WARio abs" ]
       (rows
       @ [ [ "average"; ""; avg P.Ratchet; avg P.Wario; avg P.Wario_expander;
             "" ] ]));
  print_endline
    "(paper: average +18.4% / +18.7% / +32.9%.  Relative growth diverges\n\
    \ here because our ports are almost entirely hot loop: unrolling the\n\
    \ loops that ARE the benchmark multiplies .text, where the paper's\n\
    \ binaries amortise it over large cold sections.  Ratchet's +7% and the\n\
    \ absolute deltas of a few KiB match the paper's observation that a\n\
    \ checkpoint is just one jump instruction.)"

(* ------------------------------------------------------------------ *)
(* Figure 6: unroll factor sweep                                        *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  print_endline
    "\n=== Figure 6: Loop Write Clusterer unroll factor N (SHA, Tiny AES, \
     CoreMark) ===\n";
  let subset =
    List.filter
      (fun b -> List.mem b.W.name [ "sha"; "aes"; "coremark" ])
      benchmarks
  in
  let factors = [ 1; 2; 4; 6; 8; 10; 15; 20; 25; 30 ] in
  List.iter
    (fun b ->
      Printf.printf "%s:\n" b.W.name;
      let base = get ~unroll:1 b P.Loop_cluster in
      let b_mid = base.run.E.Emulator.checkpoints.E.Emulator.c_middle in
      let b_cyc = base.run.E.Emulator.cycles in
      let rows =
        List.map
          (fun n ->
            let e = get ~unroll:n b P.Loop_cluster in
            let c = e.run.E.Emulator.checkpoints in
            [
              string_of_int n;
              Printf.sprintf "%.1f"
                (100. *. float_of_int c.E.Emulator.c_middle
                /. float_of_int (max 1 b_mid));
              string_of_int c.E.Emulator.c_backend;
              Printf.sprintf "%.1f"
                (100.
                *. float_of_int (b_cyc - e.run.E.Emulator.cycles)
                /. float_of_int b_cyc);
              string_of_int e.run.E.Emulator.checkpoints_total;
            ])
          factors
      in
      print_string
        (Report.table
           [ "N"; "middle-end ckpts %"; "back-end ckpts";
             "time reduction %"; "total ckpts" ]
           rows);
      print_newline ())
    subset;
  print_endline
    "(paper: substantial improvement already at N=2; plateau around N=8; \
     back-end\n checkpoints grow with N)"

(* ------------------------------------------------------------------ *)
(* Figure 7: idempotent region sizes                                    *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  print_endline
    "\n=== Figure 7: idempotent region sizes (cycles between checkpoints) \
     ===\n";
  List.iter
    (fun b ->
      Printf.printf "%s:\n" b.W.name;
      let rows =
        List.map
          (fun env ->
            let s =
              Report.summarize_regions (get b env).run.E.Emulator.region_sizes
            in
            [
              P.environment_name env;
              string_of_int s.Report.rs_p25;
              string_of_int s.Report.rs_median;
              string_of_int s.Report.rs_p75;
              Printf.sprintf "%.0f" s.Report.rs_mean;
              string_of_int s.Report.rs_max;
            ])
          [ P.Ratchet; P.R_pdg; P.Wario ]
      in
      print_string
        (Report.table
           [ "environment"; "p25"; "median"; "p75"; "mean"; "max" ]
           rows);
      print_newline ())
    benchmarks;
  print_endline
    "(paper: medians barely move; means and maxima grow — the removed\n\
    \ checkpoints sat in small regions)"

(* ------------------------------------------------------------------ *)
(* Table 3: intermittent power                                          *)
(* ------------------------------------------------------------------ *)

let tab3 () =
  print_endline
    "\n=== Table 3: re-execution overhead O and power failures P \
     (WARio+Expander) ===\n";
  let supplies =
    [
      ("50k cyc {6.2ms@8MHz}", E.Power.Periodic 50_000);
      ("100k cyc {12.5ms}", E.Power.Periodic 100_000);
      ("1M cyc {125ms}", E.Power.Periodic 1_000_000);
      ("5M cyc {625ms}", E.Power.Periodic 5_000_000);
      ("trace theta (rf)", E.Power.Trace (E.Traces.rf_trace ()));
      ("trace beta (solar)", E.Power.Trace (E.Traces.solar_trace ()));
    ]
  in
  let header =
    "power on duration"
    :: List.concat_map (fun (b : W.benchmark) -> [ b.name ^ " O"; "P" ])
         benchmarks
  in
  let rows =
    List.map
      (fun (name, supply) ->
        name
        :: List.concat_map
             (fun b ->
               let cont = (get b P.Wario_expander).run.E.Emulator.cycles in
               match
                 E.Emulator.run ~supply ~verify:false
                   (get b P.Wario_expander).compiled.P.image
               with
               | r ->
                   [
                     Printf.sprintf "%.2f%%"
                       (100.
                       *. float_of_int (r.E.Emulator.cycles - cont)
                       /. float_of_int cont);
                     string_of_int r.E.Emulator.power_failures;
                   ]
               | exception E.Emulator.No_forward_progress _ ->
                   [ "stuck"; "-" ])
             benchmarks)
      supplies
  in
  print_string (Report.table header rows);
  print_endline
    "\n(paper: overhead < 1% except at very short on-times; P falls as the\n\
    \ on-period grows.  Our benchmarks finish in fewer cycles than the\n\
    \ paper's, so P is proportionally smaller at equal on-times.)"

(* ------------------------------------------------------------------ *)
(* Extensions (paper §6 discussion items, implemented here)             *)
(* ------------------------------------------------------------------ *)

let ext () =
  print_endline
    "\n=== Extensions: profile-guided Expander and region bounding (paper      §6) ===\n";
  (* profile-guided expander ablation *)
  print_endline "-- Expander: structural guess vs call-count profile --";
  let rows =
    List.filter_map
      (fun b ->
        if not (List.mem b.W.name [ "crc"; "aes"; "picojpeg" ]) then None
        else begin
          let blind = get b P.Wario_expander in
          let profile = blind.run.E.Emulator.call_counts in
          let opts =
            { P.default_options with expander_profile = Some profile }
          in
          let guided = P.compile ~opts P.Wario_expander b.W.source in
          let rg = E.Emulator.run guided.P.image in
          Some
            [
              b.W.name;
              string_of_int blind.run.E.Emulator.checkpoints_total;
              string_of_int rg.E.Emulator.checkpoints_total;
              Printf.sprintf "%.2f"
                (float_of_int rg.E.Emulator.cycles
                /. float_of_int (get b P.Plain).run.E.Emulator.cycles);
            ]
        end)
      benchmarks
  in
  print_string
    (Report.table
       [ "benchmark"; "ckpts (blind)"; "ckpts (profiled)"; "norm time" ]
       rows);
  (* region bounding ablation: minimum viable on-period *)
  print_endline
    "\n-- Region bounder: maximum region size and minimum viable on-time --";
  let b = W.find "sha" in
  let rows =
    List.map
      (fun bound ->
        let opts = { P.default_options with max_region = bound } in
        let c = P.compile ~opts P.Wario b.W.source in
        let r = E.Emulator.run c.P.image in
        let s = Report.summarize_regions r.E.Emulator.region_sizes in
        [
          (match bound with None -> "unbounded" | Some n -> string_of_int n);
          string_of_int s.Report.rs_max;
          string_of_int r.E.Emulator.checkpoints_total;
          Printf.sprintf "%.3f"
            (float_of_int r.E.Emulator.cycles
            /. float_of_int (get b P.Plain).run.E.Emulator.cycles);
          Printf.sprintf "%.2f ms"
            (float_of_int (s.Report.rs_max + 500) /. 8000.);
        ])
      [ None; Some 2000; Some 500; Some 120 ]
  in
  print_string
    (Report.table
       [ "bound"; "max region"; "ckpts"; "norm time"; "min on-time @8MHz" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Certifier cost: static WAR-freedom check wall-time                   *)
(* ------------------------------------------------------------------ *)

let cert () =
  print_endline
    "\n=== Certifier: static WAR-freedom check wall-time per benchmark × \
     environment ===\n";
  let header = "benchmark" :: List.map P.environment_name instrumented_envs in
  let rows =
    List.map
      (fun b ->
        b.W.name
        :: List.map
             (fun env ->
               let e = get b env in
               let t0 = Unix.gettimeofday () in
               let v = P.certify e.compiled in
               let dt = (Unix.gettimeofday () -. t0) *. 1000. in
               match v with
               | Wario_certify.Certify.Certified st ->
                   Printf.sprintf "%.1f ms (%d pairs)" dt
                     st.Wario_certify.Certify.s_pairs
               | Wario_certify.Certify.Rejected _ ->
                   Printf.sprintf "%.1f ms REJECTED" dt)
             instrumented_envs)
      benchmarks
  in
  print_string (Report.table header rows);
  print_endline
    "\n(compile-time cost of [iclang certify]; every cell should certify —\n\
    \ a REJECTED here is a pipeline bug, see lib/certify)"

(* ------------------------------------------------------------------ *)
(* Profile: traced per-function attribution (lib/obs)                   *)
(* ------------------------------------------------------------------ *)

let profile () =
  print_endline
    "\n=== Profile: traced per-function cycle attribution (lib/obs) ===\n";
  List.iter
    (fun b ->
      Printf.printf "%s:\n" b.W.name;
      let traced env =
        let compiled = (get b env).compiled in
        let sink = O.Trace.ring () in
        let r = E.Emulator.run ~verify:false ~tracer:sink compiled.P.image in
        (r, O.Profile.of_events (O.Trace.events sink))
      in
      let rows =
        List.map
          (fun env ->
            let r, p = traced env in
            let total = max 1 p.O.Profile.total_cycles in
            let ckpt_cycles =
              List.fold_left
                (fun a (fr : O.Profile.fn_row) -> a + fr.O.Profile.fn_ckpt_cycles)
                0 p.O.Profile.rows
            in
            let hottest =
              match p.O.Profile.rows with
              | [] -> "-"
              | fr :: _ ->
                  Printf.sprintf "%s (%.1f%%)" fr.O.Profile.fn_name
                    (100.
                    *. float_of_int fr.O.Profile.fn_cycles
                    /. float_of_int total)
            in
            [
              P.environment_name env;
              string_of_int r.E.Emulator.cycles;
              string_of_int r.E.Emulator.checkpoints_total;
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int ckpt_cycles /. float_of_int total);
              hottest;
            ])
          instrumented_envs
      in
      print_string
        (Report.table
           [ "environment"; "cycles"; "ckpts"; "commit %"; "hottest function" ]
           rows);
      (* detailed per-function breakdown for the flagship environment *)
      let _, p = traced P.Wario_expander in
      Printf.printf "\n%s, wario-expander, per function:\n" b.W.name;
      print_string (Report.profile_table ~top:6 p);
      print_newline ())
    benchmarks;
  print_endline
    "(self cycles per function from the event trace; commit %% is the share\n\
    \ of cycles spent inside checkpoint commits.  [iclang trace] emits the\n\
    \ same data as Chrome JSON for Perfetto.)"

(* ------------------------------------------------------------------ *)
(* Table 4                                                              *)
(* ------------------------------------------------------------------ *)

let tab4 () =
  print_newline ();
  print_string (Report.table4 ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel: compiler throughput micro-benchmarks                       *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  print_endline
    "\n=== Bechamel: compiler pass timings (one per artefact family) ===\n";
  let open Bechamel in
  let sha = W.find "sha" in
  let mk_prog () =
    let p = Wario_minic.Minic.compile sha.W.source in
    Wario_transforms.Opt_pipeline.run p;
    p
  in
  let precompiled = P.compile P.Wario sha.W.source in
  let tests =
    [
      Test.make ~name:"fig4.compile-wario"
        (Staged.stage (fun () -> ignore (P.compile P.Wario sha.W.source)));
      Test.make ~name:"fig5.checkpoint-inserter"
        (Staged.stage (fun () ->
             ignore (Wario_transforms.Checkpoint_inserter.run (mk_prog ()))));
      Test.make ~name:"tab1.compile-ratchet"
        (Staged.stage (fun () -> ignore (P.compile P.Ratchet sha.W.source)));
      Test.make ~name:"tab2.encode-text-size"
        (Staged.stage (fun () ->
             ignore (Wario_machine.Encode.text_size precompiled.P.mprog)));
      Test.make ~name:"fig6.loop-write-clusterer"
        (Staged.stage (fun () ->
             ignore
               (Wario_transforms.Loop_write_clusterer.run ~unroll_factor:8
                  (mk_prog ()))));
      Test.make ~name:"fig7.frontend-and-o3"
        (Staged.stage (fun () -> ignore (mk_prog ())));
      Test.make ~name:"tab3.trace-generation"
        (Staged.stage (fun () -> ignore (E.Traces.rf_trace ())));
    ]
  in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raws =
    Benchmark.all cfg instances (Test.make_grouped ~name:"wario" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raws in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let v =
        match Analyze.OLS.estimates est with
        | Some (v :: _) -> Printf.sprintf "%.0f ns/run" v
        | _ -> "n/a"
      in
      rows := [ name; v ] :: !rows)
    results;
  print_string (Report.table [ "pass"; "time" ] (List.sort compare !rows))

(* ------------------------------------------------------------------ *)
(* Perf: emulator throughput and harness wall-clock (BENCH_4.json)      *)
(* ------------------------------------------------------------------ *)

(* Set by the driver before artefacts run. *)
let opt_jobs = ref 0 (* 0 = not set: use X.default_jobs () *)
let opt_small = ref false

(* --engine: engine for artefact emulator runs that are not themselves
   engine comparisons (the perf/emu engine tables always run the full
   reference/uop/block ladder regardless). *)
let opt_engine = ref E.Emulator.Auto
let opt_out_dir : string option ref = ref None

let resolved_jobs () = if !opt_jobs >= 1 then !opt_jobs else X.default_jobs ()

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* best-of-N wall-clock (min, the standard throughput estimator) *)
let best_of reps f =
  let r, t0 = time_of f in
  let best = ref t0 in
  for _ = 2 to reps do
    let _, t = time_of f in
    if t < !best then best := t
  done;
  (r, !best)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let perf () =
  print_endline
    "\n=== Perf: emulator fast-path throughput and parallel harness \
     wall-clock ===\n";
  let reps = if !opt_small then 2 else 3 in
  (* -- emulator throughput: largest benchmark (by executed instructions,
        wario environment), continuous supply -- *)
  let largest =
    List.fold_left
      (fun acc b ->
        let n = (get b P.Wario).run.E.Emulator.instrs in
        match acc with
        | Some (_, best) when best >= n -> acc
        | _ -> Some (b, n))
      None benchmarks
    |> Option.get |> fst
  in
  let image = (get largest P.Wario).compiled.P.image in
  let run_engine ~verify engine () = E.Emulator.run ~verify ~engine image in
  let r_ref_verify, t_ref_verify =
    best_of reps (run_engine ~verify:true E.Emulator.Reference)
  in
  let r_ref, t_ref =
    best_of reps (run_engine ~verify:false E.Emulator.Reference)
  in
  let r_uop, t_uop = best_of reps (run_engine ~verify:false E.Emulator.Uop) in
  let r_blk, t_blk = best_of reps (run_engine ~verify:false E.Emulator.Block) in
  let fast_eq = r_uop = r_ref && r_blk = r_ref in
  let fast_eq_verify =
    (* verify-on differs only in that it can report violations *)
    r_uop = { r_ref_verify with E.Emulator.violations = [] }
    && r_ref_verify.E.Emulator.violations = []
  in
  if not (fast_eq && fast_eq_verify) then
    failwith "perf: a fast engine diverged from the reference engine";
  let ips t = float_of_int r_uop.E.Emulator.instrs /. t in
  let rows =
    [
      [ "reference, verify on"; Printf.sprintf "%.3f s" t_ref_verify;
        Printf.sprintf "%.2fM instr/s" (ips t_ref_verify /. 1e6); "1.00" ];
      [ "reference, verify off"; Printf.sprintf "%.3f s" t_ref;
        Printf.sprintf "%.2fM instr/s" (ips t_ref /. 1e6);
        Printf.sprintf "%.2f" (t_ref_verify /. t_ref) ];
      [ "uop"; Printf.sprintf "%.3f s" t_uop;
        Printf.sprintf "%.2fM instr/s" (ips t_uop /. 1e6);
        Printf.sprintf "%.2f" (t_ref_verify /. t_uop) ];
      [ "block"; Printf.sprintf "%.3f s" t_blk;
        Printf.sprintf "%.2fM instr/s" (ips t_blk /. 1e6);
        Printf.sprintf "%.2f" (t_ref_verify /. t_blk) ];
    ]
  in
  Printf.printf "emulator throughput: %s, %d instrs, continuous supply, \
                 best of %d\n"
    largest.W.name r_uop.E.Emulator.instrs reps;
  print_string
    (Report.table [ "engine"; "wall"; "throughput"; "speedup" ] rows);
  Printf.printf
    "uop/block = reference (verify off): %b; = reference (verify on, modulo \
     violations=[]): %b\n"
    fast_eq fast_eq_verify;
  (* -- harness wall-clock: schedule fan-out at jobs=1 vs jobs=N -- *)
  let module H = Wario_verify.Harness in
  let par_jobs = resolved_jobs () in
  let config jobs =
    {
      H.default_config with
      H.workloads =
        List.filter
          (fun (n, _) -> List.mem n [ "rmw_loop"; "byte_ops" ])
          H.default_config.H.workloads;
      envs = [ P.Wario; P.Wario_expander ];
      schedules_per_case = (if !opt_small then 24 else 100);
      exhaustive_limit = (if !opt_small then 24 else 100);
      jobs;
      engine = !opt_engine;
    }
  in
  let sweep jobs () = H.sweep (config jobs) in
  let reports_seq, t_seq = best_of reps (sweep 1) in
  (* on a single-core host a domain pool has no parallelism to buy and
     only adds spawn/join overhead (a previous run here clocked 0.87x):
     the fan-out degenerates to the sequential path by design *)
  if par_jobs = 1 then
    print_endline
      "\nsingle-core host: harness fan-out runs sequentially (jobs auto = 1)";
  let reports_par, t_par =
    if par_jobs > 1 then best_of reps (sweep par_jobs) else (reports_seq, t_seq)
  in
  let identical = reports_seq = reports_par in
  if not identical then
    failwith "perf: parallel harness reports differ from sequential";
  let schedules =
    List.fold_left (fun a r -> a + r.H.c_schedules) 0 reports_seq
  in
  Printf.printf
    "\nharness fan-out: %d schedules, %d case(s), best of %d\n" schedules
    (List.length reports_seq) reps;
  print_string
    (Report.table
       [ "jobs"; "wall"; "speedup" ]
       [
         [ "1"; Printf.sprintf "%.3f s" t_seq; "1.00" ];
         [ string_of_int par_jobs; Printf.sprintf "%.3f s" t_par;
           Printf.sprintf "%.2f" (t_seq /. t_par) ];
       ]);
  Printf.printf "parallel report identical to sequential: %b\n" identical;
  (* -- BENCH_4.json -- *)
  let json =
    String.concat ""
      [
        "{\n";
        "  \"bench\": \"perf\",\n";
        Printf.sprintf "  \"host\": {\"recommended_domains\": %d},\n"
          (X.default_jobs ());
        Printf.sprintf "  \"small\": %b,\n" !opt_small;
        "  \"emulator\": {\n";
        Printf.sprintf "    \"benchmark\": \"%s\",\n"
          (json_escape largest.W.name);
        Printf.sprintf "    \"instrs\": %d,\n" r_uop.E.Emulator.instrs;
        Printf.sprintf "    \"reference_verify_on_s\": %.6f,\n" t_ref_verify;
        Printf.sprintf "    \"reference_verify_off_s\": %.6f,\n" t_ref;
        Printf.sprintf "    \"fast_s\": %.6f,\n" t_uop;
        Printf.sprintf "    \"fast_instr_per_s\": %.0f,\n" (ips t_uop);
        Printf.sprintf "    \"block_s\": %.6f,\n" t_blk;
        Printf.sprintf "    \"block_instr_per_s\": %.0f,\n" (ips t_blk);
        Printf.sprintf "    \"speedup_vs_reference_verify_on\": %.3f,\n"
          (t_ref_verify /. t_uop);
        Printf.sprintf "    \"speedup_vs_reference_verify_off\": %.3f,\n"
          (t_ref /. t_uop);
        Printf.sprintf "    \"fast_equals_reference\": %b\n"
          (fast_eq && fast_eq_verify);
        "  },\n";
        "  \"harness\": {\n";
        Printf.sprintf "    \"schedules\": %d,\n" schedules;
        Printf.sprintf "    \"jobs\": %d,\n" par_jobs;
        Printf.sprintf "    \"sequential_s\": %.6f,\n" t_seq;
        Printf.sprintf "    \"parallel_s\": %.6f,\n" t_par;
        Printf.sprintf "    \"speedup\": %.3f,\n" (t_seq /. t_par);
        Printf.sprintf "    \"identical_reports\": %b\n" identical;
        "  }\n";
        "}\n";
      ]
  in
  let dir = match !opt_out_dir with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_4.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Emu: engine-ladder throughput (BENCH_7.json)                          *)
(* ------------------------------------------------------------------ *)

(* Per-engine wall time of one run configuration; every engine's [result]
   is asserted byte-identical before any number is recorded. *)
type engine_row = {
  er_instrs : int;
  er_ref_s : float;
  er_uop_s : float;
  er_blk_s : float;
}

let emu_engines =
  [
    ("reference", E.Emulator.Reference);
    ("uop", E.Emulator.Uop);
    ("block", E.Emulator.Block);
  ]

let emu () =
  print_endline
    "\n=== Emu: engine ladder (reference / uop / block) throughput, \
     BENCH_7.json ===\n";
  let reps = if !opt_small then 2 else 7 in
  let progs =
    if !opt_small then
      List.filter
        (fun b -> List.mem b.W.name [ "crc"; "sha"; "aes" ])
        benchmarks
    else benchmarks
  in
  prefill ~jobs:(resolved_jobs ()) (List.map (fun b -> (b, P.Wario)) progs);
  (* one on-period for every engine of a program, so the intermittent
     numbers are comparable; generous enough that every workload makes
     forward progress *)
  let on_period = 100_000 in
  let measure image supply =
    let attempt engine () =
      E.Emulator.run ~verify:false ~supply ~engine image
    in
    let r_ref, t_ref = best_of reps (attempt E.Emulator.Reference) in
    let r_uop, t_uop = best_of reps (attempt E.Emulator.Uop) in
    let r_blk, t_blk = best_of reps (attempt E.Emulator.Block) in
    if r_uop <> r_ref then failwith "emu: uop engine diverged from reference";
    if r_blk <> r_ref then failwith "emu: block engine diverged from reference";
    {
      er_instrs = r_ref.E.Emulator.instrs;
      er_ref_s = t_ref;
      er_uop_s = t_uop;
      er_blk_s = t_blk;
    }
  in
  (* block-engine telemetry: one stepping run, untimed *)
  let block_stats image =
    let st = E.Emulator.create ~verify:false image in
    while not (E.Emulator.halted st) do
      ignore (E.Emulator.run_batch ~engine:E.Emulator.Block st 65536)
    done;
    E.Emulator.engine_stats st
  in
  let ips instrs t = float_of_int instrs /. t in
  let rows =
    List.map
      (fun b ->
        let image = (get b P.Wario).compiled.P.image in
        let cont = measure image E.Power.Continuous in
        let im = measure image (E.Power.Periodic on_period) in
        let es = block_stats image in
        (b.W.name, cont, im, es))
      progs
  in
  print_string
    (Report.table
       [ "benchmark"; "engine"; "continuous"; "intermittent"; "blk/uop" ]
       (List.concat_map
          (fun (name, c, im, _) ->
            List.map
              (fun (ename, _) ->
                let pick r =
                  match ename with
                  | "reference" -> r.er_ref_s
                  | "uop" -> r.er_uop_s
                  | _ -> r.er_blk_s
                in
                [
                  name; ename;
                  Printf.sprintf "%.2fM instr/s" (ips c.er_instrs (pick c) /. 1e6);
                  Printf.sprintf "%.2fM instr/s" (ips im.er_instrs (pick im) /. 1e6);
                  (if ename = "block" then
                     Printf.sprintf "%.2f" (c.er_uop_s /. c.er_blk_s)
                   else "");
                ])
              emu_engines)
          rows));
  let aes_speedup =
    List.fold_left
      (fun acc (name, c, _, _) ->
        if name = "aes" then c.er_uop_s /. c.er_blk_s else acc)
      0. rows
  in
  Printf.printf
    "\nall engines byte-identical on every run above: true\n\
     aes block speedup vs uop (continuous): %.2fx\n"
    aes_speedup;
  let json =
    String.concat ""
      [
        "{\n";
        "  \"bench\": \"emu\",\n";
        Printf.sprintf "  \"small\": %b,\n" !opt_small;
        Printf.sprintf "  \"reps\": %d,\n" reps;
        Printf.sprintf "  \"on_period\": %d,\n" on_period;
        "  \"programs\": [\n";
        String.concat ",\n"
          (List.map
             (fun (name, c, im, es) ->
               String.concat ""
                 [
                   "    {\n";
                   Printf.sprintf "      \"name\": \"%s\",\n" (json_escape name);
                   "      \"continuous\": {\n";
                   Printf.sprintf "        \"instrs\": %d,\n" c.er_instrs;
                   Printf.sprintf "        \"reference_instr_per_s\": %.0f,\n"
                     (ips c.er_instrs c.er_ref_s);
                   Printf.sprintf "        \"uop_instr_per_s\": %.0f,\n"
                     (ips c.er_instrs c.er_uop_s);
                   Printf.sprintf "        \"block_instr_per_s\": %.0f,\n"
                     (ips c.er_instrs c.er_blk_s);
                   Printf.sprintf "        \"block_speedup_vs_uop\": %.3f\n"
                     (c.er_uop_s /. c.er_blk_s);
                   "      },\n";
                   "      \"intermittent\": {\n";
                   Printf.sprintf "        \"instrs\": %d,\n" im.er_instrs;
                   Printf.sprintf "        \"reference_instr_per_s\": %.0f,\n"
                     (ips im.er_instrs im.er_ref_s);
                   Printf.sprintf "        \"uop_instr_per_s\": %.0f,\n"
                     (ips im.er_instrs im.er_uop_s);
                   Printf.sprintf "        \"block_instr_per_s\": %.0f,\n"
                     (ips im.er_instrs im.er_blk_s);
                   Printf.sprintf "        \"block_speedup_vs_uop\": %.3f\n"
                     (im.er_uop_s /. im.er_blk_s);
                   "      },\n";
                   "      \"block_engine\": {\n";
                   Printf.sprintf "        \"blocks\": %d,\n"
                     es.E.Emulator.es_blocks;
                   Printf.sprintf "        \"compile_ms\": %.3f,\n"
                     es.E.Emulator.es_compile_ms;
                   Printf.sprintf "        \"dispatches\": %d,\n"
                     es.E.Emulator.es_dispatches;
                   Printf.sprintf "        \"fallback_steps\": %d\n"
                     es.E.Emulator.es_fallback_steps;
                   "      },\n";
                   "      \"identical\": true\n";
                   "    }";
                 ])
             rows);
        "\n  ],\n";
        "  \"summary\": {\n";
        Printf.sprintf "    \"aes_block_speedup_vs_uop\": %.3f,\n" aes_speedup;
        "    \"engines_identical\": true\n";
        "  }\n";
        "}\n";
      ]
  in
  let dir = match !opt_out_dir with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_7.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Place: checkpoint placement quality (BENCH_5.json)                    *)
(* ------------------------------------------------------------------ *)

(* One placement variant of one program, measured under continuous power
   and under one per-program periodic supply (the same on-period for every
   variant, so the intermittent numbers are comparable). *)
type placed = {
  pl_variant : Wario.Pgo.variant;
  pl_certified : bool;
  pl_elided : int;  (* checkpoints removed by certifier-validated elision *)
  pl_dyn : int;  (* dynamic checkpoint executions, continuous power *)
  pl_cycles : int;  (* total cycles, continuous power *)
  pl_im : E.Emulator.result;  (* the intermittent run *)
}

let place () =
  print_endline
    "\n=== Placement: greedy vs static-weighted vs profile-guided \
     (BENCH_5.json) ===\n";
  let micros =
    List.map
      (fun (m : Wario_workloads.Micro.t) ->
        (m.Wario_workloads.Micro.name, m.Wario_workloads.Micro.source, false))
      Wario_workloads.Micro.all
  in
  let benches =
    List.map (fun (b : W.benchmark) -> (b.W.name, b.W.source, true)) benchmarks
  in
  let progs = if !opt_small then micros else micros @ benches in
  let opts = { P.default_options with P.elide = true } in
  let variants = [ Wario.Pgo.Greedy; Wario.Pgo.Static; Wario.Pgo.Profile ] in
  (* every job compiles and measures its own program (nothing shared);
     results come back in input order *)
  let rows =
    X.map ~jobs:(resolved_jobs ()) ~spans:!spans ~label:"bench.place.map"
      (fun (name, src, is_bench) ->
        let cs = Wario.Pgo.compile_candidates ~opts P.Wario src in
        let images =
          List.map (fun v -> (v, Wario.Pgo.compiled_of cs v)) variants
        in
        (* one on-period per program, grown until every variant makes
           forward progress (elision lengthens regions, so the greedy
           period is not automatically enough for the others) *)
        let rec measure_im period =
          try
            ( period,
              List.map
                (fun (_, c) ->
                  E.Emulator.run
                    ~supply:(E.Power.Periodic period)
                    ~verify:false c.P.image)
                images )
          with E.Emulator.No_forward_progress _ -> measure_im (10 * period)
        in
        let period, ims = measure_im (if is_bench then 100_000 else 5_000) in
        let placed =
          List.map2
            (fun (v, c) im ->
              let cont = E.Emulator.run ~verify:false c.P.image in
              {
                pl_variant = v;
                pl_certified =
                  (match P.certify c with
                  | Wario_certify.Certify.Certified _ -> true
                  | Wario_certify.Certify.Rejected _ -> false);
                pl_elided =
                  (match c.P.elision with
                  | Some s -> s.Wario.Elide.elided
                  | None -> 0);
                pl_dyn = cont.E.Emulator.checkpoints_total;
                pl_cycles = cont.E.Emulator.cycles;
                pl_im = im;
              })
            images ims
        in
        (name, is_bench, period, cs.Wario.Pgo.pilot, placed))
      progs
  in
  let find v placed = List.find (fun p -> p.pl_variant = v) placed in
  (* "improved": strictly fewer dynamic checkpoints AND total active
     cycles under intermittent power not increasing.  The useful work is
     constant across variants, so a total-cycle non-increase certifies the
     checkpoint savings were not paid back in re-execution; the waste
     decomposition itself is alignment-noisy (see EXPERIMENTS.md). *)
  let improved g p =
    p.pl_dyn < g.pl_dyn
    && p.pl_im.E.Emulator.cycles <= g.pl_im.E.Emulator.cycles
  in
  let table_rows =
    List.map
      (fun (name, _, _, pilot, placed) ->
        let g = find Wario.Pgo.Greedy placed
        and s = find Wario.Pgo.Static placed
        and p = find Wario.Pgo.Profile placed in
        [
          name;
          string_of_int g.pl_dyn;
          string_of_int s.pl_dyn;
          string_of_int p.pl_dyn;
          Printf.sprintf "%d/%d" s.pl_elided p.pl_elided;
          Wario.Pgo.variant_name pilot.Wario.Pgo.selected;
          (if improved g s || improved g p then "yes" else "-");
        ])
      rows
  in
  print_string
    (Report.table
       [
         "program"; "greedy"; "static"; "pgo"; "elided s/p"; "selected";
         "improved";
       ]
       table_rows);
  print_endline
    "\n-- intermittent power: total active cycles and re-executed cycles --";
  let im_rows =
    List.map
      (fun (name, _, period, _, placed) ->
        let g = find Wario.Pgo.Greedy placed
        and s = find Wario.Pgo.Static placed
        and p = find Wario.Pgo.Profile placed in
        let cyc x = string_of_int x.pl_im.E.Emulator.cycles in
        let re x =
          string_of_int x.pl_im.E.Emulator.waste.E.Emulator.w_reexec
        in
        [ name; string_of_int period; cyc g; cyc s; cyc p; re g; re s; re p ])
      rows
  in
  print_string
    (Report.table
       [
         "program"; "on-period"; "g cycles"; "s cycles"; "p cycles";
         "g reexec"; "s reexec"; "p reexec";
       ]
       im_rows);
  (* hard checks: the certifier must pass every variant, and on the micro
     suite the cost-guided placements must never execute more checkpoints
     than greedy (the CI smoke gate) *)
  List.iter
    (fun (name, is_bench, _, _, placed) ->
      List.iter
        (fun p ->
          if not p.pl_certified then
            failwith
              (Printf.sprintf "place: %s [%s] rejected by the certifier" name
                 (Wario.Pgo.variant_name p.pl_variant)))
        placed;
      if not is_bench then
        let g = find Wario.Pgo.Greedy placed in
        List.iter
          (fun p ->
            if p.pl_dyn > g.pl_dyn then
              failwith
                (Printf.sprintf
                   "place: %s [%s] executes more checkpoints than greedy \
                    (%d > %d)"
                   name
                   (Wario.Pgo.variant_name p.pl_variant)
                   p.pl_dyn g.pl_dyn))
          placed)
    rows;
  let n_bench = List.length (List.filter (fun (_, b, _, _, _) -> b) rows) in
  let bench_improved =
    List.length
      (List.filter
         (fun (_, is_bench, _, _, placed) ->
           is_bench
           &&
           let g = find Wario.Pgo.Greedy placed in
           improved g (find Wario.Pgo.Static placed)
           || improved g (find Wario.Pgo.Profile placed))
         rows)
  in
  let n_improved =
    List.length
      (List.filter
         (fun (_, _, _, _, placed) ->
           let g = find Wario.Pgo.Greedy placed in
           improved g (find Wario.Pgo.Static placed)
           || improved g (find Wario.Pgo.Profile placed))
         rows)
  in
  Printf.printf
    "\n%d/%d program(s) improved; %d/%d benchmark(s) improved (majority: %b)\n"
    n_improved (List.length rows) bench_improved n_bench
    (n_bench > 0 && 2 * bench_improved > n_bench);
  (* -- BENCH_5.json -- *)
  let variant_json placed v =
    let p = find v placed in
    let w = p.pl_im.E.Emulator.waste in
    String.concat ""
      [
        Printf.sprintf "        \"%s\": {\n" (Wario.Pgo.variant_name v);
        Printf.sprintf "          \"dyn_ckpts\": %d,\n" p.pl_dyn;
        Printf.sprintf "          \"cycles\": %d,\n" p.pl_cycles;
        Printf.sprintf "          \"elided\": %d,\n" p.pl_elided;
        Printf.sprintf "          \"certified\": %b,\n" p.pl_certified;
        "          \"intermittent\": {\n";
        Printf.sprintf "            \"dyn_ckpts\": %d,\n"
          p.pl_im.E.Emulator.checkpoints_total;
        Printf.sprintf "            \"cycles\": %d,\n"
          p.pl_im.E.Emulator.cycles;
        Printf.sprintf "            \"useful\": %d,\n" w.E.Emulator.w_useful;
        Printf.sprintf "            \"boot\": %d,\n" w.E.Emulator.w_boot;
        Printf.sprintf "            \"restore\": %d,\n" w.E.Emulator.w_restore;
        Printf.sprintf "            \"reexec\": %d\n" w.E.Emulator.w_reexec;
        "          }\n";
        "        }";
      ]
  in
  let prog_json (name, is_bench, period, pilot, placed) =
    let g = find Wario.Pgo.Greedy placed in
    String.concat ""
      [
        "    {\n";
        Printf.sprintf "      \"name\": \"%s\",\n" (json_escape name);
        Printf.sprintf "      \"class\": \"%s\",\n"
          (if is_bench then "benchmark" else "micro");
        Printf.sprintf "      \"selected\": \"%s\",\n"
          (Wario.Pgo.variant_name pilot.Wario.Pgo.selected);
        Printf.sprintf "      \"periodic_on_cycles\": %d,\n" period;
        "      \"variants\": {\n";
        String.concat ",\n" (List.map (variant_json placed) variants);
        "\n      },\n";
        Printf.sprintf "      \"improved_static\": %b,\n"
          (improved g (find Wario.Pgo.Static placed));
        Printf.sprintf "      \"improved_pgo\": %b,\n"
          (improved g (find Wario.Pgo.Profile placed));
        Printf.sprintf "      \"improved\": %b\n"
          (improved g (find Wario.Pgo.Static placed)
          || improved g (find Wario.Pgo.Profile placed));
        "    }";
      ]
  in
  let json =
    String.concat ""
      [
        "{\n";
        "  \"bench\": \"place\",\n";
        "  \"environment\": \"wario\",\n";
        Printf.sprintf "  \"small\": %b,\n" !opt_small;
        "  \"programs\": [\n";
        String.concat ",\n" (List.map prog_json rows);
        "\n  ],\n";
        "  \"summary\": {\n";
        Printf.sprintf "    \"programs\": %d,\n" (List.length rows);
        Printf.sprintf "    \"improved\": %d,\n" n_improved;
        Printf.sprintf "    \"benchmarks\": %d,\n" n_bench;
        Printf.sprintf "    \"benchmarks_improved\": %d,\n" bench_improved;
        Printf.sprintf "    \"improved_majority_benchmarks\": %b,\n"
          (n_bench > 0 && 2 * bench_improved > n_bench);
        "    \"all_certified\": true\n";
        "  }\n";
        "}\n";
      ]
  in
  let dir = match !opt_out_dir with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_5.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Place6: interprocedural placement (BENCH_6.json)                      *)
(* ------------------------------------------------------------------ *)

(* BENCH_5 measured the intraprocedural cost-guided placements; this
   artefact adds the interprocedural policy (call-graph weights,
   measured-trial expansion, boundary elision, certifier-validated
   motion) as a fourth variant and gates on it: the benchmarks that
   BENCH_5 could not improve must improve now, with every expansion,
   elision and motion decision certified.  The three gate benchmarks ride
   along even under --small — they are the point of the artefact. *)

let place6 () =
  print_endline
    "\n=== Placement: interprocedural policy vs BENCH_5 variants \
     (BENCH_6.json) ===\n";
  let micros =
    List.map
      (fun (m : Wario_workloads.Micro.t) ->
        (m.Wario_workloads.Micro.name, m.Wario_workloads.Micro.source, false))
      Wario_workloads.Micro.all
  in
  let gate_names = [ "crc"; "sha"; "dijkstra" ] in
  let benches =
    List.map (fun (b : W.benchmark) -> (b.W.name, b.W.source, true)) benchmarks
  in
  let progs =
    micros
    @ List.filter
        (fun (n, _, _) -> (not !opt_small) || List.mem n gate_names)
        benches
  in
  let opts = { P.default_options with P.elide = true; motion = true } in
  let variants =
    [ Wario.Pgo.Greedy; Wario.Pgo.Static; Wario.Pgo.Profile; Wario.Pgo.Inter ]
  in
  let rows =
    X.map ~jobs:(resolved_jobs ()) ~spans:!spans ~label:"bench.place6.map"
      (fun (name, src, is_bench) ->
        let cs = Wario.Pgo.compile_candidates ~opts P.Wario src in
        let images =
          List.map (fun v -> (v, Wario.Pgo.compiled_of cs v)) variants
        in
        let rec measure_im period =
          try
            ( period,
              List.map
                (fun (_, c) ->
                  E.Emulator.run
                    ~supply:(E.Power.Periodic period)
                    ~verify:false c.P.image)
                images )
          with E.Emulator.No_forward_progress _ -> measure_im (10 * period)
        in
        let period, ims = measure_im (if is_bench then 100_000 else 5_000) in
        let placed =
          List.map2
            (fun (v, c) im ->
              let cont = E.Emulator.run ~verify:false c.P.image in
              ( v,
                c,
                (match P.certify c with
                | Wario_certify.Certify.Certified _ -> true
                | Wario_certify.Certify.Rejected _ -> false),
                cont,
                im ))
            images ims
        in
        (name, is_bench, period, cs.Wario.Pgo.pilot, placed))
      progs
  in
  let find v placed =
    let (_, c, cert, cont, im) =
      List.find (fun (v', _, _, _, _) -> v' = v) placed
    in
    (c, cert, cont, im)
  in
  let dyn_of v placed =
    let (_, _, cont, _) = find v placed in
    cont.E.Emulator.checkpoints_total
  in
  let table_rows =
    List.map
      (fun (name, _, _, pilot, placed) ->
        let (ic, _, _, _) = find Wario.Pgo.Inter placed in
        let moved =
          match ic.P.motion with
          | Some m -> m.Wario.Motion.applied
          | None -> 0
        in
        let brackets =
          match ic.P.elision with
          | Some e -> e.Wario.Elide.boundary_elided
          | None -> 0
        in
        let inlined =
          match ic.P.middle.P.expander with
          | Some s -> s.Wario_transforms.Expander.inlined
          | None -> 0
        in
        [
          name;
          string_of_int (dyn_of Wario.Pgo.Greedy placed);
          string_of_int (dyn_of Wario.Pgo.Static placed);
          string_of_int (dyn_of Wario.Pgo.Profile placed);
          string_of_int (dyn_of Wario.Pgo.Inter placed);
          string_of_int inlined;
          string_of_int brackets;
          string_of_int moved;
          Wario.Pgo.variant_name pilot.Wario.Pgo.selected;
        ])
      rows
  in
  print_string
    (Report.table
       [
         "program"; "greedy"; "static"; "pgo"; "inter"; "inlined";
         "brackets"; "moved"; "selected";
       ]
       table_rows);
  (* hard gates *)
  List.iter
    (fun (name, _, _, _, placed) ->
      List.iter
        (fun (v, _, cert, _, _) ->
          if not cert then
            failwith
              (Printf.sprintf "place6: %s [%s] rejected by the certifier"
                 name
                 (Wario.Pgo.variant_name v)))
        placed)
    rows;
  List.iter
    (fun (name, is_bench, _, _, placed) ->
      if not is_bench then begin
        let g = dyn_of Wario.Pgo.Greedy placed in
        List.iter
          (fun (v, _, _, cont, _) ->
            if cont.E.Emulator.checkpoints_total > g then
              failwith
                (Printf.sprintf
                   "place6: %s [%s] executes more checkpoints than greedy \
                    (%d > %d)"
                   name
                   (Wario.Pgo.variant_name v)
                   cont.E.Emulator.checkpoints_total g))
          placed
      end)
    rows;
  (* every motion decision must carry the certifier's verdict, applied
     iff certified *)
  List.iter
    (fun (name, _, _, _, placed) ->
      let (ic, _, _, _) = find Wario.Pgo.Inter placed in
      match ic.P.motion with
      | None -> failwith (Printf.sprintf "place6: %s ran without motion" name)
      | Some m ->
          List.iter
            (fun (mv : Wario.Motion.move) ->
              if String.length mv.Wario.Motion.mv_verdict = 0 then
                failwith
                  (Printf.sprintf "place6: %s has a move without a verdict"
                     name);
              if
                mv.Wario.Motion.mv_applied
                <> (mv.Wario.Motion.mv_verdict = "certified")
              then
                failwith
                  (Printf.sprintf
                     "place6: %s applied a move the certifier rejected" name))
            m.Wario.Motion.moves)
    rows;
  (* gate benchmarks: inter strictly beats every BENCH_5 variant *)
  let gate name =
    match
      List.find_opt (fun (n, _, _, _, _) -> n = name) rows
    with
    | None -> (false, false)
    | Some (_, _, _, pilot, placed) ->
        let i = dyn_of Wario.Pgo.Inter placed in
        let others =
          List.map
            (fun v -> dyn_of v placed)
            [ Wario.Pgo.Greedy; Wario.Pgo.Static; Wario.Pgo.Profile ]
        in
        let (_, _, _, i_im) = find Wario.Pgo.Inter placed in
        let (_, _, _, g_im) = find Wario.Pgo.Greedy placed in
        ( List.for_all (fun d -> i < d) others
          && i_im.E.Emulator.cycles <= g_im.E.Emulator.cycles,
          pilot.Wario.Pgo.selected = Wario.Pgo.Inter )
  in
  let crc_improved, crc_no_rescue = gate "crc" in
  let sha_improved, _ = gate "sha" in
  let dijkstra_improved, _ = gate "dijkstra" in
  List.iter
    (fun (flag, msg) -> if not flag then failwith ("place6: " ^ msg))
    [
      (crc_improved, "crc: inter does not strictly beat every variant");
      ( crc_no_rescue,
        "crc: the measured guard had to rescue the interprocedural binary" );
      (sha_improved, "sha: inter does not strictly beat every variant");
      ( dijkstra_improved,
        "dijkstra: inter does not strictly beat every variant" );
    ];
  Printf.printf
    "\ngates: crc improved=%b (no rescue=%b), sha improved=%b, dijkstra \
     improved=%b\n"
    crc_improved crc_no_rescue sha_improved dijkstra_improved;
  (* -- BENCH_6.json -- *)
  let variant_json placed v =
    let (c, cert, cont, im) = find v placed in
    let elided, brackets =
      match c.P.elision with
      | Some e -> (e.Wario.Elide.elided, e.Wario.Elide.boundary_elided)
      | None -> (0, 0)
    in
    let inlined =
      match c.P.middle.P.expander with
      | Some s -> s.Wario_transforms.Expander.inlined
      | None -> 0
    in
    let motion_json =
      match c.P.motion with
      | None -> "null"
      | Some m ->
          let move_json (mv : Wario.Motion.move) =
            Printf.sprintf
              "{\"function\": \"%s\", \"kind\": \"%s\", \"from\": \"%s\", \
               \"to\": \"%s\", \"applied\": %b, \"verdict\": \"%s\"}"
              (json_escape mv.Wario.Motion.mv_func)
              (match mv.Wario.Motion.mv_kind with
              | Wario.Motion.Hoist -> "hoist"
              | Wario.Motion.Sink -> "sink")
              (json_escape mv.Wario.Motion.mv_from)
              (json_escape mv.Wario.Motion.mv_to)
              mv.Wario.Motion.mv_applied
              (json_escape mv.Wario.Motion.mv_verdict)
          in
          Printf.sprintf
            "{\"proposed\": %d, \"applied\": %d, \"rejected\": %d, \
             \"moves\": [%s]}"
            m.Wario.Motion.proposed m.Wario.Motion.applied
            m.Wario.Motion.rejected
            (String.concat ", " (List.map move_json m.Wario.Motion.moves))
    in
    String.concat ""
      [
        Printf.sprintf "        \"%s\": {\n" (Wario.Pgo.variant_name v);
        Printf.sprintf "          \"dyn_ckpts\": %d,\n"
          cont.E.Emulator.checkpoints_total;
        Printf.sprintf "          \"cycles\": %d,\n" cont.E.Emulator.cycles;
        Printf.sprintf "          \"elided\": %d,\n" elided;
        Printf.sprintf "          \"boundary_elided\": %d,\n" brackets;
        Printf.sprintf "          \"inlined\": %d,\n" inlined;
        Printf.sprintf "          \"motion\": %s,\n" motion_json;
        Printf.sprintf "          \"certified\": %b,\n" cert;
        "          \"intermittent\": {\n";
        Printf.sprintf "            \"dyn_ckpts\": %d,\n"
          im.E.Emulator.checkpoints_total;
        Printf.sprintf "            \"cycles\": %d\n" im.E.Emulator.cycles;
        "          }\n";
        "        }";
      ]
  in
  let prog_json (name, is_bench, period, pilot, placed) =
    String.concat ""
      [
        "    {\n";
        Printf.sprintf "      \"name\": \"%s\",\n" (json_escape name);
        Printf.sprintf "      \"class\": \"%s\",\n"
          (if is_bench then "benchmark" else "micro");
        Printf.sprintf "      \"selected\": \"%s\",\n"
          (Wario.Pgo.variant_name pilot.Wario.Pgo.selected);
        Printf.sprintf "      \"periodic_on_cycles\": %d,\n" period;
        "      \"variants\": {\n";
        String.concat ",\n" (List.map (variant_json placed) variants);
        "\n      }\n";
        "    }";
      ]
  in
  let json =
    String.concat ""
      [
        "{\n";
        "  \"bench\": \"place6\",\n";
        "  \"environment\": \"wario\",\n";
        Printf.sprintf "  \"small\": %b,\n" !opt_small;
        "  \"programs\": [\n";
        String.concat ",\n" (List.map prog_json rows);
        "\n  ],\n";
        "  \"summary\": {\n";
        Printf.sprintf "    \"programs\": %d,\n" (List.length rows);
        "    \"all_certified\": true,\n";
        Printf.sprintf "    \"crc_improved\": %b,\n" crc_improved;
        Printf.sprintf "    \"crc_no_rescue\": %b,\n" crc_no_rescue;
        Printf.sprintf "    \"sha_improved\": %b,\n" sha_improved;
        Printf.sprintf "    \"dijkstra_improved\": %b\n" dijkstra_improved;
        "  }\n";
        "}\n";
      ]
  in
  let dir = match !opt_out_dir with Some d -> d | None -> "." in
  let path = Filename.concat dir "BENCH_6.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Cache: content-addressed compile cache, cold vs warm (BENCH_8.json)   *)
(* ------------------------------------------------------------------ *)

(* The compile side of the place sweep — every program × the placement
   variant matrix — run twice against one on-disk cache: once cold
   (every stage misses and is stored) and once warm (every compile
   replays from the image stage).  Before any number is written, every
   (program, variant) is re-asserted in-process: the warm-cache compile
   must be byte-identical (Marshal) to a fresh uncached one.  The
   speedup is a hard gate here AND a budget in stats_budgets.json. *)

let cache_variants =
  let base = P.default_options in
  let cg = Wario_transforms.Checkpoint_inserter.Cost_guided in
  [
    ("greedy", { base with P.placement = Wario_transforms.Checkpoint_inserter.Greedy });
    ("cost-guided", { base with P.placement = cg });
    (* differs from cost-guided only in [elide]: warm-from-cold this is
       an image-stage recompile (re-link), the incremental path *)
    ("cost-guided+elide", { base with P.placement = cg; elide = true });
    ( "interprocedural",
      {
        base with
        P.placement = Wario_transforms.Checkpoint_inserter.Interprocedural;
        elide = true;
        motion = true;
      } );
  ]

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun n -> remove_tree (Filename.concat path n))
        (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let cache_bench () =
  print_endline
    "\n=== Compile cache: cold vs warm placement-variant sweep \
     (BENCH_8.json) ===\n";
  let micros =
    List.map
      (fun (m : Wario_workloads.Micro.t) ->
        (m.Wario_workloads.Micro.name, m.Wario_workloads.Micro.source))
      Wario_workloads.Micro.all
  in
  let benches = List.map (fun (b : W.benchmark) -> (b.W.name, b.W.source)) benchmarks in
  let progs = if !opt_small then micros else micros @ benches in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wario-bench-cache-%d" (Unix.getpid ()))
  in
  remove_tree dir;
  let cache = Wario.Cache.create dir in
  let sweep label c =
    let t0 = Unix.gettimeofday () in
    let _ : string list =
      X.map ~jobs:(resolved_jobs ()) ~spans:!spans ~label
        (fun (name, src) ->
          List.iter
            (fun (_, opts) -> ignore (P.compile ~opts ~cache:c P.Wario src))
            cache_variants;
          name)
        progs
    in
    Unix.gettimeofday () -. t0
  in
  let cold_s = sweep "bench.cache.cold" cache in
  (* identity gate BEFORE timing the warm sweep or writing any number:
     for every (program, variant), a cached compile and a fresh
     uncached compile must agree byte-for-byte on the linked image *)
  let mismatches =
    X.map ~jobs:(resolved_jobs ()) ~spans:!spans ~label:"bench.cache.identity"
      (fun (name, src) ->
        List.filter_map
          (fun (vname, opts) ->
            let cached = P.compile ~opts ~cache P.Wario src in
            let fresh = P.compile ~opts ~cache:Wario.Cache.disabled P.Wario src in
            if
              Marshal.to_string cached.P.image []
              = Marshal.to_string fresh.P.image []
            then None
            else Some (name ^ "/" ^ vname))
          cache_variants)
      progs
    |> List.concat
  in
  if mismatches <> [] then
    failwith
      ("cache: warm compile not byte-identical to fresh for "
      ^ String.concat ", " mismatches);
  Printf.printf
    "identity: %d program(s) x %d variant(s), cached == fresh byte-for-byte\n"
    (List.length progs)
    (List.length cache_variants);
  let warm_s = sweep "bench.cache.warm" cache in
  let speedup = cold_s /. Float.max 1e-6 warm_s in
  let ctr = Wario.Cache.counters cache in
  print_string
    (Report.table
       [ "sweep"; "wall s"; "hits"; "misses"; "evictions" ]
       [
         [ "cold"; Printf.sprintf "%.3f" cold_s; "-"; "-"; "-" ];
         [
           "warm";
           Printf.sprintf "%.3f" warm_s;
           string_of_int ctr.Wario.Cache.hits;
           string_of_int ctr.Wario.Cache.misses;
           string_of_int ctr.Wario.Cache.evictions;
         ];
       ]);
  Printf.printf "\nwarm speedup: %.1fx (gate: >= 3x)\n" speedup;
  (* the acceptance gate, enforced in-process so a regression fails the
     artefact itself, not just the downstream stats gate *)
  if speedup < 3.0 then
    failwith
      (Printf.sprintf "cache: warm sweep only %.2fx faster than cold" speedup);
  let json =
    String.concat ""
      [
        "{\n";
        "  \"bench\": \"cache\",\n";
        Printf.sprintf "  \"small\": %b,\n" !opt_small;
        Printf.sprintf "  \"programs\": %d,\n" (List.length progs);
        Printf.sprintf "  \"variants\": %d,\n" (List.length cache_variants);
        "  \"cache\": {\n";
        Printf.sprintf "    \"cold_s\": %.6f,\n" cold_s;
        Printf.sprintf "    \"warm_s\": %.6f,\n" warm_s;
        Printf.sprintf "    \"speedup\": %.3f,\n" speedup;
        Printf.sprintf "    \"hits\": %d,\n" ctr.Wario.Cache.hits;
        Printf.sprintf "    \"misses\": %d,\n" ctr.Wario.Cache.misses;
        Printf.sprintf "    \"evictions\": %d,\n" ctr.Wario.Cache.evictions;
        Printf.sprintf "    \"puts\": %d\n" ctr.Wario.Cache.puts;
        "  }\n";
        "}\n";
      ]
  in
  let out = match !opt_out_dir with Some d -> d | None -> "." in
  let path = Filename.concat out "BENCH_8.json" in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n" path;
  remove_tree dir

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let artefacts =
  [
    ("fig4", fig4); ("fig5", fig5); ("tab1", tab1); ("tab2", tab2);
    ("fig6", fig6); ("fig7", fig7); ("tab3", tab3); ("tab4", tab4);
    ("ext", ext); ("cert", cert); ("profile", profile); ("bechamel", bechamel);
    ("perf", perf); ("emu", emu); ("place", place); ("place6", place6);
    ("cache", cache_bench);
  ]

(* Redirect stdout to [path] for the duration of [f] (artefact functions
   print; --out-dir captures that into per-artefact files). *)
let with_stdout_to path f =
  flush stdout;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let () =
  let rec parse out_dir names = function
    | [] -> (out_dir, List.rev names)
    | "--list" :: _ ->
        List.iter (fun (n, _) -> print_endline n) artefacts;
        exit 0
    | "--out-dir" :: dir :: rest -> parse (Some dir) names rest
    | [ "--out-dir" ] ->
        prerr_endline "bench: --out-dir requires a directory argument";
        exit 1
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 0 ->
            (* 0 = auto, same as the default *)
            opt_jobs := j;
            parse out_dir names rest
        | _ ->
            prerr_endline "bench: --jobs requires an integer >= 0 (0 = auto)";
            exit 1)
    | [ "--jobs" ] ->
        prerr_endline "bench: --jobs requires an integer >= 0 (0 = auto)";
        exit 1
    | "--small" :: rest ->
        opt_small := true;
        parse out_dir names rest
    | "--engine" :: e :: rest -> (
        match e with
        | "auto" ->
            opt_engine := E.Emulator.Auto;
            parse out_dir names rest
        | "reference" ->
            opt_engine := E.Emulator.Reference;
            parse out_dir names rest
        | "uop" ->
            opt_engine := E.Emulator.Uop;
            parse out_dir names rest
        | "block" ->
            opt_engine := E.Emulator.Block;
            parse out_dir names rest
        | _ ->
            prerr_endline
              "bench: --engine must be auto, reference, uop or block";
            exit 1)
    | [ "--engine" ] ->
        prerr_endline "bench: --engine must be auto, reference, uop or block";
        exit 1
    | "--span-out" :: path :: rest ->
        opt_span_out := Some path;
        parse out_dir names rest
    | [ "--span-out" ] ->
        prerr_endline "bench: --span-out requires a file argument";
        exit 1
    | "--span-jsonl" :: path :: rest ->
        opt_span_jsonl := Some path;
        parse out_dir names rest
    | [ "--span-jsonl" ] ->
        prerr_endline "bench: --span-jsonl requires a file argument";
        exit 1
    | "--artefact" :: name :: rest -> parse out_dir (name :: names) rest
    | [ "--artefact" ] ->
        prerr_endline "bench: --artefact requires an artefact name";
        exit 1
    | name :: rest -> parse out_dir (name :: names) rest
  in
  let out_dir, requested = parse None [] (List.tl (Array.to_list Sys.argv)) in
  opt_out_dir := out_dir;
  let requested =
    match requested with [] -> List.map fst artefacts | names -> names
  in
  List.iter
    (fun name ->
      if not (List.mem_assoc name artefacts) then begin
        Printf.eprintf "unknown artefact %s (have: %s)\n" name
          (String.concat " " (List.map fst artefacts));
        exit 1
      end)
    requested;
  (match out_dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  if !opt_span_out <> None || !opt_span_jsonl <> None then
    spans := O.Span.create ();
  let t0 = Unix.gettimeofday () in
  (* warm the compile+run cache for the unroll-8 grid on all domains:
     every artefact after this hits the cache instead of recompiling *)
  O.Span.with_span !spans "bench.prefill_grid" (fun () ->
      prefill ~jobs:(resolved_jobs ())
        (List.concat_map
           (fun b ->
             List.map (fun env -> (b, env)) (P.Plain :: instrumented_envs))
           benchmarks));
  List.iter
    (fun name ->
      let f = List.assoc name artefacts in
      let f () = O.Span.with_span !spans ("bench." ^ name) f in
      match out_dir with
      | None -> f ()
      | Some d ->
          let path = Filename.concat d (name ^ ".txt") in
          Printf.eprintf "[bench] %s -> %s\n%!" name path;
          with_stdout_to path f)
    requested;
  (* span artefacts: self-check attribution before anything is written —
     a trace whose children overflow their parents must fail the run *)
  (if O.Span.is_enabled !spans then begin
     let roots = O.Span.roots !spans in
     (match O.Span.check roots with
     | Ok () -> ()
     | Error e ->
         Printf.eprintf "bench: span self-check failed: %s\n" e;
         exit 1);
     let write path body =
       let oc = open_out_bin path in
       output_string oc body;
       close_out oc;
       Printf.printf "wrote %s\n" path
     in
     Option.iter
       (fun p -> write p (O.Span.to_chrome_json ~process_name:"bench" roots))
       !opt_span_out;
     Option.iter (fun p -> write p (O.Span.to_jsonl roots)) !opt_span_jsonl
   end);
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
