lib/emulator/image.ml: Array Hashtbl Int32 List Wario_machine Wario_support
